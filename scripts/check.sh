#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied, then the test
# suite. Degrades gracefully when rustfmt/clippy components are not
# installed (e.g. a minimal offline toolchain): the missing step is
# skipped with a notice instead of failing the gate.
#
# Flags:
#   --bench-smoke   additionally run the flit throughput bench in quick
#                   mode; it cross-checks both router engines for cycle
#                   identity and rewrites BENCH_flit.json so future PRs
#                   have a perf baseline to compare against.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) bench_smoke=1 ;;
        *) echo "check.sh: unknown flag '$arg'" >&2; exit 2 ;;
    esac
done

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> skipping fmt (rustfmt not installed)"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> skipping clippy (component not installed)"
fi

echo "==> cargo test --workspace"
cargo test --workspace -q

if [ "$bench_smoke" -eq 1 ]; then
    echo "==> flit throughput bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_flit -- --quick
fi

echo "check.sh: all gates passed"
