#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied, then the test
# suite. Degrades gracefully when rustfmt/clippy components are not
# installed (e.g. a minimal offline toolchain): the missing step is
# skipped with a notice instead of failing the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> skipping fmt (rustfmt not installed)"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> skipping clippy (component not installed)"
fi

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "check.sh: all gates passed"
