#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied, then the test
# suite. Degrades gracefully when rustfmt/clippy components are not
# installed (e.g. a minimal offline toolchain): the missing step is
# skipped with a notice instead of failing the gate.
#
# Always runs rustdoc with warnings denied (missing docs on a public
# item fail the gate) and four CLI smokes: a trace round-trip (generate
# a trace, pack it to the columnar binary format, cat it back to
# JSON-lines and diff against the original), a characterize determinism
# check (the same workload characterized with --jobs 1 and --jobs 4 must
# print identical reports), an engine diff (replaying the checked-in
# fixture trace with --engine recurrence must stay byte-identical to the
# output captured before the NetEngine refactor), a streaming smoke
# (a packed trace with a deliberately small block budget characterized
# out-of-core with --stream must print byte-identically to the in-memory
# --no-replay pass over the same events), a sharded-simulator smoke
# (the same trace replayed with --engine flit at --sim-jobs 1 and
# --sim-jobs 4 must print byte-identically: the wavefront shards are
# cycle-identical to the serial event loop), a sharded-machine smoke
# (a shared-memory app acquired with --sim-jobs 1 and --sim-jobs 4 must
# produce byte-identical packed traces and characterize reports: the
# sharded execution-driven simulator is event-identical to serial), a
# torus smoke (a workload run and characterized end-to-end with
# --engine flit --topology torus, where the sharded flit router at
# --sim-jobs 1 and --sim-jobs 4 must print byte-identical reports: band
# sharding stays deterministic under wraparound routes and escape VCs),
# and a serve smoke (a server on an ephemeral port, the fixture replayed
# through serve-feed — once from a file, once streamed over stdin with
# --trace - — and each final report diffed against offline characterize
# --no-replay: the wire must not change a byte).
#
# Flags:
#   --bench-smoke   additionally run the flit throughput, sharded
#                   simulator, trace store, characterization,
#                   closed-loop engine and characterization-server
#                   benches in quick mode; they cross-check their fast
#                   paths against references for identity and rewrite
#                   BENCH_flit.json / BENCH_shard.json / BENCH_trace.json
#                   / BENCH_fit.json / BENCH_engine.json /
#                   BENCH_serve.json so future PRs have perf baselines
#                   to compare against.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) bench_smoke=1 ;;
        *) echo "check.sh: unknown flag '$arg'" >&2; exit 2 ;;
    esac
done

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> skipping fmt (rustfmt not installed)"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> skipping clippy (component not installed)"
fi

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> trace round-trip smoke (pack / cat / diff)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -- generate nbody --procs 4 --scale tiny --out "$tmpdir/t.jsonl"
cargo run --release -q -- trace pack "$tmpdir/t.jsonl" --out "$tmpdir/t.cct"
cargo run --release -q -- trace cat "$tmpdir/t.cct" --out "$tmpdir/t.roundtrip.jsonl"
diff "$tmpdir/t.jsonl" "$tmpdir/t.roundtrip.jsonl"
cargo run --release -q -- trace stat "$tmpdir/t.cct" | sed 's/^/    /'

echo "==> characterize determinism smoke (--jobs 4 vs --jobs 1 diff)"
cargo run --release -q -- characterize cholesky --procs 8 --scale tiny --jobs 1 >"$tmpdir/sig.j1.txt"
cargo run --release -q -- characterize cholesky --procs 8 --scale tiny --jobs 4 >"$tmpdir/sig.j4.txt"
diff "$tmpdir/sig.j1.txt" "$tmpdir/sig.j4.txt"

echo "==> streaming smoke (--stream vs --no-replay diff, small blocks)"
cargo run --release -q -- trace pack "$tmpdir/t.jsonl" --block-len 7 --out "$tmpdir/t.small.cct"
cargo run --release -q -- characterize --trace "$tmpdir/t.small.cct" --no-replay >"$tmpdir/sig.batch.txt"
cargo run --release -q -- characterize --trace "$tmpdir/t.small.cct" --stream --block-jobs 3 >"$tmpdir/sig.stream.txt"
diff "$tmpdir/sig.batch.txt" "$tmpdir/sig.stream.txt"

echo "==> engine diff smoke (--engine recurrence vs pre-refactor fixture)"
cargo run --release -q -- replay --trace tests/fixtures/engine_diff.trace.jsonl --engine recurrence >"$tmpdir/replay.rec.txt"
diff tests/fixtures/engine_diff.replay.txt "$tmpdir/replay.rec.txt"
cargo run --release -q -- replay --trace tests/fixtures/engine_diff.trace.jsonl --engine flit | sed 's/^/    /'

echo "==> sharded simulator smoke (--sim-jobs 4 vs --sim-jobs 1 diff)"
cargo run --release -q -- replay --trace tests/fixtures/engine_diff.trace.jsonl --engine flit --sim-jobs 1 >"$tmpdir/replay.s1.txt"
cargo run --release -q -- replay --trace tests/fixtures/engine_diff.trace.jsonl --engine flit --sim-jobs 4 >"$tmpdir/replay.s4.txt"
diff "$tmpdir/replay.s1.txt" "$tmpdir/replay.s4.txt"

echo "==> sharded machine smoke (sm app --sim-jobs 4 vs --sim-jobs 1 diff)"
cargo run --release -q -- run is --procs 8 --scale tiny --sim-jobs 1 --packed --out "$tmpdir/is.s1.cct" >"$tmpdir/is.s1.txt"
cargo run --release -q -- run is --procs 8 --scale tiny --sim-jobs 4 --packed --out "$tmpdir/is.s4.cct" >"$tmpdir/is.s4.txt"
diff "$tmpdir/is.s1.txt" "$tmpdir/is.s4.txt"
cmp "$tmpdir/is.s1.cct" "$tmpdir/is.s4.cct"
cargo run --release -q -- characterize is --procs 8 --scale tiny --sim-jobs 1 >"$tmpdir/is.sig.s1.txt"
cargo run --release -q -- characterize is --procs 8 --scale tiny --sim-jobs 4 >"$tmpdir/is.sig.s4.txt"
diff "$tmpdir/is.sig.s1.txt" "$tmpdir/is.sig.s4.txt"

echo "==> torus smoke (--topology torus, --sim-jobs 4 vs --sim-jobs 1 diff)"
cargo run --release -q -- run allreduce --procs 8 --scale tiny --engine flit --topology torus --routing adaptive | sed 's/^/    /'
cargo run --release -q -- characterize is --procs 8 --scale tiny --engine flit --topology torus --sim-jobs 1 >"$tmpdir/torus.sig.s1.txt"
cargo run --release -q -- characterize is --procs 8 --scale tiny --engine flit --topology torus --sim-jobs 4 >"$tmpdir/torus.sig.s4.txt"
diff "$tmpdir/torus.sig.s1.txt" "$tmpdir/torus.sig.s4.txt"

echo "==> serve smoke (serve-feed final report vs offline characterize diff)"
cargo run --release -q -- serve --addr 127.0.0.1:0 >"$tmpdir/serve.addr" 2>"$tmpdir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$tmpdir/serve.addr" 2>/dev/null || true)"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: serve did not report its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
cargo run --release -q -- serve-feed --trace "$tmpdir/t.jsonl" --addr "$addr" \
    --block-len 11 --poll-every 2 >"$tmpdir/sig.served.txt" 2>/dev/null
# Second session: the same events streamed block-by-block over stdin
# (--trace -), the live-producer path, then a protocol shutdown.
cargo run --release -q -- serve-feed --trace - --addr "$addr" \
    --poll-every 2 --shutdown <"$tmpdir/t.small.cct" >"$tmpdir/sig.piped.txt" 2>/dev/null
wait "$serve_pid"
cargo run --release -q -- characterize --trace "$tmpdir/t.jsonl" --no-replay >"$tmpdir/sig.offline.txt"
diff "$tmpdir/sig.served.txt" "$tmpdir/sig.offline.txt"
diff "$tmpdir/sig.piped.txt" "$tmpdir/sig.offline.txt"

if [ "$bench_smoke" -eq 1 ]; then
    echo "==> flit throughput bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_flit -- --quick
    echo "==> sharded simulator bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_shard -- --quick
    echo "==> trace store bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_trace -- --quick
    echo "==> characterization fit bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_fit -- --quick
    echo "==> closed-loop engine bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_engine -- --quick
    echo "==> characterization server bench (quick smoke)"
    cargo run --release -p commchar-bench --bin bench_serve -- --quick
fi

echo "check.sh: all gates passed"
