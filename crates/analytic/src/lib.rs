//! # commchar-analytic
//!
//! An analytical performance model of the 2-D wormhole mesh, in the style
//! of the queueing models the paper aims to feed (Adve & Vernon's mesh
//! analysis, Kim & Das's hypercube delay model): each directed channel is
//! treated as an M/G/1 queue whose load comes from the *fitted* traffic
//! model — per-source rates, spatial distribution, message-length
//! distribution — routed over the deterministic XY paths.
//!
//! This is the methodology's end product in action: once an application's
//! communication is expressed with common distributions, its network
//! latency can be *computed* instead of simulated. The model is accurate
//! at low-to-moderate load and degrades near saturation (wormhole blocking
//! correlates channels, which independent M/G/1 queues cannot see) — the
//! validation experiment quantifies exactly where.
//!
//! # Example
//!
//! ```
//! use commchar_analytic::AnalyticModel;
//! use commchar_mesh::MeshConfig;
//! use commchar_traffic::patterns::uniform_poisson;
//!
//! let mesh = MeshConfig::for_nodes(16);
//! let traffic = uniform_poisson(16, 0.001, 32);
//! let report = AnalyticModel::new(mesh).predict(&traffic);
//! assert!(report.mean_latency > 0.0);
//! assert!(!report.saturated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use commchar_mesh::{MeshConfig, NodeId};
use commchar_traffic::TrafficModel;

/// The analytic latency prediction for one traffic model.
#[derive(Clone, Debug)]
pub struct AnalyticReport {
    /// Mean end-to-end message latency (ticks), traffic-weighted.
    pub mean_latency: f64,
    /// Mean contention-free latency (ticks), traffic-weighted.
    pub mean_zero_load: f64,
    /// Mean queueing (blocked) time per message (ticks).
    pub mean_blocked: f64,
    /// The highest channel utilization in the network.
    pub max_channel_util: f64,
    /// The bottleneck channel id.
    pub bottleneck: u32,
    /// True when some channel's utilization is ≥ 1 — the open-loop model
    /// has no steady state and `mean_latency` is meaningless.
    pub saturated: bool,
}

/// Per-channel M/G/1 model over a wormhole mesh. See the crate docs.
#[derive(Clone, Copy, Debug)]
pub struct AnalyticModel {
    mesh: MeshConfig,
}

impl AnalyticModel {
    /// Creates a model of the given network.
    pub fn new(mesh: MeshConfig) -> Self {
        AnalyticModel { mesh }
    }

    /// Wormhole service time (ticks) a message of `bytes` payload holds a
    /// channel for: the whole worm must pass — body flits at one per
    /// `link_delay`, plus the per-hop header charge.
    fn service_ticks(&self, bytes: u32) -> f64 {
        (self.mesh.flits_for(bytes) as f64) * self.mesh.link_delay as f64
            + self.mesh.hop_latency() as f64
    }

    /// Predicts mean latency for an open-loop traffic model.
    ///
    /// # Panics
    ///
    /// Panics if the model's node count exceeds the mesh size.
    pub fn predict(&self, traffic: &TrafficModel) -> AnalyticReport {
        let n = traffic.nodes();
        assert!(n <= self.mesh.shape.nodes(), "traffic model larger than the mesh");
        let slots = self.mesh.shape.channel_slots();

        // First and second moments of the service time from the length
        // distribution, plus per-pair rates from the fitted inter-arrival
        // distributions and spatial vectors.
        let mut channel_rate = vec![0.0f64; slots]; // messages per tick
        let mut channel_s1 = vec![0.0f64; slots]; // Σ rate·E[S]
        let mut channel_s2 = vec![0.0f64; slots]; // Σ rate·E[S²]
        struct Pair {
            rate: f64,
            path: Vec<u32>,
            zero_load: f64,
        }
        let mut pairs: Vec<Pair> = Vec::new();

        for (s, model) in traffic.sources().iter().enumerate() {
            let Some(model) = model else { continue };
            let mean_gap = model.interarrival.mean();
            if !(mean_gap.is_finite() && mean_gap > 0.0) {
                continue;
            }
            let src_rate = 1.0 / mean_gap;
            // Length moments (discrete distribution).
            let (es, es2) = self.service_moments(model);
            for (d, &p) in model.spatial.iter().enumerate() {
                if p <= 0.0 || d == s {
                    continue;
                }
                let rate = src_rate * p;
                let path: Vec<u32> = self
                    .mesh
                    .shape
                    .route(NodeId(s as u16), NodeId(d as u16), self.mesh.routing)
                    .iter()
                    .map(|c| c.0)
                    .collect();
                for &c in &path {
                    channel_rate[c as usize] += rate;
                    channel_s1[c as usize] += rate * es;
                    channel_s2[c as usize] += rate * es2;
                }
                let hops = self.mesh.shape.hop_distance(NodeId(s as u16), NodeId(d as u16));
                let zl = self.mesh.zero_load_latency(self.mean_bytes(model) as u32, hops) as f64;
                pairs.push(Pair { rate, path, zero_load: zl });
            }
        }

        // Per-channel M/G/1 waiting time: W = λ·E[S²] / (2(1−ρ)).
        let mut wait = vec![0.0f64; slots];
        let mut max_util = 0.0f64;
        let mut bottleneck = 0u32;
        let mut saturated = false;
        for c in 0..slots {
            let lambda = channel_rate[c];
            if lambda == 0.0 {
                continue;
            }
            let rho = channel_s1[c]; // Σ rate·E[S] = λ·E[S] aggregated
            if rho > max_util {
                max_util = rho;
                bottleneck = c as u32;
            }
            if rho >= 1.0 {
                saturated = true;
                wait[c] = f64::INFINITY;
            } else {
                wait[c] = channel_s2[c] / (2.0 * (1.0 - rho));
            }
        }

        // Traffic-weighted end-to-end latency.
        let total_rate: f64 = pairs.iter().map(|p| p.rate).sum();
        let (mut lat, mut zl, mut blk) = (0.0f64, 0.0f64, 0.0f64);
        if total_rate > 0.0 {
            for p in &pairs {
                let w: f64 = p.path.iter().map(|&c| wait[c as usize]).sum();
                let share = p.rate / total_rate;
                lat += share * (p.zero_load + w);
                zl += share * p.zero_load;
                blk += share * w;
            }
        }
        AnalyticReport {
            mean_latency: lat,
            mean_zero_load: zl,
            mean_blocked: blk,
            max_channel_util: max_util,
            bottleneck,
            saturated,
        }
    }

    fn mean_bytes(&self, model: &commchar_traffic::SourceModel) -> f64 {
        model.length.mean()
    }

    /// E[S] and E[S²] of the channel service time under the source's
    /// length distribution.
    fn service_moments(&self, model: &commchar_traffic::SourceModel) -> (f64, f64) {
        // The LengthDist is discrete; approximate the moments by sampling
        // its support through the mean and a small perturbation: we use
        // the exact discrete moments via the distribution's accessors.
        let (mut es, mut es2) = (0.0, 0.0);
        for (bytes, prob) in model.length.support() {
            let s = self.service_ticks(bytes);
            es += prob * s;
            es2 += prob * s * s;
        }
        (es, es2)
    }
}

#[cfg(test)]
mod tests {
    use commchar_traffic::patterns::{hotspot, uniform_poisson};

    use super::*;

    #[test]
    fn zero_load_dominates_at_light_load() {
        let mesh = MeshConfig::for_nodes(16);
        let model = AnalyticModel::new(mesh);
        let light = model.predict(&uniform_poisson(16, 1e-5, 32));
        assert!(!light.saturated);
        assert!(light.mean_blocked < 0.5, "blocked = {}", light.mean_blocked);
        assert!(light.mean_latency >= light.mean_zero_load);
    }

    #[test]
    fn latency_grows_with_load() {
        let mesh = MeshConfig::for_nodes(16);
        let model = AnalyticModel::new(mesh);
        let mut prev = 0.0;
        for rate in [1e-4, 5e-4, 1e-3, 2e-3] {
            let r = model.predict(&uniform_poisson(16, rate, 32));
            assert!(!r.saturated, "rate {rate} saturated");
            assert!(r.mean_latency > prev, "latency must grow with load");
            prev = r.mean_latency;
        }
    }

    #[test]
    fn saturation_is_detected() {
        let mesh = MeshConfig::for_nodes(16);
        let model = AnalyticModel::new(mesh);
        let heavy = model.predict(&uniform_poisson(16, 0.05, 256));
        assert!(heavy.saturated);
        assert!(heavy.max_channel_util >= 1.0);
    }

    #[test]
    fn hotspot_moves_the_bottleneck() {
        let mesh = MeshConfig::for_nodes(16);
        let model = AnalyticModel::new(mesh);
        let uni = model.predict(&uniform_poisson(16, 0.001, 32));
        let hot = model.predict(&hotspot(16, 0, 0.7, 0.001, 32));
        assert!(hot.max_channel_util > uni.max_channel_util);
        // The hotspot bottleneck is node 0's ejection channel.
        assert_eq!(hot.bottleneck, mesh.shape.ejection(NodeId(0)).0);
    }

    #[test]
    fn utilization_scales_linearly_with_rate() {
        let mesh = MeshConfig::for_nodes(8);
        let model = AnalyticModel::new(mesh);
        let a = model.predict(&uniform_poisson(8, 0.0005, 32));
        let b = model.predict(&uniform_poisson(8, 0.001, 32));
        let ratio = b.max_channel_util / a.max_channel_util;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn torus_wrap_lowers_zero_load_and_spreads_load() {
        use commchar_mesh::{Routing, Topology};

        // Same traffic on a 4×4 torus: wrap links halve the average
        // distance, so the predicted zero-load latency must drop, and the
        // extra links spread the same load across more channels.
        let mesh = AnalyticModel::new(MeshConfig::for_nodes(16));
        let torus =
            AnalyticModel::new(MeshConfig::for_nodes_net(16, Topology::Torus, Routing::Dimension));
        let t = uniform_poisson(16, 0.001, 32);
        let m = mesh.predict(&t);
        let w = torus.predict(&t);
        assert!(
            w.mean_zero_load < m.mean_zero_load,
            "{} vs {}",
            w.mean_zero_load,
            m.mean_zero_load
        );
        assert!(w.max_channel_util <= m.max_channel_util);
    }
}
