//! Randomized equivalence suite: the closed-loop [`IncrementalFlit`]
//! engine must produce a final log cycle-identical to a batch
//! [`FlitLevel`] run over the same injection schedule.
//!
//! This is the correctness pin for the committed/speculative design: the
//! incremental engine may only ever commit cycles no future injection can
//! perturb, so however its speculation is promoted or discarded along the
//! way, the drained log — every record and every per-channel utilization
//! figure — must match the batch simulation byte for byte. Seed-driven
//! workloads sweep mesh shapes × virtual-channel counts × traffic
//! patterns, the same harness style that pins the batch router against
//! its retained oracle in `equivalence.rs`.

use commchar_des::SimTime;
use commchar_mesh::{
    EngineError, FlitLevel, IncrementalFlit, MeshConfig, MeshModel, NetEngine, NetMessage, NodeId,
    OnlineWormhole, Routing, Topology,
};

/// Deterministic 64-bit LCG (MMIX constants) — no external RNG crates.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Uniform-random workload: `count` messages, random pairs, sizes and a
/// bursty injection process that keeps the network contended.
fn workload(seed: u64, nodes: usize, count: usize, spread: u64, max_bytes: u64) -> Vec<NetMessage> {
    let mut rng = Lcg::new(seed);
    let mut msgs = Vec::with_capacity(count);
    let mut t = 0u64;
    for id in 0..count as u64 {
        let src = rng.below(nodes as u64) as u16;
        let mut dst = rng.below(nodes as u64) as u16;
        if dst == src {
            dst = (dst + 1) % nodes as u16;
        }
        // Bursts: ~1 in 4 messages shares its predecessor's inject time.
        if rng.below(4) != 0 {
            t += rng.below(spread);
        }
        msgs.push(NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: 1 + rng.below(max_bytes) as u32,
            inject: SimTime::from_ticks(t),
        });
    }
    msgs
}

/// Hotspot overlay: the last quarter of the messages all target one node.
fn hotspot(mut msgs: Vec<NetMessage>, nodes: usize) -> Vec<NetMessage> {
    let start = msgs.len() - msgs.len() / 4;
    for m in &mut msgs[start..] {
        m.dst = NodeId((nodes / 2) as u16);
        if m.src == m.dst {
            m.src = NodeId(0);
        }
    }
    msgs.retain(|m| m.src != m.dst);
    msgs
}

/// Feeds `msgs` one at a time through the closed-loop engine (sorted by
/// injection time, the trait's contract) and asserts the drained log is
/// byte-identical to a batch simulation of the same slice.
fn assert_closed_loop_identical(cfg: MeshConfig, msgs: &[NetMessage], label: &str) {
    let batch = FlitLevel::new(cfg).simulate(msgs);

    let mut sorted: Vec<NetMessage> = msgs.to_vec();
    sorted.sort_by_key(|m| (m.inject, m.id));
    let mut engine = IncrementalFlit::new(cfg);
    for &m in &sorted {
        let d = engine.send(m).unwrap_or_else(|e| panic!("{label}: {e}"));
        // The per-send feedback is speculative, but never earlier than the
        // uncontended bound and never later than the final answer can
        // improve on: sanity-check it is a plausible delivery time.
        assert!(d.ticks() > m.inject.ticks(), "{label}: delivery precedes injection (id {})", m.id);
    }
    let log = engine.finish();

    assert_eq!(log.records().len(), batch.records().len(), "{label}: record count diverged");
    for (a, b) in log.records().iter().zip(batch.records()) {
        assert_eq!(a, b, "{label}: record diverged (id {})", b.id);
    }
    assert_eq!(log.utilization(), batch.utilization(), "{label}: utilization diverged");
}

#[test]
fn closed_loop_matches_batch_across_shapes_and_vcs() {
    for &(w, h) in &[(4u16, 4u16), (8, 2), (8, 8)] {
        let nodes = (w as usize) * (h as usize);
        for &vcs in &[1usize, 2, 4] {
            for seed in 0..3u64 {
                let cfg = MeshConfig::new(w, h).with_virtual_channels(vcs);
                let msgs = workload(seed * 31 + vcs as u64, nodes, 120, 6, 96);
                assert_closed_loop_identical(cfg, &msgs, &format!("{w}x{h} vcs={vcs} seed={seed}"));
            }
        }
    }
}

#[test]
fn closed_loop_matches_batch_across_topologies_and_routings() {
    // The speculation/commit machinery must be oblivious to the routing
    // policy and the wraparound links: every (topology × routing) cell,
    // at the minimum legal VC budget and with headroom.
    for topology in [Topology::Mesh, Topology::Torus] {
        for routing in [Routing::Dimension, Routing::Adaptive] {
            let base = MeshConfig::for_nodes_net(16, topology, routing);
            for &vcs in &[base.vc_classes(), base.vc_classes() * 2] {
                let cfg = base.with_virtual_channels(vcs);
                let msgs = workload(23 + vcs as u64, 16, 120, 6, 96);
                let label = format!("{topology} {routing} vcs={vcs}");
                assert_closed_loop_identical(cfg, &msgs, &label);
            }
        }
    }
}

#[test]
fn closed_loop_matches_batch_under_hotspot() {
    for &(w, h) in &[(4u16, 4u16), (8, 8)] {
        let nodes = (w as usize) * (h as usize);
        for &vcs in &[1usize, 2] {
            let cfg = MeshConfig::new(w, h).with_virtual_channels(vcs);
            let msgs = hotspot(workload(7 + vcs as u64, nodes, 160, 4, 64), nodes);
            assert_closed_loop_identical(cfg, &msgs, &format!("hotspot {w}x{h} vcs={vcs}"));
        }
    }
}

#[test]
fn closed_loop_matches_batch_with_nondefault_router_parameters() {
    let cfg = MeshConfig::new(8, 2)
        .with_virtual_channels(2)
        .with_buffer_flits(4)
        .with_router_delay(0)
        .with_link_delay(2);
    let msgs = workload(99, 16, 140, 5, 80);
    assert_closed_loop_identical(cfg, &msgs, "8x2 deep-buffer slow-link");

    let cfg = MeshConfig::new(4, 4).with_buffer_flits(8).with_router_delay(5);
    let msgs = workload(123, 16, 100, 3, 48);
    assert_closed_loop_identical(cfg, &msgs, "4x4 slow-router");
}

#[test]
fn closed_loop_matches_batch_on_simultaneous_injections() {
    // Every node fires at t=0 toward a shuffled partner — maximal
    // speculation churn, since no send's horizon ever passes another's.
    for &vcs in &[1usize, 2, 4] {
        let cfg = MeshConfig::new(4, 4).with_virtual_channels(vcs);
        let mut rng = Lcg::new(5 + vcs as u64);
        let msgs: Vec<NetMessage> = (0..16u64)
            .map(|i| NetMessage {
                id: i,
                src: NodeId(i as u16),
                dst: NodeId(((i + 1 + rng.below(14)) % 16) as u16),
                bytes: 8 + rng.below(56) as u32,
                inject: SimTime::ZERO,
            })
            .filter(|m| m.src != m.dst)
            .collect();
        assert_closed_loop_identical(cfg, &msgs, &format!("simultaneous vcs={vcs}"));
    }
}

#[test]
fn closed_loop_matches_batch_on_widely_spaced_traffic() {
    // Large gaps between injections: every speculation gets promoted (it
    // finishes well before the next horizon), exercising the cheap path.
    let cfg = MeshConfig::new(4, 4).with_virtual_channels(2);
    let mut msgs = workload(41, 16, 60, 3, 64);
    for (i, m) in msgs.iter_mut().enumerate() {
        m.inject = SimTime::from_ticks(i as u64 * 10_000);
    }
    assert_closed_loop_identical(cfg, &msgs, "widely-spaced");
}

#[test]
fn closed_loop_engines_agree_on_the_contract() {
    // The two NetEngine implementations answer the same feed without
    // error and report the same message population (latencies differ —
    // that delta is exactly what exp_engine_fidelity measures).
    let cfg = MeshConfig::new(4, 4).with_virtual_channels(2);
    let mut msgs = workload(17, 16, 80, 8, 64);
    msgs.sort_by_key(|m| (m.inject, m.id));
    let mut rec = OnlineWormhole::new(cfg);
    let mut flit = IncrementalFlit::new(cfg);
    for &m in &msgs {
        rec.send(m);
        flit.send(m).unwrap();
    }
    let a = NetEngine::finish(rec);
    let b = flit.finish();
    assert_eq!(a.records().len(), b.records().len());
    for (ra, rb) in a.records().iter().zip(b.records()) {
        assert_eq!(
            (ra.id, ra.src, ra.dst, ra.bytes, ra.inject),
            (rb.id, rb.src, rb.dst, rb.bytes, rb.inject)
        );
    }
}

#[test]
fn out_of_order_feed_surfaces_as_typed_error() {
    let cfg = MeshConfig::new(4, 4);
    let mut engine = IncrementalFlit::new(cfg);
    engine
        .send(NetMessage {
            id: 0,
            src: NodeId(0),
            dst: NodeId(5),
            bytes: 16,
            inject: SimTime::from_ticks(100),
        })
        .unwrap();
    let err = engine
        .send(NetMessage {
            id: 1,
            src: NodeId(1),
            dst: NodeId(2),
            bytes: 16,
            inject: SimTime::from_ticks(40),
        })
        .unwrap_err();
    assert!(matches!(err, EngineError::OutOfOrder { id: 1, .. }), "{err}");
}
