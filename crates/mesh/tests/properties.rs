//! Property-based tests for the mesh network models.

use commchar_des::SimTime;
use commchar_mesh::{
    FlitLevel, MeshConfig, MeshModel, MeshShape, NetMessage, NodeId, OnlineWormhole, Routing,
    Topology,
};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = MeshShape> {
    (1u16..8, 1u16..8).prop_map(|(w, h)| MeshShape::new(w, h))
}

/// A shape of either topology plus either routing policy, as two coin
/// flips alongside the dimensions.
fn arb_net() -> impl Strategy<Value = (MeshShape, Routing)> {
    (1u16..8, 1u16..8, 0u8..2, 0u8..2).prop_map(|(w, h, torus, adaptive)| {
        let shape = if torus == 1 { MeshShape::new_torus(w, h) } else { MeshShape::new(w, h) };
        let routing = if adaptive == 1 { Routing::Adaptive } else { Routing::Dimension };
        (shape, routing)
    })
}

/// Random message batches on a shape (self-messages filtered out).
fn arb_msgs(nodes: usize, max: usize) -> impl Strategy<Value = Vec<NetMessage>> {
    prop::collection::vec((0..nodes as u16, 0..nodes as u16, 1u32..200, 0u64..20_000), 1..max)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .filter(|(_, (s, d, _, _))| s != d)
                .map(|(i, (s, d, bytes, t))| NetMessage {
                    id: i as u64,
                    src: NodeId(s),
                    dst: NodeId(d),
                    bytes,
                    inject: SimTime::from_ticks(t),
                })
                .collect()
        })
}

proptest! {
    /// Every XY route starts at the source's injection channel, ends at
    /// the destination's ejection channel, and has length = distance + 2.
    #[test]
    fn xy_routes_are_well_formed(shape in arb_shape(), a in 0u16..64, b in 0u16..64) {
        let n = shape.nodes() as u16;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        prop_assume!(src != dst);
        let path = shape.xy_route(src, dst);
        prop_assert_eq!(path[0], shape.injection(src));
        prop_assert_eq!(*path.last().unwrap(), shape.ejection(dst));
        prop_assert_eq!(path.len() as u32, shape.hop_distance(src, dst) + 2);
        // No channel repeats (minimal routes are simple paths).
        let mut seen = std::collections::HashSet::new();
        for c in &path {
            prop_assert!(seen.insert(*c), "repeated channel in route");
        }
    }

    /// Route/distance invariants over the full (topology × routing)
    /// matrix: wrap-aware `hop_distance` and every routing policy agree
    /// on route length (`distance + 2`, counting injection + ejection),
    /// endpoints are correct, and routes are simple paths — i.e. the
    /// adaptive policy stays *minimal* on both topologies.
    #[test]
    fn routes_are_minimal_on_both_topologies(
        net in arb_net(),
        a in 0u16..64,
        b in 0u16..64,
    ) {
        let (shape, routing) = net;
        let n = shape.nodes() as u16;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        prop_assume!(src != dst);
        let path = shape.route(src, dst, routing);
        prop_assert_eq!(path[0], shape.injection(src));
        prop_assert_eq!(*path.last().unwrap(), shape.ejection(dst));
        prop_assert_eq!(path.len() as u32, shape.hop_distance(src, dst) + 2);
        let mut seen = std::collections::HashSet::new();
        for c in &path {
            prop_assert!(seen.insert(*c), "repeated channel in route");
        }
        // The torus never routes the long way: distance is bounded by
        // half the ring in each dimension.
        if shape.topology() == Topology::Mesh {
            prop_assert_eq!(path.len(), shape.xy_route(src, dst).len());
        } else {
            let bound = shape.width() as u32 / 2 + shape.height() as u32 / 2;
            prop_assert!(shape.hop_distance(src, dst) <= bound);
        }
    }

    /// The online model delivers every message, never faster than the
    /// zero-load bound, and in-order per (src, dst) pair.
    #[test]
    fn online_model_invariants(msgs in arb_msgs(12, 60)) {
        prop_assume!(!msgs.is_empty());
        let cfg = MeshConfig::for_nodes(12);
        let log = OnlineWormhole::new(cfg).simulate(&msgs);
        prop_assert_eq!(log.records().len(), msgs.len());
        log.check_invariants(cfg.shape).unwrap();
        // FIFO per source-destination pair: injection order = delivery order.
        let mut per_pair: std::collections::HashMap<(u16, u16), Vec<(u64, u64)>> = Default::default();
        for r in log.records() {
            per_pair.entry((r.src.0, r.dst.0)).or_default().push((r.inject, r.delivered));
        }
        for seq in per_pair.values_mut() {
            seq.sort();
            for w in seq.windows(2) {
                prop_assert!(w[1].1 >= w[0].1, "pair overtaking: {w:?}");
            }
        }
    }

    /// The flit-level model also delivers everything and respects the
    /// zero-load bound.
    #[test]
    fn flit_model_invariants(msgs in arb_msgs(8, 25)) {
        prop_assume!(!msgs.is_empty());
        let cfg = MeshConfig::for_nodes(8);
        let log = FlitLevel::new(cfg).simulate(&msgs);
        prop_assert_eq!(log.records().len(), msgs.len());
        log.check_invariants(cfg.shape).unwrap();
    }

    /// For a single message, both models agree exactly (zero-load
    /// construction equivalence).
    #[test]
    fn models_agree_at_zero_load(
        shape in (2u16..6, 2u16..6),
        src in 0u16..36,
        dst in 0u16..36,
        bytes in 1u32..300,
    ) {
        let cfg = MeshConfig::new(shape.0, shape.1);
        let n = cfg.shape.nodes() as u16;
        let (src, dst) = (src % n, dst % n);
        prop_assume!(src != dst);
        let msgs = vec![NetMessage {
            id: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject: SimTime::from_ticks(5),
        }];
        let online = OnlineWormhole::new(cfg).simulate(&msgs);
        let flit = FlitLevel::new(cfg).simulate(&msgs);
        prop_assert_eq!(online.records()[0].delivered, flit.records()[0].delivered);
        prop_assert_eq!(online.records()[0].latency(), cfg.zero_load_latency(bytes, online.records()[0].hops));
    }

    /// Batch simulation is permutation-invariant: shuffling the input
    /// message list does not change any record (models sort internally).
    #[test]
    fn simulate_is_order_insensitive(msgs in arb_msgs(9, 40), seed in 0u64..1000) {
        prop_assume!(msgs.len() > 1);
        let cfg = MeshConfig::for_nodes(9);
        let a = OnlineWormhole::new(cfg).simulate(&msgs);
        let mut shuffled = msgs.clone();
        // Deterministic Fisher-Yates with a tiny LCG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let b = OnlineWormhole::new(cfg).simulate(&shuffled);
        let mut ra = a.into_records();
        let mut rb = b.into_records();
        ra.sort_by_key(|r| r.id);
        rb.sort_by_key(|r| r.id);
        prop_assert_eq!(ra, rb);
    }

    /// Zero-load latency is monotone in both payload size and distance.
    #[test]
    fn zero_load_monotone(bytes in 0u32..1000, hops in 1u32..10) {
        let cfg = MeshConfig::new(8, 8);
        prop_assert!(cfg.zero_load_latency(bytes + 2, hops) >= cfg.zero_load_latency(bytes, hops));
        prop_assert!(cfg.zero_load_latency(bytes, hops + 1) > cfg.zero_load_latency(bytes, hops));
    }
}
