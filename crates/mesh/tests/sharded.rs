//! Equivalence suite for the sharded wavefront engine: `--sim-jobs N`
//! must be **cycle-identical** to the serial event loop — byte-identical
//! records and per-channel utilization for every shard count, every
//! shape, every VC count, every seed.
//!
//! The serial `FlitLevel` is itself pinned against the retained
//! cycle-loop oracle in `equivalence.rs`, so pinning the sharded engine
//! against the serial one transitively pins it against the reference.
//! Seed-driven sweeps cover the structured corners (shard counts of 1,
//! odd counts, one per row, and more shards than rows); a proptest sweeps
//! randomized shapes × VCs × workloads × shard counts on top.

use commchar_des::SimTime;
use commchar_mesh::{
    EngineError, FlitLevel, IncrementalFlit, MeshConfig, MeshModel, NetMessage, NodeId, Routing,
};
use proptest::prelude::*;

/// A torus config with exactly the minimum VC budget for its routing
/// policy — the tightest (most deadlock-prone) legal configuration.
fn torus_cfg(w: u16, h: u16, routing: Routing) -> MeshConfig {
    let cfg = MeshConfig::new_torus(w, h).with_routing(routing);
    let vcs = cfg.vc_classes().max(cfg.virtual_channels);
    cfg.with_virtual_channels(vcs)
}

/// Deterministic 64-bit LCG (MMIX constants) — no external RNG crates.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Uniform-random workload: `count` messages, random pairs, sizes and a
/// bursty injection process that keeps the network contended.
fn workload(seed: u64, nodes: usize, count: usize, spread: u64, max_bytes: u64) -> Vec<NetMessage> {
    let mut rng = Lcg::new(seed);
    let mut msgs = Vec::with_capacity(count);
    let mut t = 0u64;
    for id in 0..count as u64 {
        let src = rng.below(nodes as u64) as u16;
        let mut dst = rng.below(nodes as u64) as u16;
        if dst == src {
            dst = (dst + 1) % nodes as u16;
        }
        // Bursts: ~1 in 4 messages shares its predecessor's inject time.
        if rng.below(4) != 0 {
            t += rng.below(spread);
        }
        msgs.push(NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: 1 + rng.below(max_bytes) as u32,
            inject: SimTime::from_ticks(t),
        });
    }
    msgs
}

/// Hotspot overlay: the last quarter of the messages all target one node.
fn hotspot(mut msgs: Vec<NetMessage>, nodes: usize) -> Vec<NetMessage> {
    let start = msgs.len() - msgs.len() / 4;
    for m in &mut msgs[start..] {
        m.dst = NodeId((nodes / 2) as u16);
        if m.src == m.dst {
            m.src = NodeId(0);
        }
    }
    msgs.retain(|m| m.src != m.dst);
    msgs
}

/// Runs `msgs` serially and at each shard count, asserting byte-identical
/// logs (every record, every utilization figure).
fn assert_sharded_identical(cfg: MeshConfig, msgs: &[NetMessage], jobs: &[usize], label: &str) {
    let serial = FlitLevel::new(cfg).simulate(msgs);
    for &n in jobs {
        let sharded = FlitLevel::new(cfg).with_sim_jobs(n).simulate(msgs);
        assert_eq!(
            sharded.records().len(),
            serial.records().len(),
            "{label} jobs={n}: record count diverged"
        );
        for (a, b) in sharded.records().iter().zip(serial.records()) {
            assert_eq!(a, b, "{label} jobs={n}: record diverged (id {})", b.id);
        }
        assert_eq!(
            sharded.utilization(),
            serial.utilization(),
            "{label} jobs={n}: utilization diverged"
        );
    }
}

#[test]
fn sharded_matches_serial_across_shapes_vcs_and_seeds() {
    for &(w, h) in &[(4u16, 4u16), (8, 2), (2, 8), (8, 8)] {
        for &vcs in &[1usize, 2, 4] {
            for seed in 0..3u64 {
                let cfg = MeshConfig::new(w, h).with_virtual_channels(vcs);
                let nodes = (w * h) as usize;
                let msgs = workload(seed * 31 + vcs as u64, nodes, 120, 6, 96);
                // 1 (serial fallback), 2, an odd count, one per row, and
                // more shards than rows (capped by the planner).
                let rows = h as usize;
                let jobs = [1usize, 2, 3, rows, rows + 3];
                assert_sharded_identical(cfg, &msgs, &jobs, &format!("{w}x{h} vcs={vcs} s={seed}"));
            }
        }
    }
}

#[test]
fn sharded_matches_serial_under_hotspot_contention() {
    for &vcs in &[1usize, 2] {
        let cfg = MeshConfig::new(6, 6).with_virtual_channels(vcs);
        let msgs = hotspot(workload(7 + vcs as u64, 36, 200, 4, 64), 36);
        assert_sharded_identical(cfg, &msgs, &[2, 4, 6, 9], &format!("hotspot vcs={vcs}"));
    }
}

#[test]
fn sharded_matches_serial_on_nondefault_router_parameters() {
    let cfg = MeshConfig::new(4, 6)
        .with_virtual_channels(2)
        .with_buffer_flits(4)
        .with_link_delay(2)
        .with_router_delay(3)
        .with_flit_bytes(4);
    let msgs = workload(99, 24, 150, 5, 128);
    assert_sharded_identical(cfg, &msgs, &[2, 3, 6, 8], "nondefault cfg");
}

#[test]
fn sharded_reuses_the_worker_team_across_batches() {
    let cfg = MeshConfig::new(4, 4).with_virtual_channels(2);
    let msgs = workload(5, 16, 80, 6, 64);
    let mut serial = FlitLevel::new(cfg);
    let mut sharded = FlitLevel::new(cfg).with_sim_jobs(4);
    for round in 0..3 {
        let a = serial.simulate(&msgs);
        let b = sharded.simulate(&msgs);
        assert_eq!(a.records(), b.records(), "round {round}: records diverged");
        assert_eq!(a.utilization(), b.utilization(), "round {round}: utilization diverged");
    }
}

/// The closed-loop engine: `--sim-jobs` must not perturb the per-send
/// feedback (delivery times reported while the loop is still running) —
/// only the final drain is sharded — and the drained log must stay
/// byte-identical to the serial engine's.
#[test]
fn closed_loop_per_send_feedback_is_sim_jobs_invariant() {
    let cfg = MeshConfig::new(4, 4).with_virtual_channels(2);
    let msgs = workload(11, 16, 100, 8, 64);
    let mut sorted = msgs.clone();
    sorted.sort_by_key(|m| (m.inject, m.id));

    let mut serial = IncrementalFlit::new(cfg);
    let mut sharded = IncrementalFlit::new(cfg).with_sim_jobs(4);
    for m in &sorted {
        let a = serial.try_send(*m).expect("serial send");
        let b = sharded.try_send(*m).expect("sharded send");
        assert_eq!(a, b, "per-send delivery diverged for id {}", m.id);
    }
    let a = serial.into_sink();
    let b = sharded.into_sink();
    assert_eq!(a.records(), b.records(), "drained records diverged");
    assert_eq!(a.utilization(), b.utilization(), "drained utilization diverged");
}

/// The torus wrap links make the shard chain a ring: the first and last
/// bands exchange boundary traffic directly. Every shard count must stay
/// byte-identical to the serial drain, under both routing policies —
/// including two shards (the pair is then connected by *two* edges) and
/// one shard per row.
#[test]
fn sharded_matches_serial_on_torus_across_routings_and_jobs() {
    for routing in [Routing::Dimension, Routing::Adaptive] {
        for &(w, h) in &[(4u16, 4u16), (6, 5), (8, 8)] {
            let cfg = torus_cfg(w, h, routing);
            let nodes = (w * h) as usize;
            for seed in 0..2u64 {
                let msgs = workload(seed * 43 + w as u64, nodes, 120, 6, 96);
                let rows = h as usize;
                let jobs = [1usize, 2, 3, rows, rows + 3];
                let label = format!("torus {w}x{h} {routing} s={seed}");
                assert_sharded_identical(cfg, &msgs, &jobs, &label);
            }
        }
    }
}

/// Deadlock-freedom soak: heavily contended torus traffic (hotspot
/// overlay, minimum VC budget, deep bursts) must drain to completion on
/// both routing policies at every shard count — a cyclic channel
/// dependency or a wavefront stall on the wrap edge would surface here
/// as a `Wedged` panic or a hang.
#[test]
fn contended_torus_traffic_drains_without_wedging() {
    for routing in [Routing::Dimension, Routing::Adaptive] {
        let cfg = torus_cfg(6, 6, routing);
        let msgs = hotspot(workload(13, 36, 240, 3, 96), 36);
        assert_sharded_identical(cfg, &msgs, &[2, 3, 6, 9], &format!("torus soak {routing}"));
    }
}

/// A wedge must surface as a typed error whose display carries the
/// human-readable report verbatim.
#[test]
fn wedged_error_displays_its_report() {
    let e = EngineError::Wedged { report: "flit simulation wedged at t=9".into() };
    assert_eq!(e.to_string(), "flit simulation wedged at t=9");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized pin: any shape, VC count, workload and shard count —
    /// the sharded engine's log is byte-identical to the serial one's.
    #[test]
    fn sharded_engine_is_cycle_identical(
        w in 2u16..7,
        h in 2u16..7,
        vcs in 1usize..4,
        jobs in 1usize..10,
        seed in 0u64..1u64 << 32,
    ) {
        let cfg = MeshConfig::new(w, h).with_virtual_channels(vcs);
        let nodes = (w * h) as usize;
        let msgs = workload(seed, nodes, 60, 7, 80);
        let serial = FlitLevel::new(cfg).simulate(&msgs);
        let sharded = FlitLevel::new(cfg).with_sim_jobs(jobs).simulate(&msgs);
        prop_assert_eq!(serial.records(), sharded.records());
        prop_assert_eq!(serial.utilization(), sharded.utilization());
    }

    /// The same randomized pin on a torus, over both routing policies and
    /// a VC budget at or above the class minimum. Shapes down to 2×2
    /// exercise the degenerate double-edge wrap links.
    #[test]
    fn sharded_torus_engine_is_cycle_identical(
        w in 2u16..7,
        h in 2u16..7,
        adaptive in 0u8..2,
        extra_vcs in 0usize..3,
        jobs in 1usize..10,
        seed in 0u64..1u64 << 32,
    ) {
        let routing = if adaptive == 1 { Routing::Adaptive } else { Routing::Dimension };
        let base = torus_cfg(w, h, routing);
        let cfg = base.with_virtual_channels(base.virtual_channels + extra_vcs);
        let nodes = (w * h) as usize;
        let msgs = workload(seed, nodes, 60, 7, 80);
        let serial = FlitLevel::new(cfg).simulate(&msgs);
        let sharded = FlitLevel::new(cfg).with_sim_jobs(jobs).simulate(&msgs);
        prop_assert_eq!(serial.records(), sharded.records());
        prop_assert_eq!(serial.utilization(), sharded.utilization());
    }
}
