//! Randomized equivalence suite: the event-driven [`FlitLevel`] must be
//! cycle-identical to the retained cycle-loop [`FlitCycleReference`].
//!
//! Seed-driven workloads sweep mesh shapes × virtual-channel counts ×
//! traffic patterns and assert byte-identical `NetLog`s — every record
//! (delivered time, and therefore blocked cycles) and every per-channel
//! utilization figure. Any divergence in switch allocation order, VC
//! assignment, buffer backpressure or idle-time skipping shows up here as
//! a concrete record diff.

use commchar_des::SimTime;
use commchar_mesh::{
    EngineError, FlitCycleReference, FlitLevel, MeshConfig, MeshModel, NetMessage, NodeId, Routing,
    Topology,
};

/// Deterministic 64-bit LCG (MMIX constants) — no external RNG crates.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Uniform-random workload: `count` messages, random pairs, sizes and a
/// bursty injection process that keeps the network contended.
fn workload(seed: u64, nodes: usize, count: usize, spread: u64, max_bytes: u64) -> Vec<NetMessage> {
    let mut rng = Lcg::new(seed);
    let mut msgs = Vec::with_capacity(count);
    let mut t = 0u64;
    for id in 0..count as u64 {
        let src = rng.below(nodes as u64) as u16;
        let mut dst = rng.below(nodes as u64) as u16;
        if dst == src {
            dst = (dst + 1) % nodes as u16;
        }
        // Bursts: ~1 in 4 messages shares its predecessor's inject time.
        if rng.below(4) != 0 {
            t += rng.below(spread);
        }
        msgs.push(NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: 1 + rng.below(max_bytes) as u32,
            inject: SimTime::from_ticks(t),
        });
    }
    msgs
}

/// Hotspot overlay: the last quarter of the messages all target one node.
fn hotspot(mut msgs: Vec<NetMessage>, nodes: usize) -> Vec<NetMessage> {
    let start = msgs.len() - msgs.len() / 4;
    for m in &mut msgs[start..] {
        m.dst = NodeId((nodes / 2) as u16);
        if m.src == m.dst {
            m.src = NodeId(0);
        }
    }
    msgs.retain(|m| m.src != m.dst);
    msgs
}

fn assert_identical(cfg: MeshConfig, msgs: &[NetMessage], label: &str) {
    let fast = FlitLevel::new(cfg).simulate(msgs);
    let reference = FlitCycleReference::new(cfg).simulate(msgs);
    assert_eq!(fast.records().len(), reference.records().len(), "{label}: record count diverged");
    for (a, b) in fast.records().iter().zip(reference.records()) {
        assert_eq!(a, b, "{label}: record diverged (id {})", b.id);
    }
    assert_eq!(fast.utilization(), reference.utilization(), "{label}: utilization diverged");
}

#[test]
fn event_driven_matches_reference_across_shapes_and_vcs() {
    for &(w, h) in &[(4u16, 4u16), (8, 2), (8, 8)] {
        let nodes = (w as usize) * (h as usize);
        for &vcs in &[1usize, 2, 4] {
            for seed in 0..3u64 {
                let cfg = MeshConfig::new(w, h).with_virtual_channels(vcs);
                let msgs = workload(seed * 31 + vcs as u64, nodes, 120, 6, 96);
                assert_identical(cfg, &msgs, &format!("{w}x{h} vcs={vcs} seed={seed}"));
            }
        }
    }
}

#[test]
fn event_driven_matches_reference_under_hotspot() {
    for &(w, h) in &[(4u16, 4u16), (8, 8)] {
        let nodes = (w as usize) * (h as usize);
        for &vcs in &[1usize, 2] {
            let cfg = MeshConfig::new(w, h).with_virtual_channels(vcs);
            let msgs = hotspot(workload(7 + vcs as u64, nodes, 160, 4, 64), nodes);
            assert_identical(cfg, &msgs, &format!("hotspot {w}x{h} vcs={vcs}"));
        }
    }
}

#[test]
fn event_driven_matches_reference_with_nondefault_router_parameters() {
    // Deeper buffers, slower links, instant routing decisions: exercises
    // the busy_until wheel and the head-ready charge paths differently.
    let cfg = MeshConfig::new(8, 2)
        .with_virtual_channels(2)
        .with_buffer_flits(4)
        .with_router_delay(0)
        .with_link_delay(2);
    let msgs = workload(99, 16, 140, 5, 80);
    assert_identical(cfg, &msgs, "8x2 deep-buffer slow-link");

    let cfg = MeshConfig::new(4, 4).with_buffer_flits(8).with_router_delay(5);
    let msgs = workload(123, 16, 100, 3, 48);
    assert_identical(cfg, &msgs, "4x4 slow-router");
}

#[test]
fn event_driven_matches_reference_on_simultaneous_injections() {
    // Every node fires at t=0 toward a shuffled partner — maximal tie
    // breaking stress for the round-robin allocators.
    for &vcs in &[1usize, 2, 4] {
        let cfg = MeshConfig::new(4, 4).with_virtual_channels(vcs);
        let mut rng = Lcg::new(5 + vcs as u64);
        let msgs: Vec<NetMessage> = (0..16u64)
            .map(|i| NetMessage {
                id: i,
                src: NodeId(i as u16),
                dst: NodeId(((i + 1 + rng.below(14)) % 16) as u16),
                bytes: 8 + rng.below(56) as u32,
                inject: SimTime::ZERO,
            })
            .filter(|m| m.src != m.dst)
            .collect();
        assert_identical(cfg, &msgs, &format!("simultaneous vcs={vcs}"));
    }
}

#[test]
fn event_driven_matches_reference_across_topologies_and_routings() {
    // The full (topology × routing) matrix, sized so every VC-class
    // budget is covered at its minimum and with headroom.
    for topology in [Topology::Mesh, Topology::Torus] {
        for routing in [Routing::Dimension, Routing::Adaptive] {
            let base = MeshConfig::for_nodes_net(16, topology, routing);
            for &vcs in &[base.vc_classes(), base.vc_classes() * 2] {
                let cfg = base.with_virtual_channels(vcs);
                for seed in 0..2u64 {
                    let msgs = workload(seed * 17 + vcs as u64, 16, 120, 6, 96);
                    let label = format!("{topology} {routing} vcs={vcs} seed={seed}");
                    assert_identical(cfg, &msgs, &label);
                }
            }
        }
    }
}

#[test]
fn event_driven_matches_reference_under_torus_hotspot() {
    for routing in [Routing::Dimension, Routing::Adaptive] {
        let cfg = MeshConfig::for_nodes_net(36, Topology::Torus, routing);
        let msgs = hotspot(workload(11, 36, 160, 4, 64), 36);
        assert_identical(cfg, &msgs, &format!("torus hotspot {routing}"));
    }
}

#[test]
fn undersized_vc_budget_is_a_typed_error_not_a_panic() {
    // A torus needs an escape-VC class per dateline state; adaptive
    // routing doubles the budget. Both shortfalls surface as the typed
    // `UnsupportedTopology` error rather than a constructor panic.
    let err = FlitLevel::try_new(MeshConfig::new_torus(4, 4)).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::UnsupportedTopology {
                topology: Topology::Torus,
                routing: Routing::Dimension,
                needed: 2,
                have: 1,
            }
        ),
        "unexpected error: {err}"
    );

    let cfg = MeshConfig::new_torus(4, 4).with_routing(Routing::Adaptive).with_virtual_channels(2);
    let err = FlitLevel::try_new(cfg).unwrap_err();
    assert!(
        matches!(err, EngineError::UnsupportedTopology { needed: 4, have: 2, .. }),
        "unexpected error: {err}"
    );
    assert!(FlitLevel::try_new(cfg.with_virtual_channels(4)).is_ok());
}
