//! Scale test for the streaming accumulation path: a ≥10M-message
//! synthetic workload must complete with peak memory independent of the
//! message count — the property that distinguishes [`StreamingLog`] from
//! the retained [`NetLog`].

use commchar_mesh::{LogSink, MsgRecord, NodeId, StreamingLog};

/// Deterministic synthetic message stream: round-robin sources, rotating
/// destinations, mildly bursty injection spacing, varied payloads.
fn synth_record(i: u64, nodes: u64) -> MsgRecord {
    let src = (i % nodes) as u16;
    let dst = ((i * 7 + 3) % nodes) as u16;
    let inject = i * 3 + (i % 5) * 11;
    MsgRecord {
        id: i,
        src: NodeId(src),
        dst: NodeId(if dst == src { (dst + 1) % nodes as u16 } else { dst }),
        bytes: 8 + (i % 1024) as u32,
        inject,
        delivered: inject + 20 + (i % 97),
        hops: 1 + (i % 6) as u32,
        zero_load: 15,
    }
}

#[test]
fn ten_million_messages_in_constant_memory() {
    const NODES: u64 = 16;
    const TOTAL: u64 = 10_000_000;
    const CHECKPOINT: u64 = 1_000_000;

    let mut stream = StreamingLog::new(NODES as usize);
    for i in 0..CHECKPOINT {
        stream.record(synth_record(i, NODES));
    }
    let mem_at_checkpoint = stream.approx_mem_bytes();

    for i in CHECKPOINT..TOTAL {
        stream.record(synth_record(i, NODES));
    }

    // 10× the messages, identical footprint: memory is a function of
    // (bins, nodes), never of message count.
    assert_eq!(stream.approx_mem_bytes(), mem_at_checkpoint);
    assert_eq!(stream.messages(), TOTAL);

    // And the accumulated statistics are still coherent.
    let s = stream.summary();
    assert_eq!(s.messages, TOTAL);
    assert!(s.mean_latency > 0.0 && s.mean_latency.is_finite());
    assert!(s.median_latency > 0.0);
    assert!(s.span > 0);
    let spatial = stream.spatial_counts();
    let spatial_total: u64 = spatial.iter().flatten().sum();
    assert_eq!(spatial_total, TOTAL);
    assert_eq!(stream.latency_histogram().total(), TOTAL);
    // Every source except the first has 10M/16 − 1 inter-arrival gaps.
    assert_eq!(stream.interarrival().count(), TOTAL - NODES);

    // The footprint itself is small: O(bins + P²) ≈ a few KiB, nowhere
    // near the ~560 MB ten million retained MsgRecords would need.
    assert!(mem_at_checkpoint < 64 * 1024, "footprint {mem_at_checkpoint} bytes");
}
