//! Event-recurrence wormhole model with immediate feedback.

use commchar_des::SimTime;

use crate::log::ticks;
use crate::sink::{LogSink, StreamingLog};
use crate::{MeshConfig, MeshModel, MsgRecord, NetLog, NetMessage};

/// The channel-granularity wormhole model.
///
/// A message's header acquires the channels of its XY route in order; the
/// recurrence
///
/// ```text
/// h[0] = max(inject, free[c0])
/// h[i] = max(h[i-1] + hop_latency, free[ci])
/// ```
///
/// gives the header's entry time into each channel. Once the header reaches
/// the destination, the body streams behind at one flit per `link_delay`,
/// and each channel is released when the tail passes it. Channels stay held
/// while the header is blocked — the defining property of wormhole routing —
/// so one congested message backs up every channel of its partial path.
///
/// Messages must be injected in nondecreasing time order (asserted): the
/// model resolves contention in injection order, which is exact for the
/// execution-driven co-simulation (its event loop emits messages in global
/// time order) and a tight approximation for batch trace replay.
///
/// [`send`](OnlineWormhole::send) returns the delivery time immediately —
/// the "feedback arrow" from the network simulator to the event generator
/// in the paper's Figure 1.
///
/// The model is generic over its [`LogSink`]: with the default
/// [`NetLog`] every record is retained for offline analysis; with a
/// [`StreamingLog`] (see [`OnlineWormhole::streaming`]) records are folded
/// into online statistics and memory stays constant regardless of how many
/// messages are simulated.
#[derive(Debug)]
pub struct OnlineWormhole<S: LogSink = NetLog> {
    cfg: MeshConfig,
    /// Per-channel time at which the channel is next free.
    free: Vec<u64>,
    /// Per-channel accumulated busy ticks (for utilization).
    busy: Vec<u64>,
    sink: S,
    last_inject: SimTime,
    first_inject: Option<u64>,
    last_delivery: u64,
}

impl OnlineWormhole {
    /// Creates an idle network logging into a [`NetLog`].
    pub fn new(cfg: MeshConfig) -> Self {
        OnlineWormhole::with_sink(cfg, NetLog::new())
    }

    /// Finishes the simulation and returns the network log, including
    /// per-channel utilization over the observed span.
    pub fn into_log(self) -> NetLog {
        self.into_sink()
    }
}

impl OnlineWormhole<StreamingLog> {
    /// Creates an idle network accumulating into a [`StreamingLog`] sized
    /// for this mesh — constant memory however long the run.
    pub fn streaming(cfg: MeshConfig) -> Self {
        let nodes = cfg.shape.nodes();
        OnlineWormhole::with_sink(cfg, StreamingLog::new(nodes))
    }
}

impl<S: LogSink> OnlineWormhole<S> {
    /// Creates an idle network delivering records into `sink`.
    pub fn with_sink(cfg: MeshConfig, sink: S) -> Self {
        let slots = cfg.shape.channel_slots();
        OnlineWormhole {
            cfg,
            free: vec![0; slots],
            busy: vec![0; slots],
            sink,
            last_inject: SimTime::ZERO,
            first_inject: None,
            last_delivery: 0,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// The sink accumulating this network's records.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Injects a message and returns the delivery time of its tail flit at
    /// the destination network interface.
    ///
    /// # Panics
    ///
    /// Panics if `msg.inject` precedes a previously injected message (the
    /// model requires time-ordered injection) or if `src == dst`. Callers
    /// that want the ordering violation as a value rather than a panic —
    /// the [`NetEngine`](crate::NetEngine) trait path — use
    /// [`try_send`](OnlineWormhole::try_send).
    pub fn send(&mut self, msg: NetMessage) -> SimTime {
        debug_assert!(
            msg.inject >= self.last_inject,
            "messages must be injected in nondecreasing time order ({:?} after {:?})",
            msg.inject,
            self.last_inject
        );
        self.try_send(msg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`send`](OnlineWormhole::send): returns
    /// [`EngineError::OutOfOrder`](crate::EngineError::OutOfOrder) instead
    /// of panicking when `msg.inject` precedes a previously injected
    /// message, so a malformed trace surfaces as an error from the replay
    /// layer rather than a panic from deep inside the network model.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (no route to oneself).
    pub fn try_send(&mut self, msg: NetMessage) -> Result<SimTime, crate::EngineError> {
        if msg.inject < self.last_inject {
            return Err(crate::EngineError::OutOfOrder {
                id: msg.id,
                inject: msg.inject,
                last: self.last_inject,
            });
        }
        self.last_inject = msg.inject;
        let path = self.cfg.shape.route(msg.src, msg.dst, self.cfg.routing);
        let hop = self.cfg.hop_latency();
        let link = self.cfg.link_delay;
        let flits = self.cfg.flits_for(msg.bytes);

        // Header acquisition recurrence.
        let mut entry = Vec::with_capacity(path.len());
        let mut t = ticks(msg.inject);
        for (i, ch) in path.iter().enumerate() {
            let earliest = if i == 0 { t } else { t + hop };
            t = earliest.max(self.free[ch.0 as usize]);
            entry.push(t);
        }
        // Header reaches the destination NI one hop after entering the
        // ejection channel; the remaining flits drain behind it.
        let header_delivered = t + hop;
        let delivered = header_delivered + (flits - 1) * link;

        // Release channels as the tail passes them (pipelined drain).
        let k = path.len();
        for (i, ch) in path.iter().enumerate() {
            let release = delivered - (k - 1 - i) as u64 * link;
            let idx = ch.0 as usize;
            let release = release.max(entry[i]);
            self.busy[idx] += release - entry[i];
            self.free[idx] = release;
        }

        let hops = self.cfg.shape.hop_distance(msg.src, msg.dst);
        self.first_inject.get_or_insert(ticks(msg.inject));
        self.last_delivery = self.last_delivery.max(delivered);
        self.sink.record(MsgRecord {
            id: msg.id,
            src: msg.src,
            dst: msg.dst,
            bytes: msg.bytes,
            inject: ticks(msg.inject),
            delivered,
            hops,
            zero_load: self.cfg.zero_load_latency(msg.bytes, hops),
        });
        Ok(SimTime::from_ticks(delivered))
    }

    /// Finishes the simulation: hands per-channel utilization over the
    /// observed span to the sink and returns it.
    pub fn into_sink(mut self) -> S {
        let span = match self.first_inject {
            Some(first) if self.last_delivery > first => (self.last_delivery - first) as f64,
            _ => 0.0,
        };
        let util: Vec<(u32, f64)> = self
            .busy
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(i, &b)| (i as u32, if span > 0.0 { b as f64 / span } else { 0.0 }))
            .collect();
        self.sink.finish(util);
        self.sink
    }
}

impl MeshModel for OnlineWormhole {
    fn simulate(&mut self, msgs: &[NetMessage]) -> NetLog {
        let mut sorted: Vec<NetMessage> = msgs.to_vec();
        sorted.sort_by_key(|m| (m.inject, m.id));
        for m in &sorted {
            self.send(*m);
        }
        std::mem::replace(self, OnlineWormhole::new(self.cfg)).into_log()
    }
}

#[cfg(test)]
mod tests {
    use commchar_des::SimTime;

    use super::*;
    use crate::NodeId;

    fn msg(id: u64, src: u16, dst: u16, bytes: u32, inject: u64) -> NetMessage {
        NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject: SimTime::from_ticks(inject),
        }
    }

    #[test]
    fn zero_load_latency_matches_config() {
        let cfg = MeshConfig::new(4, 4);
        let mut net = OnlineWormhole::new(cfg);
        let d = net.send(msg(0, 0, 15, 32, 0));
        let hops = cfg.shape.hop_distance(NodeId(0), NodeId(15));
        assert_eq!(d.ticks(), cfg.zero_load_latency(32, hops));
        let log = net.into_log();
        assert_eq!(log.records()[0].blocked(), 0);
    }

    #[test]
    fn contention_delays_second_message() {
        let cfg = MeshConfig::new(4, 1);
        let mut net = OnlineWormhole::new(cfg);
        let d1 = net.send(msg(0, 0, 3, 64, 0));
        // Same route, same time: must wait for the first worm.
        let d2 = net.send(msg(1, 0, 3, 64, 0));
        assert!(d2 > d1);
        let log = net.into_log();
        assert!(log.records()[1].blocked() > 0);
    }

    #[test]
    fn disjoint_routes_do_not_interact() {
        let cfg = MeshConfig::new(4, 2);
        let mut net = OnlineWormhole::new(cfg);
        let d1 = net.send(msg(0, 0, 1, 16, 0));
        let d2 = net.send(msg(1, 6, 7, 16, 0));
        assert_eq!(d1.ticks(), d2.ticks());
        let log = net.into_log();
        assert_eq!(log.records()[0].blocked(), 0);
        assert_eq!(log.records()[1].blocked(), 0);
    }

    #[test]
    fn injection_channel_serializes_same_source() {
        let cfg = MeshConfig::new(4, 2);
        let mut net = OnlineWormhole::new(cfg);
        // Different destinations but same source NI.
        let d1 = net.send(msg(0, 0, 1, 16, 0));
        let d2 = net.send(msg(1, 0, 4, 16, 0));
        assert!(d2.ticks() > 0);
        let _ = d1;
        let log = net.into_log();
        assert!(log.records()[1].blocked() > 0, "second message should queue at the NI");
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn out_of_order_injection_panics() {
        let cfg = MeshConfig::new(2, 2);
        let mut net = OnlineWormhole::new(cfg);
        net.send(msg(0, 0, 1, 8, 100));
        net.send(msg(1, 1, 0, 8, 50));
    }

    #[test]
    fn batch_simulate_sorts_and_checks() {
        let cfg = MeshConfig::new(4, 2);
        let msgs = vec![msg(1, 1, 0, 8, 50), msg(0, 0, 1, 8, 0), msg(2, 3, 6, 24, 20)];
        let log = OnlineWormhole::new(cfg).simulate(&msgs);
        assert_eq!(log.records().len(), 3);
        log.check_invariants(cfg.shape).unwrap();
    }

    #[test]
    fn utilization_reported_for_used_channels() {
        let cfg = MeshConfig::new(2, 1);
        let mut net = OnlineWormhole::new(cfg);
        net.send(msg(0, 0, 1, 128, 0));
        let log = net.into_log();
        assert!(!log.utilization().is_empty());
        for &(_, u) in log.utilization() {
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn streaming_sink_sees_what_the_log_sees() {
        let cfg = MeshConfig::new(4, 4);
        let mut batch = OnlineWormhole::new(cfg);
        let mut stream = OnlineWormhole::streaming(cfg);
        for i in 0..200u64 {
            let m = msg(i, (i % 16) as u16, ((i * 7 + 1) % 16) as u16, 8 + (i % 100) as u32, i * 3);
            if m.src != m.dst {
                batch.send(m);
                stream.send(m);
            }
        }
        let log = batch.into_log();
        let s = stream.into_sink();
        assert_eq!(log.records().len() as u64, s.messages());
        assert_eq!(log.utilization(), s.utilization());
        let a = log.summary();
        let b = s.summary();
        assert_eq!(a.span, b.span);
        assert!((a.mean_latency - b.mean_latency).abs() < 1e-9);
        assert!((a.mean_blocked - b.mean_blocked).abs() < 1e-9);
        assert_eq!(s.spatial_counts(), log.spatial_counts(16));
    }

    #[test]
    fn torus_wrap_shortens_the_route() {
        // Corner to corner on a 4×4: 6 mesh hops, but 2 torus hops via
        // the wraparound links — the closed-form model must price the
        // shorter route.
        let mesh = MeshConfig::new(4, 4);
        let torus = MeshConfig::new_torus(4, 4);
        let d_mesh = OnlineWormhole::new(mesh).send(msg(0, 0, 15, 32, 0));
        let d_torus = OnlineWormhole::new(torus).send(msg(0, 0, 15, 32, 0));
        assert_eq!(torus.shape.hop_distance(NodeId(0), NodeId(15)), 2);
        assert_eq!(d_torus.ticks(), torus.zero_load_latency(32, 2));
        assert!(d_torus < d_mesh);
    }

    #[test]
    fn adaptive_routing_is_latency_neutral_at_zero_load() {
        // The recurrence model has no contention here, and minimal-
        // adaptive routes have the same length as dimension-ordered ones.
        let xy = MeshConfig::new(4, 4);
        let ad = xy.with_routing(crate::Routing::Adaptive);
        for (s, d) in [(0u16, 15u16), (3, 12), (5, 10)] {
            let a = OnlineWormhole::new(xy).send(msg(0, s, d, 48, 0));
            let b = OnlineWormhole::new(ad).send(msg(0, s, d, 48, 0));
            assert_eq!(a, b, "{s}->{d}");
        }
    }

    #[test]
    fn wormhole_holds_partial_path() {
        // A blocked worm must delay traffic on its *upstream* channels.
        let cfg = MeshConfig::new(4, 1).with_buffer_flits(2);
        let mut net = OnlineWormhole::new(cfg);
        // Long message 0->3 occupies channels 0->1->2->3.
        net.send(msg(0, 0, 3, 512, 0));
        // Message 1->2 needs channel 1->2, held by the worm's body.
        let d = net.send(msg(1, 1, 2, 8, 1));
        let zero = cfg.zero_load_latency(8, 1);
        assert!(d.ticks() - 1 > zero, "blocked by the worm: {} vs {}", d.ticks() - 1, zero);
    }
}
