//! # commchar-mesh
//!
//! A 2-D mesh, wormhole-routed interconnection network simulator — the
//! network substrate of the HPCA'97 communication-characterization
//! methodology. The paper's simulator was process-oriented (CSIM); this
//! crate provides two interchangeable models sharing one log schema:
//!
//! - [`OnlineWormhole`] — an event/recurrence wormhole model at channel
//!   granularity. Messages must be injected in nondecreasing time order and
//!   each [`OnlineWormhole::send`] immediately returns the delivery time,
//!   which is exactly what the execution-driven (closed-loop) simulator
//!   needs: the network's feedback steers application time.
//! - [`FlitLevel`] — a cycle-accurate router model (finite input buffers,
//!   round-robin switch allocation, wormhole flow control) used for
//!   cross-validation and ablation of the faster model. Its engine is
//!   event-driven (per-output request queues, hop cursors, a binary-heap
//!   event wheel) but cycle-identical to the retained cycle-loop oracle
//!   [`FlitCycleReference`], which pins its semantics via a randomized
//!   equivalence suite.
//!
//! Both models close the paper's Figure 1 feedback loop through the
//! [`NetEngine`] trait: [`OnlineWormhole`] natively, and [`FlitLevel`]
//! through [`IncrementalFlit`], an incremental-injection mode that
//! advances the event wheel just far enough to report each delivery while
//! keeping the final log cycle-identical to a batch run. Drivers select
//! between them at runtime via [`EngineKind`].
//!
//! All models produce a [`NetLog`]: one record per message with injection
//! time, delivery time, hop count and blocked (contention) time — the raw
//! material the statistical analysis operates on.
//!
//! For long-horizon runs where retaining per-message records is too
//! expensive, [`OnlineWormhole`] and [`FlitLevel`] are generic over a
//! [`LogSink`]: a [`StreamingLog`] folds each delivery into online
//! moments, auto-widening histograms and per-pair traffic matrices in
//! O(bins + P²) memory, independent of message count.
//!
//! # Example
//!
//! ```
//! use commchar_mesh::{MeshConfig, NetMessage, NodeId, OnlineWormhole};
//! use commchar_des::SimTime;
//!
//! let cfg = MeshConfig::new(4, 2); // 4x2 mesh, 8 nodes
//! let mut net = OnlineWormhole::new(cfg);
//! let delivered = net.send(NetMessage {
//!     id: 0,
//!     src: NodeId(0),
//!     dst: NodeId(7),
//!     bytes: 40,
//!     inject: SimTime::ZERO,
//! });
//! assert!(delivered > SimTime::ZERO);
//! let log = net.into_log();
//! assert_eq!(log.records().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod flit;
mod flit_ref;
mod log;
mod sink;
mod topology;
mod wormhole;

pub use config::MeshConfig;
pub use engine::{EngineError, EngineKind, IncrementalFlit, NetEngine};
pub use flit::FlitLevel;
pub use flit_ref::FlitCycleReference;
pub use log::{MsgRecord, NetLog, NetSummary};
pub use sink::{LogSink, StreamingLog};
pub use topology::{
    ChannelId, Coord, MeshShape, NodeId, Routing, Topology, HOP_PORT_BITS, HOP_PORT_LOCAL,
    HOP_PORT_MASK,
};
pub use wormhole::OnlineWormhole;

use commchar_des::SimTime;

/// A message presented to the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetMessage {
    /// Caller-chosen identifier, preserved in the log.
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node. Must differ from `src`.
    pub dst: NodeId,
    /// Payload length in bytes (headers are added by the model).
    pub bytes: u32,
    /// Time the message is handed to the source network interface.
    pub inject: SimTime,
}

/// A batch network model: simulate a whole message list and produce a log.
///
/// Implemented by both network models so experiments can swap them.
pub trait MeshModel {
    /// Simulates `msgs` (any order; they are sorted by injection time) and
    /// returns the completed network log.
    fn simulate(&mut self, msgs: &[NetMessage]) -> NetLog;
}
