//! The network activity log — the methodology's raw observable.

use commchar_des::{RunningStats, SimTime};

use crate::{MeshShape, NodeId};

/// One completed message, as recorded by a network model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    /// Caller-supplied message id.
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes.
    pub bytes: u32,
    /// Injection time (ticks).
    pub inject: u64,
    /// Delivery time of the tail flit at the destination NI (ticks).
    pub delivered: u64,
    /// Inter-router hops traversed.
    pub hops: u32,
    /// Contention-free latency for this size and distance (ticks).
    pub zero_load: u64,
}

impl MsgRecord {
    /// Total network latency (injection to tail delivery).
    pub fn latency(&self) -> u64 {
        self.delivered - self.inject
    }

    /// Time lost to contention (latency above the contention-free bound).
    pub fn blocked(&self) -> u64 {
        self.latency().saturating_sub(self.zero_load)
    }
}

/// Aggregate statistics over a [`NetLog`].
#[derive(Clone, Debug)]
pub struct NetSummary {
    /// Number of messages.
    pub messages: u64,
    /// Mean network latency (ticks).
    pub mean_latency: f64,
    /// Median network latency (ticks).
    pub median_latency: f64,
    /// 95th-percentile network latency (ticks).
    pub p95_latency: f64,
    /// Mean contention (blocked) time per message (ticks).
    pub mean_blocked: f64,
    /// Mean payload length (bytes).
    pub mean_bytes: f64,
    /// Mean hop count.
    pub mean_hops: f64,
    /// Total simulated span: last delivery − first injection (ticks).
    pub span: u64,
    /// Aggregate injected throughput over the span (bytes/tick).
    pub throughput: f64,
}

/// The log of all network activity from one simulation.
///
/// Records are kept in delivery order as produced by the model; accessors
/// provide the per-source and per-pair views the characterization needs.
///
/// # Example
///
/// ```
/// use commchar_mesh::{MeshConfig, MeshModel, NetMessage, NodeId, OnlineWormhole};
/// use commchar_des::SimTime;
///
/// let msgs = vec![
///     NetMessage { id: 0, src: NodeId(0), dst: NodeId(1), bytes: 8, inject: SimTime::ZERO },
///     NetMessage { id: 1, src: NodeId(0), dst: NodeId(3), bytes: 8, inject: SimTime::from_ticks(5) },
/// ];
/// let log = OnlineWormhole::new(MeshConfig::new(2, 2)).simulate(&msgs);
/// assert_eq!(log.summary().messages, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NetLog {
    records: Vec<MsgRecord>,
    utilization: Vec<(u32, f64)>,
}

impl NetLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        NetLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: MsgRecord) {
        debug_assert!(rec.delivered >= rec.inject);
        self.records.push(rec);
    }

    /// Attaches per-channel utilization figures `(channel id, fraction)`.
    pub fn set_utilization(&mut self, util: Vec<(u32, f64)>) {
        self.utilization = util;
    }

    /// Per-channel utilization, if the model recorded it.
    pub fn utilization(&self) -> &[(u32, f64)] {
        &self.utilization
    }

    /// All records.
    pub fn records(&self) -> &[MsgRecord] {
        &self.records
    }

    /// Consumes the log, returning the records.
    pub fn into_records(self) -> Vec<MsgRecord> {
        self.records
    }

    /// Messages sourced at `src`, in record order.
    pub fn from_source(&self, src: NodeId) -> impl Iterator<Item = &MsgRecord> + '_ {
        self.records.iter().filter(move |r| r.src == src)
    }

    /// Per-source injection-time sequences, sorted by time — the input to
    /// inter-arrival analysis.
    pub fn injection_times_by_source(&self, nodes: usize) -> Vec<Vec<u64>> {
        let mut by_src = vec![Vec::new(); nodes];
        for r in &self.records {
            by_src[r.src.index()].push(r.inject);
        }
        for v in &mut by_src {
            v.sort_unstable();
        }
        by_src
    }

    /// All injection times, sorted — aggregate inter-arrival analysis.
    pub fn injection_times(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.records.iter().map(|r| r.inject).collect();
        v.sort_unstable();
        v
    }

    /// `counts[src][dst]` message counts — the spatial distribution.
    pub fn spatial_counts(&self, nodes: usize) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; nodes]; nodes];
        for r in &self.records {
            m[r.src.index()][r.dst.index()] += 1;
        }
        m
    }

    /// `bytes[src][dst]` payload byte totals — the volume distribution.
    pub fn volume_bytes(&self, nodes: usize) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; nodes]; nodes];
        for r in &self.records {
            m[r.src.index()][r.dst.index()] += r.bytes as u64;
        }
        m
    }

    /// Message length observations in bytes.
    pub fn lengths(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.bytes).collect()
    }

    /// Latency histogram as `(upper bound, count)` rows over `bins`
    /// equal-width bins — the latency-distribution figures of network
    /// evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn latency_histogram(&self, bins: usize) -> Vec<(u64, u64)> {
        assert!(bins > 0, "need at least one bin");
        if self.records.is_empty() {
            return Vec::new();
        }
        let max = self.records.iter().map(|r| r.latency()).max().unwrap_or(0).max(1);
        let width = max.div_ceil(bins as u64).max(1);
        let mut counts = vec![0u64; bins];
        for r in &self.records {
            let idx = ((r.latency() / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        counts.into_iter().enumerate().map(|(i, c)| ((i as u64 + 1) * width, c)).collect()
    }

    /// Aggregate summary statistics.
    pub fn summary(&self) -> NetSummary {
        let mut lat = RunningStats::new();
        let mut blk = RunningStats::new();
        let mut len = RunningStats::new();
        let mut hops = RunningStats::new();
        let mut first = u64::MAX;
        let mut last = 0u64;
        let mut total_bytes = 0u64;
        for r in &self.records {
            lat.record(r.latency() as f64);
            blk.record(r.blocked() as f64);
            len.record(r.bytes as f64);
            hops.record(r.hops as f64);
            first = first.min(r.inject);
            last = last.max(r.delivered);
            total_bytes += r.bytes as u64;
        }
        let span = if self.records.is_empty() { 0 } else { last - first };
        let mut latencies: Vec<u64> = self.records.iter().map(|r| r.latency()).collect();
        latencies.sort_unstable();
        let pick = |q: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
                latencies[idx - 1] as f64
            }
        };
        NetSummary {
            messages: self.records.len() as u64,
            mean_latency: lat.mean(),
            median_latency: pick(0.5),
            p95_latency: pick(0.95),
            mean_blocked: blk.mean(),
            mean_bytes: len.mean(),
            mean_hops: hops.mean(),
            span,
            throughput: if span == 0 { 0.0 } else { total_bytes as f64 / span as f64 },
        }
    }

    /// Validates internal consistency against a mesh shape (used by tests
    /// and by the replayer): all node ids in range, delivery ≥ injection,
    /// latency ≥ zero-load bound.
    pub fn check_invariants(&self, shape: MeshShape) -> Result<(), String> {
        for r in &self.records {
            if r.src.index() >= shape.nodes() || r.dst.index() >= shape.nodes() {
                return Err(format!("record {} has out-of-range node", r.id));
            }
            if r.delivered < r.inject {
                return Err(format!("record {} delivered before injection", r.id));
            }
            if r.latency() < r.zero_load {
                return Err(format!(
                    "record {} beats the zero-load bound: {} < {}",
                    r.id,
                    r.latency(),
                    r.zero_load
                ));
            }
        }
        Ok(())
    }
}

impl FromIterator<MsgRecord> for NetLog {
    fn from_iter<I: IntoIterator<Item = MsgRecord>>(iter: I) -> Self {
        NetLog { records: iter.into_iter().collect(), utilization: Vec::new() }
    }
}

impl Extend<MsgRecord> for NetLog {
    fn extend<I: IntoIterator<Item = MsgRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

/// Helper to convert a `SimTime` when building records.
pub(crate) fn ticks(t: SimTime) -> u64 {
    t.ticks()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, src: u16, dst: u16, bytes: u32, inject: u64, delivered: u64) -> MsgRecord {
        MsgRecord {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject,
            delivered,
            hops: 1,
            zero_load: 5,
        }
    }

    #[test]
    fn latency_and_blocked() {
        let r = rec(0, 0, 1, 16, 10, 25);
        assert_eq!(r.latency(), 15);
        assert_eq!(r.blocked(), 10);
        let fast = rec(1, 0, 1, 16, 10, 15);
        assert_eq!(fast.blocked(), 0);
    }

    #[test]
    fn summary_aggregates() {
        let log: NetLog =
            vec![rec(0, 0, 1, 10, 0, 10), rec(1, 1, 0, 30, 5, 25)].into_iter().collect();
        let s = log.summary();
        assert_eq!(s.messages, 2);
        assert_eq!(s.mean_latency, 15.0);
        assert_eq!(s.mean_bytes, 20.0);
        assert_eq!(s.span, 25);
        assert!((s.throughput - 40.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn spatial_and_volume_views() {
        let log: NetLog =
            vec![rec(0, 0, 1, 10, 0, 10), rec(1, 0, 1, 30, 5, 25), rec(2, 1, 0, 8, 6, 30)]
                .into_iter()
                .collect();
        let counts = log.spatial_counts(2);
        assert_eq!(counts[0][1], 2);
        assert_eq!(counts[1][0], 1);
        let vol = log.volume_bytes(2);
        assert_eq!(vol[0][1], 40);
        let by_src = log.injection_times_by_source(2);
        assert_eq!(by_src[0], vec![0, 5]);
        assert_eq!(by_src[1], vec![6]);
    }

    #[test]
    fn invariants_catch_bad_records() {
        let shape = MeshShape::new(2, 1);
        let ok: NetLog = vec![rec(0, 0, 1, 4, 0, 10)].into_iter().collect();
        assert!(ok.check_invariants(shape).is_ok());
        let bad: NetLog = vec![rec(1, 0, 1, 4, 0, 3)].into_iter().collect();
        assert!(bad.check_invariants(shape).is_err()); // beats zero-load 5
        let out: NetLog = vec![rec(2, 0, 9, 4, 0, 10)].into_iter().collect();
        assert!(out.check_invariants(shape).is_err());
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = NetLog::new().summary();
        assert_eq!(s.messages, 0);
        assert_eq!(s.span, 0);
        assert_eq!(s.throughput, 0.0);
        assert_eq!(s.median_latency, 0.0);
        assert_eq!(s.p95_latency, 0.0);
    }

    #[test]
    fn latency_histogram_covers_everything() {
        let log: NetLog = (1..=100u64).map(|i| rec(i, 0, 1, 8, 0, i)).collect();
        let hist = log.latency_histogram(10);
        assert_eq!(hist.len(), 10);
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 100);
        assert!(hist.windows(2).all(|w| w[1].0 > w[0].0));
        assert!(NetLog::new().latency_histogram(4).is_empty());
    }

    #[test]
    fn latency_percentiles() {
        // Latencies 1..=100.
        let log: NetLog = (1..=100u64).map(|i| rec(i, 0, 1, 8, 0, i)).collect();
        let s = log.summary();
        assert_eq!(s.median_latency, 50.0);
        assert_eq!(s.p95_latency, 95.0);
        assert_eq!(s.mean_latency, 50.5);
    }
}
