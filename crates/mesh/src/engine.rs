//! Pluggable closed-loop network engines — the feedback arrow of the
//! paper's Figure 1 as a trait.
//!
//! The methodology's execution-driven acquisition loop needs exactly one
//! thing from the network: *inject a message now, learn its delivery time
//! immediately*, so the network's latency can steer application time. The
//! paper hard-wired that loop to its single CSIM simulator; this crate
//! originally hard-wired it to [`OnlineWormhole`]. [`NetEngine`] names the
//! contract instead, so every driver (the shared-memory co-simulation, the
//! causal trace replayer, the suite runner, the CLI) is generic over which
//! network answers:
//!
//! - [`OnlineWormhole`] — the channel-granularity recurrence model. Its
//!   [`send`](OnlineWormhole::send) already *is* the closed loop; the trait
//!   impl is zero-cost delegation.
//! - [`IncrementalFlit`] — the cycle-accurate [`FlitLevel`] router accepting
//!   out-of-band sends. The flit router is not causal (a later injection can
//!   retroactively change an earlier delivery through round-robin
//!   allocation and buffer contention), so it keeps a *committed* state that
//!   only ever processes finalized cycles — cycles no future injection can
//!   perturb — plus a cloned *speculative* state run ahead to deliver the
//!   newest message. The returned delivery time is the engine's best
//!   feedback given all traffic so far; the **final log is cycle-identical
//!   to a batch [`FlitLevel`] run** over the same injection schedule, which
//!   is the property the equivalence suite pins.
//!
//! [`EngineKind`] is the runtime selector the CLI's `--engine` flag parses
//! into; drivers match on it to construct the engine they are generic over.

use commchar_des::SimTime;

use crate::flit::ClosedLoop;
use crate::sink::{LogSink, StreamingLog};
use crate::{MeshConfig, NetLog, NetMessage, OnlineWormhole, Routing, Topology};

/// An error surfaced by a closed-loop engine instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A message was injected earlier than a previously injected one.
    /// Closed-loop engines resolve contention in injection order, so a
    /// time-ordered feed is part of the contract; a violation means the
    /// trace (or the driver's event loop) is malformed.
    OutOfOrder {
        /// Id of the offending message.
        id: u64,
        /// Its injection time.
        inject: SimTime,
        /// The latest injection time seen before it.
        last: SimTime,
    },
    /// The router wedged: no event can ever fire again yet undelivered
    /// worms remain (a routing/allocation deadlock, or a guard-limit
    /// blowout on a pathological schedule). The report lists every
    /// undelivered worm with its progress so the workload is debuggable;
    /// in a sharded run the shards agree to stop and surface this error
    /// instead of aborting a worker thread.
    Wedged {
        /// Human-readable wedge report (undelivered worms and progress).
        report: String,
    },
    /// The flit-accurate router was configured with fewer virtual channels
    /// than its (topology × routing) pair needs for deadlock freedom: the
    /// torus dateline (escape) discipline and the adaptive XY/YX split
    /// each require their own virtual-channel class (see
    /// [`Routing::vc_classes`]). Raise `virtual_channels` — or build the
    /// configuration with [`MeshConfig::for_nodes_net`], which sizes the
    /// budget automatically.
    UnsupportedTopology {
        /// The configured topology.
        topology: Topology,
        /// The configured routing policy.
        routing: Routing,
        /// Virtual-channel classes the pair needs.
        needed: usize,
        /// Virtual channels actually configured.
        have: usize,
    },
}

impl EngineError {
    /// Validates that `cfg` carries enough virtual channels for the
    /// flit-accurate router's deadlock-freedom discipline.
    pub(crate) fn check_flit(cfg: &MeshConfig) -> Result<(), EngineError> {
        let needed = cfg.vc_classes();
        if cfg.virtual_channels < needed {
            return Err(EngineError::UnsupportedTopology {
                topology: cfg.shape.topology(),
                routing: cfg.routing,
                needed,
                have: cfg.virtual_channels,
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::OutOfOrder { id, inject, last } => write!(
                f,
                "messages must be injected in nondecreasing time order \
                 (message {id} at {inject:?} after {last:?})"
            ),
            EngineError::Wedged { report } => write!(f, "{report}"),
            EngineError::UnsupportedTopology { topology, routing, needed, have } => write!(
                f,
                "a {topology} with {routing} routing needs {needed} \
                 virtual-channel class(es) for deadlock freedom, but only \
                 {have} virtual channel(s) are configured — raise the \
                 virtual-channel count (MeshConfig::for_nodes_net sizes it \
                 automatically)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Which network engine closes the loop — the runtime selector behind the
/// CLI's `--engine recurrence|flit` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The channel-granularity recurrence model ([`OnlineWormhole`]) —
    /// fast, causal, the default and the historical behavior.
    #[default]
    Recurrence,
    /// The cycle-accurate flit router in incremental mode
    /// ([`IncrementalFlit`]) — slower, but the final log is
    /// cycle-identical to a batch [`FlitLevel`](crate::FlitLevel) run.
    FlitLevel {
        /// Worker threads for the sharded drain (`--sim-jobs`): `1` is
        /// the exact serial engine, `0` means one per hardware thread,
        /// `N > 1` runs the conservative-window sharded engine. The
        /// output is byte-identical for every value.
        sim_jobs: usize,
    },
}

impl EngineKind {
    /// The single-threaded flit engine — what `--engine flit` parses to.
    pub fn flit() -> EngineKind {
        EngineKind::FlitLevel { sim_jobs: 1 }
    }

    /// Whether this is the flit engine (at any `sim_jobs`).
    pub fn is_flit(self) -> bool {
        matches!(self, EngineKind::FlitLevel { .. })
    }

    /// The `--sim-jobs` value carried by the flit engine (`1` for the
    /// recurrence engine, which has no simulation threads to tune).
    pub fn sim_jobs(self) -> usize {
        match self {
            EngineKind::Recurrence => 1,
            EngineKind::FlitLevel { sim_jobs } => sim_jobs,
        }
    }

    /// Returns this kind with `--sim-jobs` applied (a no-op for the
    /// recurrence engine, which is already a closed form).
    pub fn with_sim_jobs(self, sim_jobs: usize) -> EngineKind {
        match self {
            EngineKind::Recurrence => EngineKind::Recurrence,
            EngineKind::FlitLevel { .. } => EngineKind::FlitLevel { sim_jobs },
        }
    }

    /// The flag spelling of this kind (`"recurrence"` / `"flit"`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Recurrence => "recurrence",
            EngineKind::FlitLevel { .. } => "flit",
        }
    }

    /// Parses a `--engine` flag value.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "recurrence" => Some(EngineKind::Recurrence),
            "flit" => Some(EngineKind::flit()),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A closed-loop network engine: inject one message at a time, in
/// nondecreasing injection order, and learn each delivery time
/// immediately — the feedback arrow from the network simulator to the
/// event generator in the paper's Figure 1.
///
/// Implementations log every delivered message into a [`LogSink`] and
/// hand it over (with per-channel utilization) at [`finish`](NetEngine::finish).
pub trait NetEngine {
    /// The sink accumulating this engine's records.
    type Sink: LogSink;

    /// The network configuration.
    fn config(&self) -> &MeshConfig;

    /// Injects a message and returns the delivery time of its tail flit
    /// at the destination network interface, or
    /// [`EngineError::OutOfOrder`] if `msg.inject` precedes a previously
    /// injected message.
    fn send(&mut self, msg: NetMessage) -> Result<SimTime, EngineError>;

    /// The sink accumulating this engine's records so far.
    fn sink(&self) -> &Self::Sink;

    /// Finishes the simulation and returns the sink, with per-channel
    /// utilization over the observed span folded in.
    fn finish(self) -> Self::Sink;

    /// A lower bound on the delivery latency of any message between two
    /// distinct nodes: `send` never returns a delivery time earlier than
    /// `msg.inject + min_latency()`. Conservative-window parallel drivers
    /// use this as their lookahead — events less than `min_latency()` ahead
    /// of a shard's clock cannot be affected by messages other shards have
    /// not injected yet.
    ///
    /// The default is the zero-load latency of a minimal single-hop
    /// message, which neither the wormhole recurrence (its per-hop
    /// recurrence only ever *adds* waiting to the zero-load schedule) nor
    /// the cycle-accurate flit router (pinned to the same zero-load model
    /// at zero load, and contention only delays) can undercut.
    fn min_latency(&self) -> u64 {
        self.config().zero_load_latency(1, 1)
    }
}

impl<S: LogSink> NetEngine for OnlineWormhole<S> {
    type Sink = S;

    fn config(&self) -> &MeshConfig {
        OnlineWormhole::config(self)
    }

    fn send(&mut self, msg: NetMessage) -> Result<SimTime, EngineError> {
        self.try_send(msg)
    }

    fn sink(&self) -> &S {
        OnlineWormhole::sink(self)
    }

    fn finish(self) -> S {
        self.into_sink()
    }
}

/// The cycle-accurate [`FlitLevel`](crate::FlitLevel) router as a
/// closed-loop engine: accepts one message at a time and reports each
/// delivery without requiring the full batch up front.
///
/// Delivery times returned by [`send`](IncrementalFlit::send) are the
/// router's exact answer *given all traffic injected so far* — the flit
/// router is not causal, so a later injection may retroactively change an
/// earlier message's true delivery (the recurrence model has no such
/// revisions). What is pinned, by the same style of randomized equivalence
/// suite that pins the router against its oracle, is the **final log**:
/// records and channel utilization out of [`finish`](NetEngine::finish)
/// are identical to a batch [`FlitLevel::run`](crate::FlitLevel::run) over
/// the same messages.
#[derive(Debug)]
pub struct IncrementalFlit<S: LogSink = NetLog> {
    cfg: MeshConfig,
    core: ClosedLoop,
    sink: S,
    last_inject: SimTime,
    sim_jobs: usize,
}

impl IncrementalFlit {
    /// Creates an idle closed-loop router logging into a [`NetLog`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration lacks the virtual channels its
    /// (topology × routing) pair needs for deadlock freedom — use
    /// [`IncrementalFlit::try_new`] for the typed
    /// [`EngineError::UnsupportedTopology`].
    pub fn new(cfg: MeshConfig) -> Self {
        IncrementalFlit::with_sink(cfg, NetLog::new())
    }

    /// [`new`](IncrementalFlit::new), surfacing an undersized
    /// virtual-channel budget as [`EngineError::UnsupportedTopology`]
    /// instead of a panic.
    pub fn try_new(cfg: MeshConfig) -> Result<Self, EngineError> {
        IncrementalFlit::try_with_sink(cfg, NetLog::new())
    }
}

impl IncrementalFlit<StreamingLog> {
    /// Creates an idle closed-loop router accumulating into a
    /// [`StreamingLog`] sized for this mesh.
    ///
    /// # Panics
    ///
    /// Panics on an undersized virtual-channel budget (see
    /// [`IncrementalFlit::new`]).
    pub fn streaming(cfg: MeshConfig) -> Self {
        let nodes = cfg.shape.nodes();
        IncrementalFlit::with_sink(cfg, StreamingLog::new(nodes))
    }
}

impl<S: LogSink> IncrementalFlit<S> {
    /// Creates an idle closed-loop router delivering records into `sink`.
    ///
    /// # Panics
    ///
    /// Panics on an undersized virtual-channel budget (see
    /// [`IncrementalFlit::new`]).
    pub fn with_sink(cfg: MeshConfig, sink: S) -> Self {
        match IncrementalFlit::try_with_sink(cfg, sink) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`with_sink`](IncrementalFlit::with_sink), surfacing an undersized
    /// virtual-channel budget as [`EngineError::UnsupportedTopology`]
    /// instead of a panic.
    pub fn try_with_sink(cfg: MeshConfig, sink: S) -> Result<Self, EngineError> {
        Ok(IncrementalFlit {
            cfg,
            core: ClosedLoop::try_new(cfg)?,
            sink,
            last_inject: SimTime::ZERO,
            sim_jobs: 1,
        })
    }

    /// Sets the `--sim-jobs` worker count used for the final drain.
    ///
    /// Per-send feedback is inherently sequential (each answer depends on
    /// all traffic so far), so sends are unaffected; what parallelizes is
    /// the closing [`into_sink`](IncrementalFlit::into_sink) drain of
    /// every still-in-flight worm, which dominates wall-clock on large
    /// meshes. The final log stays byte-identical for every value.
    pub fn with_sim_jobs(mut self, sim_jobs: usize) -> Self {
        self.sim_jobs = sim_jobs;
        self
    }

    /// The network configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// The sink accumulating this engine's records. Records are emitted at
    /// [`into_sink`](IncrementalFlit::into_sink) — once delivery times are
    /// final — so mid-run the sink is still empty.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Injects a message and returns the delivery cycle of its tail flit,
    /// or [`EngineError::OutOfOrder`] on a time-ordering violation.
    pub fn try_send(&mut self, msg: NetMessage) -> Result<SimTime, EngineError> {
        if msg.inject < self.last_inject {
            return Err(EngineError::OutOfOrder {
                id: msg.id,
                inject: msg.inject,
                last: self.last_inject,
            });
        }
        self.last_inject = msg.inject;
        self.core.send(msg).map(SimTime::from_ticks)
    }

    /// Finishes the simulation: drains every in-flight worm, emits one
    /// record per message in injection order, and returns the sink with
    /// per-channel utilization folded in — byte-identical to what a batch
    /// [`FlitLevel`](crate::FlitLevel) produces for the same schedule.
    pub fn into_sink(mut self) -> S {
        self.core.finish_into_jobs(&mut self.sink, self.sim_jobs);
        self.sink
    }
}

impl<S: LogSink> NetEngine for IncrementalFlit<S> {
    type Sink = S;

    fn config(&self) -> &MeshConfig {
        IncrementalFlit::config(self)
    }

    fn send(&mut self, msg: NetMessage) -> Result<SimTime, EngineError> {
        self.try_send(msg)
    }

    fn sink(&self) -> &S {
        IncrementalFlit::sink(self)
    }

    fn finish(self) -> S {
        self.into_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn msg(id: u64, src: u16, dst: u16, bytes: u32, inject: u64) -> NetMessage {
        NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject: SimTime::from_ticks(inject),
        }
    }

    #[test]
    fn engine_kind_round_trips_through_names() {
        for kind in [EngineKind::Recurrence, EngineKind::flit()] {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::parse("csim"), None);
        assert_eq!(EngineKind::default(), EngineKind::Recurrence);
        assert!(EngineKind::flit().is_flit());
        assert!(!EngineKind::Recurrence.is_flit());
        assert_eq!(EngineKind::flit().with_sim_jobs(4).sim_jobs(), 4);
        assert_eq!(EngineKind::Recurrence.with_sim_jobs(4).sim_jobs(), 1);
    }

    #[test]
    fn out_of_order_is_an_error_not_a_panic() {
        let cfg = MeshConfig::new(2, 2);
        let mut flit = IncrementalFlit::new(cfg);
        flit.try_send(msg(0, 0, 1, 8, 100)).unwrap();
        let err = flit.try_send(msg(1, 1, 0, 8, 50)).unwrap_err();
        assert!(err.to_string().contains("nondecreasing"), "{err}");

        let mut rec = OnlineWormhole::new(cfg);
        rec.try_send(msg(0, 0, 1, 8, 100)).unwrap();
        let err = rec.try_send(msg(1, 1, 0, 8, 50)).unwrap_err();
        assert_eq!(
            err,
            EngineError::OutOfOrder {
                id: 1,
                inject: SimTime::from_ticks(50),
                last: SimTime::from_ticks(100),
            }
        );
    }

    #[test]
    fn trait_path_matches_inherent_wormhole_send() {
        let cfg = MeshConfig::new(4, 2);
        let mut direct = OnlineWormhole::new(cfg);
        let mut via_trait = OnlineWormhole::new(cfg);
        for i in 0..50u64 {
            let m = msg(i, (i % 8) as u16, ((i * 5 + 1) % 8) as u16, 16 + (i % 64) as u32, i * 4);
            if m.src != m.dst {
                let a = direct.send(m);
                let b = NetEngine::send(&mut via_trait, m).unwrap();
                assert_eq!(a, b);
            }
        }
        let a = direct.into_log();
        let b = NetEngine::finish(via_trait);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.utilization(), b.utilization());
    }

    #[test]
    fn incremental_flit_send_reports_plausible_latency() {
        let cfg = MeshConfig::new(4, 4);
        let mut flit = IncrementalFlit::new(cfg);
        let d = flit.try_send(msg(0, 0, 15, 32, 0)).unwrap();
        let hops = cfg.shape.hop_distance(NodeId(0), NodeId(15));
        assert_eq!(d.ticks(), cfg.zero_load_latency(32, hops));
        let log = flit.into_sink();
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].delivered, d.ticks());
    }
}
