//! Sharded wavefront drain: the flit event loop partitioned into
//! row-contiguous node bands that run on a long-lived worker team while
//! staying **cycle-identical** to the serial engine.
//!
//! # Why row bands, and why a wavefront
//!
//! Node ids are row-major and the serial allocation sweep visits outputs
//! in ascending global index, so every *same-cycle* cross-node dependency
//! flows from lower-indexed outputs to higher-indexed ones: a pop at
//! output `o` is visible within cycle `t` only to feeder outputs `> o`;
//! a feeder at or behind the sweep position is instead woken at `t + 1`
//! by an explicit ring mark. Partitioning the mesh into contiguous row
//! bands makes every cross-shard link a north/south link between
//! *adjacent* shards and aligns the dependency direction with the shard
//! order: within one cycle, information only ever flows from shard `s`
//! to shard `s + 1`.
//!
//! That yields the conservative time window. Each shard publishes a
//! monotone fence (`fence[s] = f` ⇒ shard `s` has fully processed every
//! cycle `< f` *and flushed its boundary events*); shard `s` may execute
//! cycle `t` once the left neighbor has finished `t` and the right
//! neighbor has finished `t - 1`:
//!
//! ```text
//! t <= horizon(s) = min(fence[s-1] - 1, fence[s+1])
//! ```
//!
//! The shard holding the globally minimal next event time always
//! satisfies its window, so the wavefront is deadlock-free; a shard with
//! nothing to do inside its window publishes the horizon as vacuously
//! done, which lets neighbors leapfrog past idle regions cycle-skipping
//! exactly like the serial event loop does.
//!
//! # Torus bands are a ring of shards
//!
//! On a torus the north/south wraparound links add one more boundary
//! edge, between the first and the last band, so the shard chain closes
//! into a ring: every shard has a cyclic predecessor and successor, and
//! with two shards the pair is connected by *two* distinct edges. The
//! mailboxes follow the edges (one per direction per edge), while the
//! event labels keep the serial sweep's *numeric* rule — a pop credit
//! travels at label `t` toward the numerically higher feeder and `t + 1`
//! toward the lower one, regardless of which edge carries it. In-cycle
//! information therefore still flows only from numerically lower shards
//! to higher ones (the wrap edge carries label-`t` credits from shard 0
//! to shard `K-1`, never the reverse), so the window generalizes without
//! becoming circular: a numerically lower cyclic neighbor must have
//! finished `t`, a higher one `t - 1`:
//!
//! ```text
//! horizon(s) = min over cyclic neighbors j of:
//!              fence[j] - 1   if j < s   (in-cycle sender)
//!              fence[j]       if j > s   (deferred sender)
//! ```
//!
//! # Boundary mailboxes
//!
//! All cross-shard effects travel as labeled events ([`Ev`]) through
//! per-edge mailboxes, drained into a per-shard heap and applied at the
//! start of the labeled cycle, before that cycle's phases run:
//!
//! - a **landing** (flit crossing a boundary link) is labeled
//!   `t + link_delay` — the label the serial `due` FIFO uses;
//! - a **pop credit** (downstream slot freed in a buffer the receiver
//!   feeds) is labeled `t` toward the higher shard (the serial sweep
//!   would see the freed slot later in the same cycle) and `t + 1`
//!   toward the lower shard (the serial engine defers exactly this case
//!   with a next-cycle ring mark).
//!
//! Because events are flushed before the fence moves and fences are read
//! before mailboxes are drained, every event labeled inside the window is
//! present before the cycle runs; `link_delay >= 1` keeps every label
//! strictly ahead of the receiver's horizon at send time. Capacity checks
//! against a remote downstream buffer read the shard's `occ` mirror
//! (`blen + reserved`, maintained by boundary forwards and pop credits),
//! so each allocation decision sees exactly the state the serial sweep
//! would have seen at that point of the cycle.
//!
//! # Termination and wedges
//!
//! A shared undelivered-worm counter ends the run. A shard with no local
//! and no inbound events declares itself dry; when every shard is dry
//! with all mailboxes empty while worms remain, the run is wedged —
//! surfaced as [`EngineError::Wedged`] from the orchestrator with the
//! serial per-worm report built over the merged shard states, never as a
//! worker-thread abort.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use commchar_pool::{Job, Team};

use super::{Engine, Ev, Kind, Landing, ShardCtx, Workspace, NPORTS};
use crate::engine::EngineError;
use crate::{MeshConfig, Topology};

/// Effective shard count for a `--sim-jobs` knob on a mesh with `rows`
/// rows: resolved against hardware parallelism (`0` = one per hardware
/// thread) and capped at the row count, since a shard must own at least
/// one full row. `1` means the serial engine.
pub(super) fn plan(sim_jobs: usize, rows: usize) -> usize {
    commchar_pool::resolve_jobs_for(sim_jobs, rows)
}

/// An inbound boundary event: `(cycle, receive sequence, event)`. Ordered
/// by cycle; the sequence only stabilizes the heap — same-cycle
/// application order is immaterial (credits are additive, dirty marks
/// idempotent, and one feeder link admits one landing per `link_delay`).
#[derive(Clone, Copy, Debug)]
struct InEv(u64, u64, Ev);

impl PartialEq for InEv {
    fn eq(&self, other: &Self) -> bool {
        (self.0, self.1) == (other.0, other.1)
    }
}
impl Eq for InEv {}
impl PartialOrd for InEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}

/// One shard's private state: a full-size workspace clone restricted (by
/// the split fixups) to its node band, plus the engine's shard context
/// and the inbound-event heap.
struct ShardSlot {
    ws: Workspace,
    ctx: ShardCtx,
    /// Undelivered worms destined *inside* this shard's band.
    remaining: usize,
    inbox: BinaryHeap<Reverse<InEv>>,
    /// Last processed cycle (for the merged wedge report).
    clock: Option<u64>,
}

/// State shared by the workers of one sharded drain.
struct Shared {
    cfg: MeshConfig,
    shards: usize,
    /// `fence[s]`: every cycle `< fence[s]` is fully processed by shard
    /// `s` and its boundary events are flushed. `u64::MAX` once exited.
    fences: Vec<AtomicU64>,
    /// Shards with no local and no inbound events (wedge detection).
    dry: Vec<AtomicBool>,
    /// Undelivered worms across all shards.
    remaining: AtomicUsize,
    wedged: AtomicBool,
    /// The wedge was a per-shard step-guard blowout, not an event drought.
    guard_tripped: AtomicBool,
    /// `mail_succ[s]`: events from shard `s` across its south boundary to
    /// its cyclic successor `(s + 1) % shards`. The last entry is used
    /// only on a torus (the south wrap edge back to shard 0).
    mail_succ: Vec<Mutex<Vec<(u64, Ev)>>>,
    /// `mail_pred[s]`: events from shard `s` across its north boundary to
    /// its cyclic predecessor; `mail_pred[0]` is the torus wrap edge.
    mail_pred: Vec<Mutex<Vec<(u64, Ev)>>>,
    /// The band ring closes (torus): the first and last shards are
    /// neighbors via the wraparound links.
    wrap: bool,
    /// The split clock: every shard resumes strictly after this cycle.
    clock0: Option<u64>,
}

/// Drains a prepared workspace to completion on `shards` workers (batch
/// start: `clock = None`; mid-run closed-loop state: the last committed
/// cycle), leaving merged per-worm deliveries and per-output busy ticks
/// in `ws` exactly as the serial drain would. The worker `team` is
/// lazily (re)created and reused across calls when large enough.
pub(super) fn drain_sharded(
    cfg: &MeshConfig,
    ws: &mut Workspace,
    clock: Option<u64>,
    remaining: usize,
    shards: usize,
    team: &mut Option<Team>,
) -> Result<(), EngineError> {
    debug_assert!(shards >= 2);
    let rows = cfg.shape.height() as usize;
    let width = cfg.shape.width() as usize;
    let slots: Vec<Arc<Mutex<ShardSlot>>> = (0..shards)
        .map(|s| {
            let lo = s * rows / shards * width;
            let hi = (s + 1) * rows / shards * width;
            Arc::new(Mutex::new(split_shard(cfg, ws, lo, hi)))
        })
        .collect();
    let shared = Arc::new(Shared {
        cfg: *cfg,
        shards,
        fences: (0..shards).map(|_| AtomicU64::new(clock.map_or(0, |c| c + 1))).collect(),
        dry: (0..shards).map(|_| AtomicBool::new(false)).collect(),
        remaining: AtomicUsize::new(remaining),
        wedged: AtomicBool::new(false),
        guard_tripped: AtomicBool::new(false),
        mail_succ: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        mail_pred: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        wrap: cfg.shape.topology() == Topology::Torus,
        clock0: clock,
    });

    let team = match team {
        Some(t) if t.workers() >= shards => t,
        slot => slot.insert(Team::new(shards)),
    };
    let jobs: Vec<Job> = (0..shards)
        .map(|s| {
            let sh = Arc::clone(&shared);
            let slot = Arc::clone(&slots[s]);
            Box::new(move || {
                let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
                run_shard(s, &sh, &mut slot);
            }) as Job
        })
        .collect();
    team.run(jobs);

    let slots: Vec<ShardSlot> = slots
        .into_iter()
        .map(|arc| {
            Arc::try_unwrap(arc)
                .unwrap_or_else(|_| unreachable!("workers joined at the team barrier"))
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
        })
        .collect();
    let last_clock = slots.iter().filter_map(|s| s.clock).max().unwrap_or(0);
    merge_shards(ws, &slots);

    if shared.wedged.load(Ordering::Acquire) {
        let left = shared.remaining.load(Ordering::Acquire);
        let report = wedge_report_merged(cfg, ws, left, last_clock);
        let report = if shared.guard_tripped.load(Ordering::Acquire) {
            format!("flit simulation exceeded the per-shard step guard\n{report}")
        } else {
            report
        };
        return Err(EngineError::Wedged { report });
    }
    Ok(())
}

/// Clones the prepared workspace for the band `[lo, hi)` and applies the
/// split fixups: non-local events dropped, remote-fed `reserved` moved to
/// the upstream `occ` mirror, the mirror seeded with the serial occupancy
/// of remote downstream buffers, and the local delivery count taken.
fn split_shard(cfg: &MeshConfig, ws: &Workspace, lo: usize, hi: usize) -> ShardSlot {
    let vcs = cfg.virtual_channels;
    let stride = NPORTS * vcs;
    let nodes = cfg.shape.nodes();
    let width = cfg.shape.width() as usize;
    let height = cfg.shape.height() as usize;
    let local = |n: usize| n >= lo && n < hi;

    let mut sw = ws.clone();
    let mut ctx = ShardCtx {
        lo,
        hi,
        occ: vec![0; nodes * stride],
        remote_fed: vec![false; nodes * stride],
        out_lo: Vec::new(),
        out_hi: Vec::new(),
    };

    // Neighbor in the direction of port `p`, if the link exists (mesh
    // edges have none; torus edges wrap). Input port `p` is *fed by* this
    // neighbor, and the output port `p` *feeds* it — same direction index
    // both ways. Wrapped east/west peers stay inside the row band and are
    // therefore always local; the vertical wrap links are the ones that
    // cross between the first and last shards.
    let wrap = cfg.shape.topology() == Topology::Torus;
    let neighbor = |node: usize, p: usize| -> Option<usize> {
        let (x, y) = (node % width, node / width);
        match p {
            super::PORT_E if x + 1 < width => Some(node + 1),
            super::PORT_E if wrap && width > 1 => Some(node + 1 - width),
            super::PORT_W if x > 0 => Some(node - 1),
            super::PORT_W if wrap && width > 1 => Some(node + width - 1),
            super::PORT_S if y + 1 < height => Some(node + width),
            super::PORT_S if wrap && height > 1 => Some(node + width - nodes),
            super::PORT_N if y > 0 => Some(node - width),
            super::PORT_N if wrap && height > 1 => Some(node + nodes - width),
            _ => None,
        }
    };

    for node in lo..hi {
        for port in [super::PORT_E, super::PORT_W, super::PORT_S, super::PORT_N] {
            let Some(peer) = neighbor(node, port) else { continue };
            if local(peer) {
                continue;
            }
            // Boundary input buffers are fed by the remote shard: their
            // in-flight accounting lives in the feeder's `occ` mirror.
            for vc in 0..vcs {
                let b = node * stride + port * vcs + vc;
                ctx.remote_fed[b] = true;
                sw.reserved[b] = 0;
            }
            // Boundary output toward the remote shard: seed the mirror
            // with the serial occupancy of its downstream buffers (the
            // downstream input port is the reverse direction).
            let rev = match port {
                super::PORT_E => super::PORT_W,
                super::PORT_W => super::PORT_E,
                super::PORT_S => super::PORT_N,
                _ => super::PORT_S,
            };
            for vc in 0..vcs {
                let dbuf = peer * stride + rev * vcs + vc;
                ctx.occ[dbuf] = ws.blen[dbuf] + ws.reserved[dbuf];
            }
        }
    }

    // In-flight landings: keep only those arriving inside the band.
    sw.due.clear();
    sw.spare.clear();
    for (at, bucket) in &ws.due {
        let mine: Vec<Landing> =
            bucket.iter().filter(|l| local(l.node as usize)).copied().collect();
        if !mine.is_empty() {
            sw.due.push_back((*at, mine));
        }
    }
    // Scheduled wakeups and dirty bits: local outputs only.
    for slot in &mut sw.ring {
        slot.retain(|&o| local(o as usize / NPORTS));
    }
    for node in (0..nodes).filter(|&n| !local(n)) {
        for p in 0..NPORTS {
            let o = node * NPORTS + p;
            sw.dirty[o / 64] &= !(1 << (o % 64));
        }
    }
    // NI state: local sources only.
    sw.ni_events.clear();
    for &Reverse((entry, n)) in ws.ni_events.iter() {
        if local(n as usize) {
            sw.ni_events.push(Reverse((entry, n)));
        }
    }
    for node in (0..nodes).filter(|&n| !local(n)) {
        sw.pending[node].clear();
        sw.ni_sched[node] = u64::MAX;
    }
    sw.cand.clear();

    let remaining =
        ws.worms.iter().filter(|w| w.delivered.is_none() && local(w.msg.dst.index())).count();
    ShardSlot { ws: sw, ctx, remaining, inbox: BinaryHeap::new(), clock: None }
}

/// Folds the shard results back into the caller's workspace: deliveries
/// (only the destination shard sets one), wedge diagnostics (forwarding
/// shards advance `head_hop`; only the destination ejects), and each
/// shard's own outputs' busy ticks.
fn merge_shards(ws: &mut Workspace, slots: &[ShardSlot]) {
    for slot in slots {
        for (dst, src) in ws.worms.iter_mut().zip(&slot.ws.worms) {
            if dst.delivered.is_none() {
                dst.delivered = src.delivered;
            }
            dst.ejected = dst.ejected.max(src.ejected);
            dst.head_hop = dst.head_hop.max(src.head_hop);
        }
        for o in slot.ctx.lo * NPORTS..slot.ctx.hi * NPORTS {
            ws.busy_ticks[o] = slot.ws.busy_ticks[o];
        }
    }
}

/// The serial engine's wedge report over the merged shard states.
fn wedge_report_merged(cfg: &MeshConfig, ws: &mut Workspace, remaining: usize, t: u64) -> String {
    let vcs = cfg.virtual_channels;
    let engine = Engine {
        cfg: *cfg,
        vcs,
        stride: NPORTS * vcs,
        wheel: (cfg.link_delay.max(cfg.router_delay) + 2).next_power_of_two(),
        cap: cfg.buffer_flits.next_power_of_two(),
        ws,
        remaining,
        shard: None,
    };
    engine.wedge_report(t)
}

/// One shard's event loop: wavefront-synchronized cycles over the local
/// band, boundary events in and out, cooperative termination.
fn run_shard(s: usize, sh: &Shared, st: &mut ShardSlot) {
    let cfg = sh.cfg;
    let vcs = cfg.virtual_channels;
    let wheel = (cfg.link_delay.max(cfg.router_delay) + 2).next_power_of_two();
    let cap = cfg.buffer_flits.next_power_of_two();
    let guard_limit: u64 = 200_000_000;

    let mut clock = sh.clock0;
    let mut seq = 0u64;
    let mut guard = 0u64;
    let mut is_dry = false;
    let mut idle = 0u32;
    let st = &mut *st;

    loop {
        if sh.wedged.load(Ordering::Acquire) || sh.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        // The window: a numerically lower cyclic neighbor must have
        // finished `t` (its pops travel at label `t`), a higher one
        // `t - 1` (its events are labeled `t + 1` or later). On a mesh
        // the neighbors are `s - 1` and `s + 1` where they exist; on a
        // torus the chain closes into a ring and the same numeric rule
        // applies to the wrap neighbor. Fences are read *before* draining
        // the mailboxes, so every event labeled within the window is
        // already present when its cycle runs.
        let pred = (s + sh.shards - 1) % sh.shards;
        let succ = (s + 1) % sh.shards;
        let fence = |j: usize| sh.fences[j].load(Ordering::Acquire);
        let horizon = if sh.wrap {
            let bound = |j: usize| {
                let f = fence(j);
                if j < s {
                    f.saturating_sub(1)
                } else {
                    f
                }
            };
            bound(pred).min(bound(succ))
        } else {
            let fl = if s == 0 { u64::MAX } else { fence(s - 1) };
            let fr = if s + 1 == sh.shards { u64::MAX } else { fence(s + 1) };
            fl.saturating_sub(1).min(fr)
        };

        let mut got = false;
        if sh.wrap || s > 0 {
            got |= drain_mailbox(&sh.mail_succ[pred], &mut st.inbox, &mut seq);
        }
        if sh.wrap || s + 1 < sh.shards {
            got |= drain_mailbox(&sh.mail_pred[succ], &mut st.inbox, &mut seq);
        }
        if got && is_dry {
            sh.dry[s].store(false, Ordering::Release);
            is_dry = false;
        }

        let mut engine = Engine {
            cfg,
            vcs,
            stride: NPORTS * vcs,
            wheel,
            cap,
            ws: &mut st.ws,
            remaining: st.remaining,
            shard: Some(&mut st.ctx),
        };
        let next_local = match clock {
            Some(c) => engine.next_time(c),
            None => engine.first_time(),
        };
        let next_in = st.inbox.peek().map(|&Reverse(InEv(at, _, _))| at);
        let next = match (next_local, next_in) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };

        match next {
            Some(t) if t <= horizon => {
                if is_dry {
                    sh.dry[s].store(false, Ordering::Release);
                    is_dry = false;
                }
                guard += 1;
                if guard >= guard_limit {
                    sh.guard_tripped.store(true, Ordering::Release);
                    sh.wedged.store(true, Ordering::Release);
                    break;
                }
                // Apply inbound boundary events labeled for this cycle,
                // then run the serial per-cycle phases unchanged.
                while let Some(&Reverse(InEv(at, _, ev))) = st.inbox.peek() {
                    if at > t {
                        break;
                    }
                    debug_assert_eq!(at, t, "boundary event missed its cycle");
                    st.inbox.pop();
                    match ev {
                        Ev::Pop { out, buf } => {
                            let ctx = engine.shard.as_mut().expect("sharded engine");
                            ctx.occ[buf as usize] -= 1;
                            engine.ws.dirty[out as usize / 64] |= 1 << (out % 64);
                        }
                        Ev::Landing(Landing { node, buf, mut flit }) => {
                            flit.ready =
                                if flit.kind == Kind::Head { t + cfg.router_delay } else { t };
                            // The feeder's `occ` mirror holds the slot
                            // reservation — nothing to release locally.
                            engine.push_buffer(node as usize, buf as usize, flit, t);
                        }
                    }
                }
                engine.drain_ni(t);
                engine.land_arrivals(t);
                engine.promote_ring(t);
                engine.scan(t);
                let delivered = st.remaining - engine.remaining;
                st.remaining = engine.remaining;
                clock = Some(t);
                st.clock = clock;
                // Flush boundary events *before* publishing the fence, so
                // a neighbor observing `fence > t` finds every event of
                // cycles `<= t` already in its mailbox.
                if !st.ctx.out_lo.is_empty() {
                    flush_mailbox(&sh.mail_pred[s], &mut st.ctx.out_lo);
                }
                if !st.ctx.out_hi.is_empty() {
                    flush_mailbox(&sh.mail_succ[s], &mut st.ctx.out_hi);
                }
                if delivered > 0 {
                    sh.remaining.fetch_sub(delivered, Ordering::AcqRel);
                }
                sh.fences[s].store(t + 1, Ordering::Release);
                idle = 0;
            }
            _ => {
                // No executable event in the window. Publish every cycle
                // up to the horizon as (vacuously) done so neighbors can
                // advance past this shard; local state is untouched
                // (`clock` stays at the last *processed* cycle — ring
                // wakeups stay within `wheel` of it).
                if horizon != u64::MAX {
                    let fence = horizon + 1;
                    if fence > sh.fences[s].load(Ordering::Relaxed) {
                        sh.fences[s].store(fence, Ordering::Release);
                    }
                }
                if next.is_none() {
                    // Nothing queued at any future time either: dry. When
                    // everyone is dry and no event is in flight while
                    // worms remain, the run is wedged.
                    if !is_dry {
                        sh.dry[s].store(true, Ordering::Release);
                        is_dry = true;
                    }
                    if sh.dry.iter().all(|d| d.load(Ordering::Acquire))
                        && all_mailboxes_empty(sh)
                        && sh.remaining.load(Ordering::Acquire) > 0
                    {
                        sh.wedged.store(true, Ordering::Release);
                        break;
                    }
                }
                idle += 1;
                if idle < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
    // Never leave a neighbor blocked on this shard's fence.
    sh.fences[s].store(u64::MAX, Ordering::Release);
    st.clock = clock;
}

/// Moves all events from a mailbox into the receiver's heap.
fn drain_mailbox(
    mail: &Mutex<Vec<(u64, Ev)>>,
    inbox: &mut BinaryHeap<Reverse<InEv>>,
    seq: &mut u64,
) -> bool {
    let batch = {
        let mut m = mail.lock().unwrap_or_else(|e| e.into_inner());
        if m.is_empty() {
            return false;
        }
        std::mem::take(&mut *m)
    };
    for (at, ev) in batch {
        inbox.push(Reverse(InEv(at, *seq, ev)));
        *seq += 1;
    }
    true
}

/// Appends a shard's outbox to a neighbor's mailbox.
fn flush_mailbox(mail: &Mutex<Vec<(u64, Ev)>>, out: &mut Vec<(u64, Ev)>) {
    mail.lock().unwrap_or_else(|e| e.into_inner()).append(out);
}

fn all_mailboxes_empty(sh: &Shared) -> bool {
    sh.mail_succ
        .iter()
        .chain(sh.mail_pred.iter())
        .all(|m| m.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
}
