//! Network configuration.

use crate::{MeshShape, Routing, Topology};

/// Parameters of the 2-D mesh wormhole network.
///
/// Defaults follow the paper-era machine assumptions: 2-byte-wide channels
/// (one flit = 2 bytes), an 8-byte header, one cycle per flit per channel,
/// and a 2-cycle routing decision per router.
///
/// # Example
///
/// ```
/// use commchar_mesh::MeshConfig;
/// let cfg = MeshConfig::new(4, 4).with_flit_bytes(4);
/// assert_eq!(cfg.flits_for(32), 8 + 2); // payload + header flits
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh shape.
    pub shape: MeshShape,
    /// Bytes carried per flit (channel width).
    pub flit_bytes: u32,
    /// Header length in bytes (routing + control information).
    pub header_bytes: u32,
    /// Cycles for a router to process a header and switch it (per hop).
    pub router_delay: u64,
    /// Cycles for a flit to cross a channel.
    pub link_delay: u64,
    /// Input buffer depth in flits per virtual channel (used by the
    /// flit-accurate model only).
    pub buffer_flits: usize,
    /// Virtual channels per physical channel (flit-accurate model only;
    /// the recurrence model treats the physical channel as one resource).
    pub virtual_channels: usize,
    /// Route-computation policy (dimension-order or minimal-adaptive).
    pub routing: Routing,
}

impl MeshConfig {
    /// Creates a configuration for a `width × height` mesh with paper-era
    /// defaults.
    pub fn new(width: u16, height: u16) -> Self {
        MeshConfig {
            shape: MeshShape::new(width, height),
            flit_bytes: 2,
            header_bytes: 8,
            router_delay: 2,
            link_delay: 1,
            buffer_flits: 2,
            virtual_channels: 1,
            routing: Routing::Dimension,
        }
    }

    /// Convenience: near-square grid for `n` nodes with the chosen
    /// topology and routing policy, with `virtual_channels` raised (never
    /// lowered) to the [`Routing::vc_classes`] budget the combination
    /// needs for deadlock freedom — so the resulting configuration is
    /// always accepted by the flit-accurate router.
    pub fn for_nodes_net(n: usize, topology: Topology, routing: Routing) -> Self {
        let mesh = MeshShape::for_nodes(n);
        let shape = match topology {
            Topology::Mesh => mesh,
            Topology::Torus => MeshShape::new_torus(mesh.width(), mesh.height()),
        };
        let cfg = MeshConfig { shape, ..MeshConfig::new(shape.width(), shape.height()) }
            .with_routing(routing);
        let vcs = cfg.virtual_channels.max(cfg.vc_classes());
        cfg.with_virtual_channels(vcs)
    }

    /// Convenience: near-square mesh for `n` nodes.
    pub fn for_nodes(n: usize) -> Self {
        let shape = MeshShape::for_nodes(n);
        MeshConfig { shape, ..MeshConfig::new(shape.width(), shape.height()) }
    }

    /// Creates a torus configuration with paper-era defaults otherwise.
    pub fn new_torus(width: u16, height: u16) -> Self {
        MeshConfig { shape: MeshShape::new_torus(width, height), ..MeshConfig::new(width, height) }
    }

    /// Convenience: near-square torus for `n` nodes.
    pub fn torus_for_nodes(n: usize) -> Self {
        let mesh = MeshShape::for_nodes(n);
        MeshConfig {
            shape: MeshShape::new_torus(mesh.width(), mesh.height()),
            ..MeshConfig::new(mesh.width(), mesh.height())
        }
    }

    /// Sets the channel width in bytes per flit.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bytes` is zero.
    #[must_use]
    pub fn with_flit_bytes(mut self, flit_bytes: u32) -> Self {
        assert!(flit_bytes > 0, "flit width must be positive");
        self.flit_bytes = flit_bytes;
        self
    }

    /// Sets the header size in bytes.
    #[must_use]
    pub fn with_header_bytes(mut self, header_bytes: u32) -> Self {
        self.header_bytes = header_bytes;
        self
    }

    /// Sets the per-hop router delay in cycles.
    #[must_use]
    pub fn with_router_delay(mut self, cycles: u64) -> Self {
        self.router_delay = cycles;
        self
    }

    /// Sets the per-channel link delay in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero (flits must take time to move).
    #[must_use]
    pub fn with_link_delay(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "link delay must be positive");
        self.link_delay = cycles;
        self
    }

    /// Sets the input buffer depth for the flit-accurate model.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    #[must_use]
    pub fn with_buffer_flits(mut self, flits: usize) -> Self {
        assert!(flits > 0, "buffers must hold at least one flit");
        self.buffer_flits = flits;
        self
    }

    /// Sets the number of virtual channels per physical channel.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero.
    #[must_use]
    pub fn with_virtual_channels(mut self, vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        self.virtual_channels = vcs;
        self
    }

    /// Sets the route-computation policy.
    #[must_use]
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Virtual-channel classes this configuration's (topology × routing)
    /// pair needs for deadlock freedom — see [`Routing::vc_classes`]. The
    /// flit-accurate router requires `virtual_channels >= vc_classes()`.
    pub fn vc_classes(&self) -> usize {
        self.routing.vc_classes(self.shape.topology())
    }

    /// Total flits for a message with `payload` bytes: header flits plus
    /// payload flits, each rounded up to whole flits.
    pub fn flits_for(&self, payload: u32) -> u64 {
        let hdr = self.header_bytes.div_ceil(self.flit_bytes) as u64;
        let body = payload.div_ceil(self.flit_bytes) as u64;
        hdr + body
    }

    /// Per-hop header latency (routing decision + channel traversal).
    pub fn hop_latency(&self) -> u64 {
        self.router_delay + self.link_delay
    }

    /// Contention-free latency for a `payload`-byte message crossing
    /// `hops` inter-router channels: the header pays a per-hop pipeline
    /// charge for injection, each hop and ejection; the body streams behind
    /// at one flit per `link_delay`.
    pub fn zero_load_latency(&self, payload: u32, hops: u32) -> u64 {
        let header_path = (hops as u64 + 2) * self.hop_latency();
        let drain = (self.flits_for(payload) - 1) * self.link_delay;
        header_path + drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_rounding() {
        let cfg = MeshConfig::new(2, 2); // flit 2B, header 8B -> 4 hdr flits
        assert_eq!(cfg.flits_for(0), 4);
        assert_eq!(cfg.flits_for(1), 5);
        assert_eq!(cfg.flits_for(2), 5);
        assert_eq!(cfg.flits_for(3), 6);
        assert_eq!(cfg.flits_for(32), 20);
    }

    #[test]
    fn zero_load_components() {
        let cfg = MeshConfig::new(4, 4); // hop = 3 cycles
                                         // 1 hop message, 0 payload: header pipeline (1+2)*3 + (4-1)*1 drain
        assert_eq!(cfg.zero_load_latency(0, 1), 9 + 3);
        // distance grows linearly
        assert_eq!(cfg.zero_load_latency(0, 4) - cfg.zero_load_latency(0, 3), cfg.hop_latency());
    }

    #[test]
    fn builder_chain() {
        let cfg = MeshConfig::new(4, 2)
            .with_flit_bytes(4)
            .with_header_bytes(4)
            .with_router_delay(1)
            .with_link_delay(2)
            .with_buffer_flits(8);
        assert_eq!(cfg.flits_for(16), 1 + 4);
        assert_eq!(cfg.hop_latency(), 3);
        assert_eq!(cfg.buffer_flits, 8);
    }

    #[test]
    #[should_panic(expected = "flit width")]
    fn zero_flit_width_rejected() {
        let _ = MeshConfig::new(2, 2).with_flit_bytes(0);
    }

    #[test]
    fn for_nodes_net_covers_the_vc_class_budget() {
        for topology in [Topology::Mesh, Topology::Torus] {
            for routing in [Routing::Dimension, Routing::Adaptive] {
                let cfg = MeshConfig::for_nodes_net(16, topology, routing);
                assert_eq!(cfg.shape.topology(), topology);
                assert_eq!(cfg.routing, routing);
                assert!(cfg.virtual_channels >= cfg.vc_classes());
            }
        }
        // Mesh + dimension reproduces the historical default exactly.
        assert_eq!(
            MeshConfig::for_nodes_net(16, Topology::Mesh, Routing::Dimension),
            MeshConfig::for_nodes(16)
        );
    }
}
