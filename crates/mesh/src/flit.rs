//! Cycle-accurate flit-level wormhole router model with virtual channels.
//!
//! Routers have five input ports (one per neighbour plus injection), each
//! with `virtual_channels` finite FIFO buffers; five output ports (plus
//! ejection) whose virtual channels are owned by at most one worm each
//! while the physical channel accepts one flit per `link_delay` cycles;
//! round-robin switch and VC allocation; wormhole flow control. Header
//! flits pay a `router_delay` routing charge at every router; body flits
//! stream behind on the established path. With one virtual channel the
//! model reduces to a plain wormhole router and is used to cross-validate
//! the faster [`OnlineWormhole`](crate::OnlineWormhole) recurrence: both
//! produce the same zero-load latency by construction. With more virtual
//! channels it quantifies how much head-of-line blocking the recurrence
//! model's single-resource channels overstate (the Kumar–Bhuyan question
//! the paper cites).

use std::collections::VecDeque;

use crate::{MeshConfig, MeshModel, MsgRecord, NetLog, NetMessage, NodeId};

const PORT_E: usize = 0;
const PORT_W: usize = 1;
const PORT_S: usize = 2;
const PORT_N: usize = 3;
const PORT_LOCAL: usize = 4; // injection (input) / ejection (output)
const NPORTS: usize = 5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Head,
    Body,
    Tail,
}

#[derive(Clone, Copy, Debug)]
struct Flit {
    worm: u32,
    kind: Kind,
    /// Earliest cycle this flit may move (router charge for heads).
    ready: u64,
}

#[derive(Debug)]
struct OutPort {
    /// Owner worm per virtual channel.
    owners: Vec<Option<u32>>,
    /// Physical-channel occupancy: one flit per `link_delay`.
    busy_until: u64,
    /// Round-robin pointer over candidate (input buffer) indices.
    rr: usize,
    /// Round-robin pointer for VC allocation.
    vc_rr: usize,
    busy_ticks: u64,
}

impl OutPort {
    fn new(vcs: usize) -> Self {
        OutPort { owners: vec![None; vcs], busy_until: 0, rr: 0, vc_rr: 0, busy_ticks: 0 }
    }

    /// The output VC owned by `worm`, if any.
    fn vc_of(&self, worm: u32) -> Option<usize> {
        self.owners.iter().position(|&o| o == Some(worm))
    }

    /// A free output VC, searched round-robin.
    fn free_vc(&self) -> Option<usize> {
        let v = self.owners.len();
        (0..v).map(|i| (self.vc_rr + i) % v).find(|&vc| self.owners[vc].is_none())
    }
}

#[derive(Debug)]
struct Worm {
    msg: NetMessage,
    /// `(node index, output port)` in visit order.
    route: Vec<(usize, usize)>,
    flits: u64,
    delivered: Option<u64>,
}

/// The cycle-accurate network model. See the module docs for the router
/// microarchitecture.
///
/// # Example
///
/// ```
/// use commchar_mesh::{FlitLevel, MeshConfig, MeshModel, NetMessage, NodeId};
/// use commchar_des::SimTime;
///
/// let msgs = vec![NetMessage {
///     id: 0, src: NodeId(0), dst: NodeId(3), bytes: 16, inject: SimTime::ZERO,
/// }];
/// let log = FlitLevel::new(MeshConfig::new(2, 2)).simulate(&msgs);
/// assert_eq!(log.records().len(), 1);
/// ```
#[derive(Debug)]
pub struct FlitLevel {
    cfg: MeshConfig,
}

impl FlitLevel {
    /// Creates a model with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on a torus shape: the router model's XY routing needs escape
    /// virtual channels for torus deadlock freedom, which it does not
    /// implement — use [`OnlineWormhole`](crate::OnlineWormhole) for torus
    /// studies.
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(
            cfg.shape.topology() == crate::Topology::Mesh,
            "FlitLevel supports mesh topologies only"
        );
        FlitLevel { cfg }
    }

    fn build_route(&self, src: NodeId, dst: NodeId) -> Vec<(usize, usize)> {
        let shape = self.cfg.shape;
        let mut route = Vec::new();
        let mut cur = shape.coord(src);
        let goal = shape.coord(dst);
        while cur.x != goal.x {
            let (port, nx) = if goal.x > cur.x { (PORT_E, cur.x + 1) } else { (PORT_W, cur.x - 1) };
            route.push((shape.node_at(cur).index(), port));
            cur.x = nx;
        }
        while cur.y != goal.y {
            let (port, ny) = if goal.y > cur.y { (PORT_S, cur.y + 1) } else { (PORT_N, cur.y - 1) };
            route.push((shape.node_at(cur).index(), port));
            cur.y = ny;
        }
        route.push((shape.node_at(goal).index(), PORT_LOCAL));
        route
    }
}

/// Runtime state for one simulation run.
struct Sim<'a> {
    cfg: &'a MeshConfig,
    vcs: usize,
    worms: Vec<Worm>,
    /// Input buffers: `buffers[node][port * vcs + vc]`.
    buffers: Vec<Vec<VecDeque<Flit>>>,
    /// Output ports: `outputs[node][port]`.
    outputs: Vec<Vec<OutPort>>,
    /// Reserved (in-flight) slots per input buffer (same indexing).
    reserved: Vec<Vec<usize>>,
    /// Flits in flight on a channel: (arrival, node, buffer index, flit).
    in_flight: Vec<(u64, usize, usize, Flit)>,
    remaining: usize,
}

impl<'a> Sim<'a> {
    fn out_channel_id(&self, node: usize, port: usize) -> u32 {
        // Matches MeshShape channel numbering: dirs 0..3, ejection 5.
        if port == PORT_LOCAL {
            node as u32 * 6 + 5
        } else {
            node as u32 * 6 + port as u32
        }
    }

    fn downstream(&self, node: usize, port: usize) -> (usize, usize) {
        let w = self.cfg.shape.width() as usize;
        match port {
            PORT_E => (node + 1, PORT_W),
            PORT_W => (node - 1, PORT_E),
            PORT_S => (node + w, PORT_N),
            PORT_N => (node - w, PORT_S),
            _ => unreachable!("ejection has no downstream router"),
        }
    }

    /// Route lookup: output port used by `worm` at `node`.
    fn out_port(&self, worm: u32, node: usize) -> usize {
        self.worms[worm as usize]
            .route
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, p)| p)
            .expect("worm visited a node off its route")
    }

    fn step(&mut self, t: u64) -> bool {
        let mut moved = false;
        let vcs = self.vcs;

        // Phase 1: land in-flight flits whose channel traversal completed.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= t {
                let (_, node, buf, mut flit) = self.in_flight.swap_remove(i);
                if flit.kind == Kind::Head {
                    flit.ready = t + self.cfg.router_delay;
                } else {
                    flit.ready = t;
                }
                self.reserved[node][buf] -= 1;
                self.buffers[node][buf].push_back(flit);
                moved = true;
            } else {
                i += 1;
            }
        }

        // Phase 2: switch + VC allocation, one flit per physical output.
        let nodes = self.cfg.shape.nodes();
        for node in 0..nodes {
            for out in 0..NPORTS {
                if self.outputs[node][out].busy_until > t {
                    continue;
                }
                // Candidate input buffers whose head flit requests `out`.
                let mut candidates: Vec<usize> = Vec::new();
                for buf in 0..NPORTS * vcs {
                    if let Some(f) = self.buffers[node][buf].front() {
                        if f.ready <= t && self.out_port(f.worm, node) == out {
                            candidates.push(buf);
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                // Select (buffer, output vc): body/tail flits use their
                // worm's owned VC; heads need a free VC (and downstream
                // space). Round-robin over candidates for fairness.
                let rr = self.outputs[node][out].rr;
                let ncand = candidates.len();
                let mut choice: Option<(usize, usize)> = None;
                for k in 0..ncand {
                    let buf = candidates[(rr + k) % ncand];
                    let f = *self.buffers[node][buf].front().unwrap();
                    let ovc = match f.kind {
                        Kind::Head => match self.outputs[node][out].free_vc() {
                            Some(vc) => vc,
                            None => continue,
                        },
                        _ => match self.outputs[node][out].vc_of(f.worm) {
                            Some(vc) => vc,
                            None => continue, // owner not established yet
                        },
                    };
                    // Capacity check downstream (ejection always sinks).
                    if out != PORT_LOCAL {
                        let (dn, dp) = self.downstream(node, out);
                        let dbuf = dp * vcs + ovc;
                        if self.buffers[dn][dbuf].len() + self.reserved[dn][dbuf]
                            >= self.cfg.buffer_flits
                        {
                            continue;
                        }
                    }
                    choice = Some((buf, ovc));
                    break;
                }
                let Some((buf, ovc)) = choice else { continue };
                // Move the flit.
                let flit = self.buffers[node][buf].pop_front().unwrap();
                let link = self.cfg.link_delay;
                let port_state = &mut self.outputs[node][out];
                port_state.busy_until = t + link;
                port_state.busy_ticks += link;
                port_state.rr = port_state.rr.wrapping_add(1);
                match flit.kind {
                    Kind::Head => {
                        port_state.owners[ovc] = Some(flit.worm);
                        port_state.vc_rr = (ovc + 1) % vcs;
                    }
                    Kind::Tail => port_state.owners[ovc] = None,
                    Kind::Body => {}
                }
                moved = true;
                if out == PORT_LOCAL {
                    if flit.kind == Kind::Tail {
                        let w = &mut self.worms[flit.worm as usize];
                        w.delivered = Some(t + link);
                        self.remaining -= 1;
                    }
                } else {
                    let (dn, dp) = self.downstream(node, out);
                    let dbuf = dp * vcs + ovc;
                    self.reserved[dn][dbuf] += 1;
                    self.in_flight.push((t + link, dn, dbuf, flit));
                }
            }
        }
        moved
    }

    /// Earliest future time anything can happen (for idle-time skipping).
    fn next_interesting(&self, t: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |cand: u64| {
            if cand > t {
                next = Some(next.map_or(cand, |n| n.min(cand)));
            }
        };
        for &(arr, _, _, _) in &self.in_flight {
            consider(arr);
        }
        for node in 0..self.cfg.shape.nodes() {
            for buf in 0..NPORTS * self.vcs {
                if let Some(f) = self.buffers[node][buf].front() {
                    consider(f.ready);
                    consider(self.outputs[node][self.out_port(f.worm, node)].busy_until);
                }
            }
        }
        next
    }
}

impl MeshModel for FlitLevel {
    fn simulate(&mut self, msgs: &[NetMessage]) -> NetLog {
        let cfg = self.cfg;
        let vcs = cfg.virtual_channels;
        let nodes = cfg.shape.nodes();
        let mut sorted: Vec<NetMessage> = msgs.to_vec();
        sorted.sort_by_key(|m| (m.inject, m.id));

        let worms: Vec<Worm> = sorted
            .iter()
            .map(|m| Worm {
                msg: *m,
                route: self.build_route(m.src, m.dst),
                flits: cfg.flits_for(m.bytes),
                delivered: None,
            })
            .collect();

        let mut sim = Sim {
            cfg: &cfg,
            vcs,
            remaining: worms.len(),
            worms,
            buffers: vec![(0..NPORTS * vcs).map(|_| VecDeque::new()).collect(); nodes],
            outputs: (0..nodes).map(|_| (0..NPORTS).map(|_| OutPort::new(vcs)).collect()).collect(),
            reserved: vec![vec![0; NPORTS * vcs]; nodes],
            in_flight: Vec::new(),
        };

        // Per-node NI queues. Flits of one message stay contiguous (a worm
        // may never interleave with another in the injection buffer); the
        // head becomes available hop_latency after injection and the body
        // follows at one flit per link_delay. Messages enter injection
        // VC 0; VC spreading happens at the routers.
        let hop = cfg.hop_latency();
        let mut pending: Vec<VecDeque<(u64, Flit)>> = vec![VecDeque::new(); nodes];
        for (w, worm) in sim.worms.iter().enumerate() {
            let base = worm.msg.inject.ticks() + hop;
            let src = worm.msg.src.index();
            for j in 0..worm.flits {
                let kind = if j == 0 {
                    Kind::Head
                } else if j == worm.flits - 1 {
                    Kind::Tail
                } else {
                    Kind::Body
                };
                let avail = base + j * cfg.link_delay;
                let ready = if kind == Kind::Head { avail + cfg.router_delay } else { avail };
                pending[src].push_back((avail, Flit { worm: w as u32, kind, ready }));
            }
        }

        let mut t = sorted.first().map(|m| m.inject.ticks()).unwrap_or(0);
        let mut guard: u64 = 0;
        let guard_limit = 200_000_000;
        let inj_buf = PORT_LOCAL * vcs; // injection buffer, vc 0
        while sim.remaining > 0 {
            for (node, queue) in pending.iter_mut().enumerate() {
                while queue.front().is_some_and(|&(avail, _)| avail <= t) {
                    let (_, mut flit) = queue.pop_front().unwrap();
                    if flit.kind == Kind::Head {
                        // The router charge starts when the head actually
                        // reaches the router, which may be later than its
                        // nominal availability if it queued at the NI.
                        flit.ready = t + cfg.router_delay;
                    }
                    sim.buffers[node][inj_buf].push_back(flit);
                }
            }
            let moved = sim.step(t);
            guard += 1;
            assert!(
                guard < guard_limit,
                "flit simulation exceeded {guard_limit} steps (deadlock?)"
            );
            if moved {
                t += 1;
            } else {
                // Idle: skip to the next time anything can change.
                let mut next = sim.next_interesting(t);
                for queue in &pending {
                    if let Some(&(avail, _)) = queue.front() {
                        if avail > t {
                            next = Some(next.map_or(avail, |n| n.min(avail)));
                        }
                    }
                }
                match next {
                    Some(n) => t = n.max(t + 1),
                    None => {
                        panic!("flit simulation wedged with {} worms undelivered", sim.remaining)
                    }
                }
            }
        }

        let first = sorted.first().map(|m| m.inject.ticks()).unwrap_or(0);
        let mut last = first;
        let mut log = NetLog::new();
        for worm in &sim.worms {
            let delivered = worm.delivered.expect("all worms delivered");
            last = last.max(delivered);
            let hops = cfg.shape.hop_distance(worm.msg.src, worm.msg.dst);
            log.push(MsgRecord {
                id: worm.msg.id,
                src: worm.msg.src,
                dst: worm.msg.dst,
                bytes: worm.msg.bytes,
                inject: worm.msg.inject.ticks(),
                delivered,
                hops,
                zero_load: cfg.zero_load_latency(worm.msg.bytes, hops),
            });
        }
        let span = (last - first) as f64;
        let mut util = Vec::new();
        for node in 0..nodes {
            for port in 0..NPORTS {
                let busy = sim.outputs[node][port].busy_ticks;
                if busy > 0 && span > 0.0 {
                    util.push((sim.out_channel_id(node, port), busy as f64 / span));
                }
            }
        }
        log.set_utilization(util);
        log
    }
}

#[cfg(test)]
mod tests {
    use commchar_des::SimTime;

    use super::*;
    use crate::{MeshModel, OnlineWormhole};

    fn msg(id: u64, src: u16, dst: u16, bytes: u32, inject: u64) -> NetMessage {
        NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject: SimTime::from_ticks(inject),
        }
    }

    #[test]
    fn zero_load_latency_matches_online_model() {
        let cfg = MeshConfig::new(4, 4);
        for (src, dst, bytes) in [(0u16, 15u16, 32u32), (3, 12, 8), (5, 6, 100)] {
            let m = vec![msg(0, src, dst, bytes, 0)];
            let flit = FlitLevel::new(cfg).simulate(&m);
            let online = OnlineWormhole::new(cfg).simulate(&m);
            assert_eq!(
                flit.records()[0].delivered,
                online.records()[0].delivered,
                "zero-load disagreement for {src}->{dst} ({bytes}B)"
            );
            assert_eq!(flit.records()[0].blocked(), 0);
        }
    }

    #[test]
    fn zero_load_unchanged_by_virtual_channels() {
        for vcs in [1, 2, 4] {
            let cfg = MeshConfig::new(4, 4).with_virtual_channels(vcs);
            let m = vec![msg(0, 0, 15, 64, 0)];
            let log = FlitLevel::new(cfg).simulate(&m);
            assert_eq!(log.records()[0].blocked(), 0, "vcs={vcs}");
        }
    }

    #[test]
    fn all_messages_delivered_under_contention() {
        for vcs in [1, 2] {
            let cfg = MeshConfig::new(4, 2).with_virtual_channels(vcs);
            let mut msgs = Vec::new();
            for i in 0..40u64 {
                msgs.push(msg(
                    i,
                    (i % 8) as u16,
                    ((i * 3 + 1) % 8) as u16,
                    16 + (i as u32 % 48),
                    i * 2,
                ));
            }
            let msgs: Vec<NetMessage> = msgs.into_iter().filter(|m| m.src != m.dst).collect();
            let log = FlitLevel::new(cfg).simulate(&msgs);
            assert_eq!(log.records().len(), msgs.len());
            log.check_invariants(cfg.shape).unwrap();
        }
    }

    #[test]
    fn hotspot_contention_is_visible() {
        let cfg = MeshConfig::new(4, 2);
        // Everyone hammers node 0 simultaneously.
        let msgs: Vec<NetMessage> = (1..8).map(|i| msg(i, i as u16, 0, 64, 0)).collect();
        let log = FlitLevel::new(cfg).simulate(&msgs);
        let blocked: u64 = log.records().iter().map(|r| r.blocked()).sum();
        assert!(blocked > 0, "hotspot must create contention");
    }

    #[test]
    fn virtual_channels_relieve_head_of_line_blocking() {
        // A long worm 0->3 blocks the row; a short message 1->2 arrives
        // once the worm firmly holds the channel. With 1 VC it must wait
        // for the worm's tail; with 4 VCs it interleaves on the physical
        // channel.
        let base = MeshConfig::new(4, 1).with_buffer_flits(2);
        let msgs = vec![msg(0, 0, 3, 512, 0), msg(1, 1, 2, 8, 20)];
        let lat = |vcs: usize| {
            let log = FlitLevel::new(base.with_virtual_channels(vcs)).simulate(&msgs);
            log.records().iter().find(|r| r.id == 1).unwrap().latency()
        };
        let one = lat(1);
        let four = lat(4);
        assert!(four < one, "VCs should cut the short message's latency: {four} vs {one}");
    }

    #[test]
    fn same_source_messages_serialize() {
        let cfg = MeshConfig::new(4, 1);
        let msgs = vec![msg(0, 0, 2, 64, 0), msg(1, 0, 3, 64, 0)];
        let log = FlitLevel::new(cfg).simulate(&msgs);
        let r0 = log.records().iter().find(|r| r.id == 0).unwrap();
        let r1 = log.records().iter().find(|r| r.id == 1).unwrap();
        assert!(r1.blocked() > 0 || r0.blocked() > 0);
    }

    #[test]
    fn utilization_bounded() {
        let cfg = MeshConfig::new(2, 2).with_virtual_channels(2);
        let msgs: Vec<NetMessage> = (0..20).map(|i| msg(i, 0, 3, 32, i * 5)).collect();
        let log = FlitLevel::new(cfg).simulate(&msgs);
        for &(_, u) in log.utilization() {
            assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u} out of range");
        }
    }
}
