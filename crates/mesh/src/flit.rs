//! Cycle-accurate flit-level wormhole router model with virtual channels,
//! driven by an event wheel instead of a per-cycle full-state scan.
//!
//! Routers have five input ports (one per neighbour plus injection), each
//! with `virtual_channels` finite FIFO buffers; five output ports (plus
//! ejection) whose virtual channels are owned by at most one worm each
//! while the physical channel accepts one flit per `link_delay` cycles;
//! round-robin switch and VC allocation; wormhole flow control. Header
//! flits pay a `router_delay` routing charge at every router; body flits
//! stream behind on the established path.
//!
//! # Event-driven microarchitecture
//!
//! The retained [`FlitCycleReference`](crate::FlitCycleReference) walks
//! every node × port × VC buffer every cycle. This model produces the
//! exact same cycle-by-cycle state evolution while only touching state
//! that has work:
//!
//! - **Hop cursors** — every flit carries the index of its current hop in
//!   its worm's precomputed route (stored in one flat arena, no per-worm
//!   allocation), so "which output does this flit want" is an O(1) array
//!   read instead of a linear route search per candidate per cycle.
//! - **Request queues** — each output port keeps a sorted list of input
//!   buffers whose *head* flit requests it, maintained when a flit becomes
//!   head-of-buffer (landing into an empty buffer, or exposed by a pop).
//!   A cycle's switch-allocation pass visits only outputs with registered
//!   requests, in the reference's node-major/port-minor order; stale
//!   entries are dropped lazily at visit time. New requests registered
//!   *behind* the sweep position join the same cycle, matching the
//!   reference's in-cycle sequential scan.
//! - **Event wheel** — a dirty bitset over output ports plus a
//!   power-of-two time ring replaces both the linear `in_flight` scan and
//!   the O(network) `next_interesting` sweep. Every enabling transition
//!   (a flit landing, a head-ready charge elapsing, a `busy_until`
//!   expiration, an NI injection becoming available, a buffer slot
//!   freeing) either sets the output's dirty bit for the current cycle or
//!   drops the output id into `ring[t & (wheel-1)]` for the cycle the
//!   condition holds; ring slots are promoted into the bitset at the top
//!   of each cycle and the bitset is swept in ascending output order —
//!   the reference's node-major/port-minor order. The ring only needs
//!   `max(link_delay, router_delay) + 2` slots because no enabling event
//!   schedules further ahead than that; arrivals and NI entry times
//!   beyond the horizon wait in a bucketed FIFO and a small heap. Extra
//!   visits are harmless (a visit where nothing can move changes no
//!   state — round-robin pointers and VC owners mutate only on actual
//!   moves), so the visit set only needs to be a *superset* of the
//!   reference's action times — that is what makes the two models
//!   cycle-identical by construction, and the randomized equivalence
//!   suite (`tests/equivalence.rs`) pins it across shapes, VC counts and
//!   seeds.
//! - **Flat storage** — input buffers live in one slab of power-of-two
//!   rings (`bhead`/`blen` arrays, no per-buffer `VecDeque`), request
//!   queues in one stride-indexed array, and the whole workspace is
//!   reused across `run` calls, so the hot loop allocates nothing.
//!
//! With one virtual channel the model reduces to a plain wormhole router
//! and cross-validates the [`OnlineWormhole`](crate::OnlineWormhole)
//! recurrence; with more it quantifies the head-of-line blocking the
//! recurrence model's single-resource channels overstate (the
//! Kumar–Bhuyan question the paper cites). Throughput relative to the
//! reference is tracked in `BENCH_flit.json` (see `scripts/check.sh
//! --bench-smoke`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::engine::EngineError;
use crate::sink::LogSink;
use crate::{
    MeshConfig, MeshModel, MsgRecord, NetLog, NetMessage, NodeId, StreamingLog, HOP_PORT_BITS,
    HOP_PORT_MASK,
};

mod shard;

const PORT_E: usize = 0;
const PORT_W: usize = 1;
const PORT_S: usize = 2;
const PORT_N: usize = 3;
const PORT_LOCAL: usize = 4; // injection (input) / ejection (output)
const NPORTS: usize = 5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Head,
    Body,
    Tail,
}

#[derive(Clone, Copy, Debug)]
struct Flit {
    worm: u32,
    kind: Kind,
    /// Earliest cycle this flit may move (router charge for heads).
    ready: u64,
    /// Hop cursor: absolute index into the shared route arena of the hop
    /// this flit is currently at — `routes[hop]` is its requested output
    /// port (the flit's node is implicit in which buffer holds it).
    hop: u32,
}

#[derive(Clone, Copy, Debug)]
struct Worm {
    msg: NetMessage,
    /// Offset/length of this worm's route in the shared route arena.
    route_off: u32,
    route_len: u32,
    flits: u64,
    ejected: u64,
    /// Furthest arena index the head flit has reached (diagnostics).
    head_hop: u32,
    delivered: Option<u64>,
}

/// A flit in flight on a channel, due to land in `buf` of `node`.
#[derive(Clone, Copy, Debug)]
struct Landing {
    node: u32,
    buf: u32,
    flit: Flit,
}

/// Reusable per-run state. Everything here is cleared (capacity kept) at
/// the start of each run, so repeated batches on one model reuse the worm
/// storage, route arena, buffers and event heaps without reallocating.
/// `Clone` exists for the closed-loop engine ([`ClosedLoop`]), whose
/// speculative state is a snapshot of the committed one.
#[derive(Clone, Debug, Default)]
struct Workspace {
    /// Message indices in (inject, id) order — replaces cloning and
    /// re-sorting the caller's slice.
    order: Vec<u32>,
    worms: Vec<Worm>,
    /// Flat route arena shared by all worms: the output port per hop (a
    /// flit's current node is implicit in which buffer holds it).
    routes: Vec<u8>,
    /// Input-buffer slab: buffer `b = node*NPORTS*vcs + port*vcs + vc`
    /// owns `cap` contiguous slots (a power of two) used as a ring —
    /// `slab[b*cap + ((bhead[b] + i) & (cap-1))]` is its `i`-th flit.
    /// One flat allocation replaces a `VecDeque` per buffer.
    slab: Vec<Flit>,
    /// Ring-start slot per buffer.
    bhead: Vec<u32>,
    /// Occupancy per buffer.
    blen: Vec<u32>,
    /// Reserved (in-flight) slots per input buffer (same indexing).
    reserved: Vec<u32>,
    /// Output VC owners, flat: `owners[(node*NPORTS + port) * vcs + vc]`.
    owners: Vec<Option<u32>>,
    /// Per output `node*NPORTS + port`:
    busy_until: Vec<u64>,
    busy_ticks: Vec<u64>,
    rr: Vec<usize>,
    vc_rr: Vec<usize>,
    /// Request queues, flat: output `o` owns `req[o*stride ..]` with
    /// `req_len[o]` live entries — sorted in-node input-buffer indices
    /// whose head flit requests it (may contain stale entries, dropped at
    /// visit). At most `stride` buffers exist per node, so the fixed
    /// stride can never overflow.
    req: Vec<u32>,
    /// Live request count per output.
    req_len: Vec<u8>,
    /// Bitset of outputs to visit in the current cycle: the scan iterates
    /// its set bits ascending — exactly the reference's node-major/
    /// port-minor output order, restricted to outputs with a pending
    /// enabling event. Bits are cleared at visit.
    dirty: Vec<u64>,
    /// The event wheel: `ring[T % K]` holds the outputs to mark dirty at
    /// cycle `T`. Every wakeup is at most `K = max(link, router) + 2`
    /// cycles ahead (busy expiry, head router charge, next-cycle
    /// dependency marks), so a tiny ring replaces a priority queue.
    ring: Vec<Vec<u32>>,
    /// Flits crossing channels, bucketed by arrival time. Every forward
    /// at cycle `t` lands at `t + link_delay`, so arrival times are
    /// nondecreasing and a plain FIFO of buckets suffices — O(1) per
    /// flit, no heap.
    due: VecDeque<(u64, Vec<Landing>)>,
    /// Recycled landing buckets.
    spare: Vec<Vec<Landing>>,
    /// (front entry time, node) per NI queue awaiting injection room.
    ni_events: BinaryHeap<Reverse<(u64, u32)>>,
    /// Latest entry time scheduled in `ni_events` per node (dedup).
    ni_sched: Vec<u64>,
    /// Per-node NI queues of not-yet-injected flits, keyed by entry time
    /// (the prefix max of availabilities — when the flit would enter the
    /// unbounded injection buffer of the reference model).
    pending: Vec<VecDeque<(u64, Flit)>>,
    /// Scratch: ready candidates of the output being visited, with their
    /// head flit (copied once during validation).
    cand: Vec<(u32, Flit)>,
    /// Input port per in-node buffer index (`buf / vcs` as a lookup, so
    /// the per-move division by a runtime VC count disappears).
    port_of: Vec<u8>,
}

impl Workspace {
    fn reset(&mut self, nodes: usize, vcs: usize, ring_slots: usize, cap: usize) {
        let nbuf = nodes * NPORTS * vcs;
        let nout = nodes * NPORTS;
        self.order.clear();
        self.worms.clear();
        self.routes.clear();
        let filler = Flit { worm: 0, kind: Kind::Body, ready: 0, hop: 0 };
        self.slab.clear();
        self.slab.resize(nbuf * cap, filler);
        self.bhead.clear();
        self.bhead.resize(nbuf, 0);
        self.blen.clear();
        self.blen.resize(nbuf, 0);
        self.reserved.clear();
        self.reserved.resize(nbuf, 0);
        self.owners.clear();
        self.owners.resize(nout * vcs, None);
        self.busy_until.clear();
        self.busy_until.resize(nout, 0);
        self.busy_ticks.clear();
        self.busy_ticks.resize(nout, 0);
        self.rr.clear();
        self.rr.resize(nout, 0);
        self.vc_rr.clear();
        self.vc_rr.resize(nout, 0);
        self.req.clear();
        self.req.resize(nout * NPORTS * vcs, 0);
        self.req_len.clear();
        self.req_len.resize(nout, 0);
        self.dirty.clear();
        self.dirty.resize(nout.div_ceil(64), 0);
        for slot in &mut self.ring {
            slot.clear();
        }
        self.ring.resize_with(ring_slots, Vec::new);
        while let Some((_, mut bucket)) = self.due.pop_front() {
            bucket.clear();
            self.spare.push(bucket);
        }
        self.ni_events.clear();
        self.ni_sched.clear();
        self.ni_sched.resize(nodes, u64::MAX);
        for q in &mut self.pending {
            q.clear();
        }
        self.pending.resize_with(nodes, VecDeque::new);
        self.cand.clear();
        self.port_of.clear();
        self.port_of.extend((0..NPORTS * vcs).map(|b| (b / vcs) as u8));
    }

    /// Makes `self` a snapshot of `src`, reusing every allocation and
    /// skipping the parts that provably match — the speculative-state
    /// refresh of the closed-loop engine, which must not cost O(history)
    /// per message:
    ///
    /// - `routes` is an append-only arena, so only its new suffix is
    ///   copied;
    /// - worms below the `finalized` watermark (delivered in both states)
    ///   hold their final, state-independent values and are skipped; only
    ///   the mutable tail is refreshed;
    /// - everything else is mesh-sized or in-flight-sized and is copied
    ///   with `clone_from` (capacity kept).
    ///
    /// `self` must be an earlier snapshot of the same run (or empty), so
    /// its arenas are prefixes of `src`'s.
    fn sync_from(&mut self, src: &Workspace, finalized: usize) {
        debug_assert!(self.routes.len() <= src.routes.len());
        debug_assert!(self.worms.len() <= src.worms.len());
        debug_assert!(finalized <= self.worms.len());
        self.routes.extend_from_slice(&src.routes[self.routes.len()..]);
        let known = self.worms.len();
        self.worms[finalized..].copy_from_slice(&src.worms[finalized..known]);
        self.worms.extend_from_slice(&src.worms[known..]);
        self.order.clone_from(&src.order);
        self.slab.clone_from(&src.slab);
        self.bhead.clone_from(&src.bhead);
        self.blen.clone_from(&src.blen);
        self.reserved.clone_from(&src.reserved);
        self.owners.clone_from(&src.owners);
        self.busy_until.clone_from(&src.busy_until);
        self.busy_ticks.clone_from(&src.busy_ticks);
        self.rr.clone_from(&src.rr);
        self.vc_rr.clone_from(&src.vc_rr);
        self.req.clone_from(&src.req);
        self.req_len.clone_from(&src.req_len);
        self.dirty.clone_from(&src.dirty);
        self.ring.clone_from(&src.ring);
        self.due.clone_from(&src.due);
        self.spare.clone_from(&src.spare);
        self.ni_events.clone_from(&src.ni_events);
        self.ni_sched.clone_from(&src.ni_sched);
        self.pending.clone_from(&src.pending);
        self.cand.clone_from(&src.cand);
        self.port_of.clone_from(&src.port_of);
    }
}

/// The cycle-accurate network model: event-driven, cycle-identical to
/// [`FlitCycleReference`](crate::FlitCycleReference) (see the module docs
/// for the microarchitecture).
///
/// Like [`OnlineWormhole`](crate::OnlineWormhole), the model is generic
/// over its [`LogSink`]: the default [`NetLog`] retains every record;
/// [`FlitLevel::streaming`] folds deliveries into a constant-memory
/// [`StreamingLog`] instead.
///
/// # Example
///
/// ```
/// use commchar_mesh::{FlitLevel, MeshConfig, MeshModel, NetMessage, NodeId};
/// use commchar_des::SimTime;
///
/// let msgs = vec![NetMessage {
///     id: 0, src: NodeId(0), dst: NodeId(3), bytes: 16, inject: SimTime::ZERO,
/// }];
/// let log = FlitLevel::new(MeshConfig::new(2, 2)).simulate(&msgs);
/// assert_eq!(log.records().len(), 1);
/// ```
#[derive(Debug)]
pub struct FlitLevel<S: LogSink = NetLog> {
    cfg: MeshConfig,
    sink: S,
    /// Accumulated busy ticks per output across runs (utilization).
    busy: Vec<u64>,
    first_inject: Option<u64>,
    last_delivery: u64,
    ws: Workspace,
    /// `--sim-jobs`: worker threads for the sharded event loop. `1` runs
    /// the serial engine; the output is byte-identical for every value.
    sim_jobs: usize,
    /// Lazily spawned long-lived worker team, reused across runs.
    team: Option<commchar_pool::Team>,
}

impl FlitLevel {
    /// Creates a model logging into a [`NetLog`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration lacks the virtual channels its
    /// (topology × routing) pair needs for deadlock freedom (the torus
    /// dateline escape classes, the adaptive XY/YX classes) — use
    /// [`FlitLevel::try_new`] for the typed error.
    pub fn new(cfg: MeshConfig) -> Self {
        FlitLevel::with_sink(cfg, NetLog::new())
    }

    /// [`new`](FlitLevel::new), surfacing an undersized virtual-channel
    /// budget as [`EngineError::UnsupportedTopology`] instead of a panic.
    pub fn try_new(cfg: MeshConfig) -> Result<Self, EngineError> {
        FlitLevel::try_with_sink(cfg, NetLog::new())
    }

    /// Finishes the simulation and returns the network log, including
    /// per-channel utilization over the observed span.
    pub fn into_log(self) -> NetLog {
        self.into_sink()
    }
}

impl FlitLevel<StreamingLog> {
    /// Creates a model accumulating into a [`StreamingLog`] sized for this
    /// mesh — constant sink memory however many messages are simulated.
    pub fn streaming(cfg: MeshConfig) -> Self {
        let nodes = cfg.shape.nodes();
        FlitLevel::with_sink(cfg, StreamingLog::new(nodes))
    }
}

impl<S: LogSink> FlitLevel<S> {
    /// Creates a model delivering records into `sink`.
    ///
    /// # Panics
    ///
    /// Panics on an undersized virtual-channel budget (see
    /// [`FlitLevel::new`]).
    pub fn with_sink(cfg: MeshConfig, sink: S) -> Self {
        match FlitLevel::try_with_sink(cfg, sink) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`with_sink`](FlitLevel::with_sink), surfacing an undersized
    /// virtual-channel budget as [`EngineError::UnsupportedTopology`]
    /// instead of a panic.
    pub fn try_with_sink(cfg: MeshConfig, sink: S) -> Result<Self, EngineError> {
        EngineError::check_flit(&cfg)?;
        Ok(FlitLevel {
            cfg,
            sink,
            busy: vec![0; cfg.shape.nodes() * NPORTS],
            first_inject: None,
            last_delivery: 0,
            ws: Workspace::default(),
            sim_jobs: 1,
            team: None,
        })
    }

    /// Sets the `--sim-jobs` worker count: `1` (the default) is the
    /// serial engine, `0` means one worker per hardware thread, `N > 1`
    /// partitions the mesh into row bands run by a conservative-window
    /// wavefront (see the `shard` module docs). Cycle-identical — the
    /// log and utilization are byte-identical for every value.
    pub fn with_sim_jobs(mut self, sim_jobs: usize) -> Self {
        self.sim_jobs = sim_jobs;
        self
    }

    /// The network configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// The sink accumulating this network's records.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Simulates one batch of messages (any order), feeding one record per
    /// message into the sink. May be called repeatedly; channel utilization
    /// accumulates across batches until [`into_sink`](FlitLevel::into_sink).
    ///
    /// # Panics
    ///
    /// Panics if the simulation wedges (a deadlocked configuration), with a
    /// per-worm account of what is still in flight — use
    /// [`try_run`](FlitLevel::try_run) for the typed error.
    pub fn run(&mut self, msgs: &[NetMessage]) {
        if let Err(e) = self.try_run(msgs) {
            panic!("{e}");
        }
    }

    /// [`run`](FlitLevel::run), surfacing a wedge as
    /// [`EngineError::Wedged`] instead of a panic.
    pub fn try_run(&mut self, msgs: &[NetMessage]) -> Result<(), EngineError> {
        let cfg = self.cfg;
        let vcs = cfg.virtual_channels;
        let nodes = cfg.shape.nodes();
        // Horizon of the farthest wakeup an enabling event can schedule,
        // rounded to a power of two so slot lookup is a mask, not a div.
        let wheel = (cfg.link_delay.max(cfg.router_delay) + 2).next_power_of_two();
        let cap = cfg.buffer_flits.next_power_of_two();
        self.ws.reset(nodes, vcs, wheel as usize, cap);
        if msgs.is_empty() {
            return Ok(());
        }

        // Sort indices, not messages: the caller's slice is never cloned.
        self.ws.order.extend(0..msgs.len() as u32);
        let ws = &mut self.ws;
        ws.order.sort_by_key(|&i| (msgs[i as usize].inject, msgs[i as usize].id));

        // Build worms over the shared route arena, in injection order.
        let order = std::mem::take(&mut ws.order);
        for &i in &order {
            let m = msgs[i as usize];
            let route_off = ws.routes.len() as u32;
            build_route(&cfg, m.src, m.dst, &mut ws.routes);
            ws.worms.push(Worm {
                msg: m,
                route_off,
                route_len: ws.routes.len() as u32 - route_off,
                flits: cfg.flits_for(m.bytes),
                ejected: 0,
                head_hop: route_off,
                delivered: None,
            });
        }
        ws.order = order;

        // Per-node NI queues. Flits of one message stay contiguous (a worm
        // may never interleave with another in the injection buffer); the
        // head becomes available hop_latency after injection and the body
        // follows at one flit per link_delay. Messages enter injection
        // VC 0; VC spreading happens at the routers.
        let hop = cfg.hop_latency();
        for w in 0..ws.worms.len() {
            let worm = &ws.worms[w];
            let base = worm.msg.inject.ticks() + hop;
            let src = worm.msg.src.index();
            let flits = worm.flits;
            for j in 0..flits {
                let kind = if j == 0 {
                    Kind::Head
                } else if j == flits - 1 {
                    Kind::Tail
                } else {
                    Kind::Body
                };
                let avail = base + j * cfg.link_delay;
                let ready = if kind == Kind::Head { avail + cfg.router_delay } else { avail };
                let hop = ws.worms[w].route_off;
                ws.pending[src].push_back((avail, Flit { worm: w as u32, kind, ready, hop }));
            }
        }
        // Rewrite availabilities as entry times — the prefix max, i.e. the
        // cycle each flit enters the reference's (unbounded) injection
        // buffer — and charge heads their router delay from that cycle.
        // This decouples the charge from our *capped* injection buffers:
        // a flit may sit in `pending` past its entry time waiting for a
        // slot without perturbing any observable timing.
        for (node, queue) in ws.pending.iter_mut().enumerate() {
            let mut entered = 0u64;
            for (entry, flit) in queue.iter_mut() {
                entered = entered.max(*entry);
                *entry = entered;
                if flit.kind == Kind::Head {
                    flit.ready = entered + cfg.router_delay;
                }
            }
            if let Some(&(entry, _)) = queue.front() {
                ws.ni_events.push(Reverse((entry, node as u32)));
                ws.ni_sched[node] = entry;
            }
        }

        let first = msgs[ws.order[0] as usize].inject.ticks();
        let remaining = ws.worms.len();
        let shards = shard::plan(self.sim_jobs, cfg.shape.height() as usize);
        if shards > 1 {
            shard::drain_sharded(&cfg, &mut self.ws, None, remaining, shards, &mut self.team)?;
        } else {
            let mut engine = Engine {
                cfg,
                vcs,
                stride: NPORTS * vcs,
                wheel,
                cap,
                ws: &mut self.ws,
                remaining,
                shard: None,
            };
            engine.advance(None, Goal::Drain)?;
        }

        // Emit records in injection order (what the reference produces and
        // what per-source inter-arrival statistics expect) and fold this
        // batch's channel activity into the session accumulators.
        self.first_inject = Some(self.first_inject.map_or(first, |f| f.min(first)));
        for worm in &self.ws.worms {
            let delivered = worm.delivered.expect("all worms delivered");
            self.last_delivery = self.last_delivery.max(delivered);
            let hops = cfg.shape.hop_distance(worm.msg.src, worm.msg.dst);
            self.sink.record(MsgRecord {
                id: worm.msg.id,
                src: worm.msg.src,
                dst: worm.msg.dst,
                bytes: worm.msg.bytes,
                inject: worm.msg.inject.ticks(),
                delivered,
                hops,
                zero_load: cfg.zero_load_latency(worm.msg.bytes, hops),
            });
        }
        for (acc, &ticks) in self.busy.iter_mut().zip(&self.ws.busy_ticks) {
            *acc += ticks;
        }
        Ok(())
    }

    /// Finishes the simulation: hands per-channel utilization over the
    /// observed span to the sink and returns it.
    pub fn into_sink(mut self) -> S {
        let span = match self.first_inject {
            Some(first) if self.last_delivery > first => (self.last_delivery - first) as f64,
            _ => 0.0,
        };
        let mut util = Vec::new();
        for node in 0..self.cfg.shape.nodes() {
            for port in 0..NPORTS {
                let busy = self.busy[node * NPORTS + port];
                if busy > 0 && span > 0.0 {
                    util.push((out_channel_id(node, port), busy as f64 / span));
                }
            }
        }
        self.sink.finish(util);
        self.sink
    }
}

impl MeshModel for FlitLevel {
    fn simulate(&mut self, msgs: &[NetMessage]) -> NetLog {
        self.run(msgs);
        let sim_jobs = self.sim_jobs;
        let mut finished = std::mem::replace(self, FlitLevel::new(self.cfg));
        // Keep the warmed-up workspace (and worker team) for the next batch.
        self.sim_jobs = sim_jobs;
        std::mem::swap(&mut self.ws, &mut finished.ws);
        std::mem::swap(&mut self.team, &mut finished.team);
        finished.into_sink()
    }
}

/// Matches MeshShape channel numbering: dirs 0..3, ejection 5.
fn out_channel_id(node: usize, port: usize) -> u32 {
    if port == PORT_LOCAL {
        node as u32 * 6 + 5
    } else {
        node as u32 * 6 + port as u32
    }
}

/// Appends the packed per-hop route bytes from `src` to `dst` under the
/// configuration's routing policy: `class << HOP_PORT_BITS | port` per
/// inter-router hop, then an ejection byte. The class is the
/// virtual-channel class the hop's head allocates from — the torus
/// dateline (escape) discipline and the adaptive XY/YX split live
/// entirely in these bytes, so the engine's hot loop just masks and
/// shifts. Mesh + dimension packs every hop as class 0, the historical
/// plain port byte.
fn build_route(cfg: &MeshConfig, src: NodeId, dst: NodeId, routes: &mut Vec<u8>) {
    cfg.shape.route_hops_into(src, dst, cfg.routing, routes);
}

/// What [`Engine::advance`] runs the event loop toward.
#[derive(Clone, Copy, Debug)]
enum Goal {
    /// Run until every worm is delivered (the batch semantics).
    Drain,
    /// Run until worm `w` is delivered.
    Deliver(u32),
    /// Run every cycle strictly before the horizon, then stop. Cycles
    /// below the horizon are *final* for the closed-loop engine: no
    /// message injected from now on can put a flit into a network
    /// interface earlier than `inject + hop_latency`.
    Before(u64),
}

/// A boundary event crossing between adjacent shards, labeled with the
/// cycle at which the receiver must apply it (before scanning that cycle).
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A flit completing its channel traversal into a receiver-side input
    /// buffer — the cross-shard form of a [`Workspace::due`] entry.
    Landing(Landing),
    /// A receiver-side pop of input buffer `buf` (global index) that fed
    /// from the receiver's output `out`: the receiver decrements its
    /// `occ` capacity mirror for `buf` and marks `out` dirty — the
    /// cross-shard form of the feeder wakeup in
    /// [`Engine::move_flit`].
    Pop {
        /// Feeder output (global `node*NPORTS + port`) owned by the receiver.
        out: u32,
        /// The popped downstream buffer (global slab index).
        buf: u32,
    },
}

/// Per-shard engine extension: the node range this engine owns plus the
/// capacity mirrors and outboxes that stand in for directly touching a
/// neighbor shard's state. `None` on the serial path — every sharded
/// branch in the engine is one predictable `is_some` test.
#[derive(Debug, Default)]
struct ShardCtx {
    /// First owned node (row-contiguous band, row-major node ids).
    lo: usize,
    /// One past the last owned node.
    hi: usize,
    /// Mirror of `blen + reserved` for the *remote* downstream buffers of
    /// this shard's boundary outputs, indexed like `reserved` (global
    /// buffer index). `+1` at each boundary forward, `-1` on a received
    /// [`Ev::Pop`] — so the capacity check sees exactly what the serial
    /// engine would.
    occ: Vec<u32>,
    /// Owned input buffers fed by a remote shard: their `reserved` is
    /// authoritative on the *upstream* side (`occ`), so landings here
    /// skip the local `reserved` decrement.
    remote_fed: Vec<bool>,
    /// Events for the *predecessor* band (across this shard's north
    /// boundary), flushed at end of cycle. On a mesh that is always the
    /// lower-index neighbor; on a torus, shard 0's predecessor is the
    /// last shard via the wraparound links.
    out_lo: Vec<(u64, Ev)>,
    /// Events for the *successor* band (across the south boundary).
    out_hi: Vec<(u64, Ev)>,
}

impl ShardCtx {
    #[inline]
    fn is_remote(&self, node: usize) -> bool {
        node < self.lo || node >= self.hi
    }

    /// Outbox for the boundary crossed in direction `port`. Bands are
    /// whole rows, so every cross-shard link is vertical and the *port*
    /// names the edge unambiguously — north crosses to the predecessor
    /// band, south to the successor. (Classifying by node index would
    /// misroute torus wrap traffic: shard 0's north-wrap peer has the
    /// numerically highest ids but belongs to the predecessor edge.)
    #[inline]
    fn outbox(&mut self, port: usize) -> &mut Vec<(u64, Ev)> {
        debug_assert!(port == PORT_N || port == PORT_S, "cross-shard links are vertical");
        if port == PORT_N {
            &mut self.out_lo
        } else {
            &mut self.out_hi
        }
    }
}

/// One run of the event loop over a prepared workspace.
struct Engine<'a> {
    cfg: MeshConfig,
    vcs: usize,
    /// Buffers per node (`NPORTS * vcs`).
    stride: usize,
    /// Ring size: `max(link_delay, router_delay) + 2` rounded up to a
    /// power of two — every wakeup an enabling event can schedule lies
    /// within this horizon, and slot lookup is `& (wheel - 1)`.
    wheel: u64,
    /// Slab slots per buffer: `buffer_flits.next_power_of_two()`.
    cap: usize,
    ws: &'a mut Workspace,
    remaining: usize,
    /// Sharded-mode extension (`None` on the serial path).
    shard: Option<&'a mut ShardCtx>,
}

impl Engine<'_> {
    /// Head flit of buffer `b`, if any (a copy — flits are small).
    #[inline]
    fn bfront(&self, b: usize) -> Option<Flit> {
        if self.ws.blen[b] == 0 {
            return None;
        }
        Some(self.ws.slab[b * self.cap + (self.ws.bhead[b] as usize & (self.cap - 1))])
    }

    /// Appends `f` to buffer `b` (capacity is the caller's invariant).
    #[inline]
    fn bpush(&mut self, b: usize, f: Flit) {
        debug_assert!((self.ws.blen[b] as usize) < self.cap);
        let i = (self.ws.bhead[b] + self.ws.blen[b]) as usize & (self.cap - 1);
        self.ws.slab[b * self.cap + i] = f;
        self.ws.blen[b] += 1;
    }

    /// Runs the event loop from `clock` (the last processed cycle, `None`
    /// before the first) until `goal` is met, and returns the new clock.
    ///
    /// The loop never stops *inside* a cycle — only between event times —
    /// so a paused engine resumes exactly where a straight-through run
    /// would be: `advance(Before(c))` then `advance(Drain)` is
    /// cycle-identical to `advance(Drain)` alone, provided any events
    /// added in between lie at or beyond `c`. That property is what lets
    /// the closed-loop engine ([`ClosedLoop`]) interleave out-of-band
    /// injections with simulation.
    ///
    /// # Errors
    ///
    /// [`EngineError::Wedged`] (with the human-readable report) if the
    /// goal is `Drain` or `Deliver` and the event queues run dry (or the
    /// step guard trips) first.
    fn advance(&mut self, mut clock: Option<u64>, goal: Goal) -> Result<Option<u64>, EngineError> {
        let mut guard: u64 = 0;
        let guard_limit = 200_000_000;
        loop {
            match goal {
                Goal::Drain if self.remaining == 0 => return Ok(clock),
                Goal::Deliver(w) if self.ws.worms[w as usize].delivered.is_some() => {
                    return Ok(clock);
                }
                _ => {}
            }
            let t = match clock {
                Some(c) => self.next_time(c),
                None => self.first_time(),
            };
            let t = match t {
                Some(t) => t,
                None if matches!(goal, Goal::Before(_)) => return Ok(clock),
                None => {
                    return Err(EngineError::Wedged {
                        report: self.wedge_report(clock.unwrap_or(0)),
                    });
                }
            };
            if let Goal::Before(cut) = goal {
                if t >= cut {
                    return Ok(clock);
                }
            }
            guard += 1;
            if guard >= guard_limit {
                return Err(EngineError::Wedged {
                    report: format!(
                        "flit simulation exceeded {guard_limit} steps\n{}",
                        self.wedge_report(t)
                    ),
                });
            }
            self.drain_ni(t);
            self.land_arrivals(t);
            self.promote_ring(t);
            self.scan(t);
            clock = Some(t);
        }
    }

    /// Promotes cycle `t`'s scheduled ring wakeups to dirty bits — the
    /// step between landing arrivals and the allocation sweep.
    #[inline]
    fn promote_ring(&mut self, t: u64) {
        let slot = (t & (self.wheel - 1)) as usize;
        let Workspace { ring, dirty, .. } = &mut *self.ws;
        for o in ring[slot].drain(..) {
            dirty[o as usize / 64] |= 1 << (o % 64);
        }
    }

    /// Schedules output `o` for a visit at future cycle `at`.
    #[inline]
    fn mark_at(&mut self, at: u64, o: u32) {
        self.ws.ring[(at & (self.wheel - 1)) as usize].push(o);
    }

    /// Output port requested by `f` (O(1) via the hop cursor; the class
    /// bits above the port code are masked off).
    #[inline]
    fn flit_port(&self, f: &Flit) -> usize {
        (self.ws.routes[f.hop as usize] & HOP_PORT_MASK) as usize
    }

    /// The router and input port fed by `node`'s output `port`. The wrap
    /// arms only ever fire on a torus — a mesh route never walks off an
    /// edge.
    fn downstream(&self, node: usize, port: usize) -> (usize, usize) {
        let w = self.cfg.shape.width() as usize;
        let nodes = self.cfg.shape.nodes();
        match port {
            PORT_E => (if (node + 1).is_multiple_of(w) { node + 1 - w } else { node + 1 }, PORT_W),
            PORT_W => (if node.is_multiple_of(w) { node + w - 1 } else { node - 1 }, PORT_E),
            PORT_S => (if node + w >= nodes { node + w - nodes } else { node + w }, PORT_N),
            PORT_N => (if node < w { node + nodes - w } else { node - w }, PORT_S),
            _ => unreachable!("ejection has no downstream router"),
        }
    }

    /// Registers `flit` (the new head of `node`'s buffer `buf`) with the
    /// output it requests and marks that output dirty; returns the
    /// output's global index. If the flit is still paying its router
    /// charge, the output is also scheduled for a visit when the charge
    /// completes.
    fn register(&mut self, node: usize, buf: usize, flit: Flit, t: u64) -> u32 {
        let out = self.flit_port(&flit);
        let o = node * NPORTS + out;
        let base = o * self.stride;
        let len = self.ws.req_len[o] as usize;
        let buf = buf as u32;
        // Sorted insert by linear scan — queues hold at most `stride`
        // (tiny) entries, and the common case is "already present".
        let mut pos = len;
        let mut present = false;
        for i in 0..len {
            let cur = self.ws.req[base + i];
            if cur >= buf {
                present = cur == buf;
                pos = i;
                break;
            }
        }
        if !present {
            self.ws.req.copy_within(base + pos..base + len, base + pos + 1);
            self.ws.req[base + pos] = buf;
            self.ws.req_len[o] = (len + 1) as u8;
        }
        self.ws.dirty[o / 64] |= 1 << (o % 64);
        if flit.ready > t {
            self.mark_at(flit.ready, o as u32);
        }
        o as u32
    }

    /// Appends `flit` to an input buffer, registering a request if it
    /// became head-of-buffer.
    fn push_buffer(&mut self, node: usize, buf: usize, flit: Flit, t: u64) {
        let b = node * self.stride + buf;
        self.bpush(b, flit);
        if self.ws.blen[b] == 1 {
            self.register(node, buf, flit, t);
        }
    }

    /// Moves NI flits whose entry time has arrived into the injection
    /// buffers, as far as capacity allows. Flits held back by a full
    /// buffer are pulled in directly when a pop frees a slot
    /// ([`move_flit`](Engine::move_flit)); their observable timing (head
    /// router charge, head-of-buffer exposure) is fixed by the entry
    /// times precomputed in [`FlitLevel::run`], not by when they
    /// physically occupy a slot here.
    fn drain_ni(&mut self, t: u64) {
        let inj_buf = PORT_LOCAL * self.vcs;
        while let Some(&Reverse((entry, node))) = self.ws.ni_events.peek() {
            if entry > t {
                break;
            }
            self.ws.ni_events.pop();
            let node = node as usize;
            let b = node * self.stride + inj_buf;
            while (self.ws.blen[b] as usize) < self.cap {
                match self.ws.pending[node].front() {
                    Some(&(e, flit)) if e <= t => {
                        self.ws.pending[node].pop_front();
                        self.push_buffer(node, inj_buf, flit, t);
                    }
                    _ => break,
                }
            }
            if let Some(&(e, _)) = self.ws.pending[node].front() {
                if e > t && self.ws.ni_sched[node] != e {
                    self.ws.ni_events.push(Reverse((e, node as u32)));
                    self.ws.ni_sched[node] = e;
                }
            }
        }
    }

    /// Lands flits whose channel traversal completed (the reference's
    /// phase 1). Returns whether anything landed.
    fn land_arrivals(&mut self, t: u64) -> bool {
        let mut landed = false;
        while let Some(&(at, _)) = self.ws.due.front() {
            if at > t {
                break;
            }
            let (_, mut bucket) = self.ws.due.pop_front().unwrap();
            for Landing { node, buf, mut flit } in bucket.drain(..) {
                let (node, buf) = (node as usize, buf as usize);
                flit.ready = if flit.kind == Kind::Head { t + self.cfg.router_delay } else { t };
                let b = node * self.stride + buf;
                // Remote-fed buffers are accounted on the upstream side
                // (its `occ` mirror); the local `reserved` stays zero.
                if !self.shard.as_ref().is_some_and(|c| c.remote_fed[b]) {
                    self.ws.reserved[b] -= 1;
                }
                self.push_buffer(node, buf, flit, t);
            }
            self.ws.spare.push(bucket);
            landed = true;
        }
        landed
    }

    /// One cycle of switch + VC allocation over the outputs with work
    /// (the reference's phase 2). Returns whether any flit moved.
    ///
    /// The word is re-read after every visit, so a visit that sets a bit
    /// *ahead* of the scan position (a pop exposing a new head) joins this
    /// same cycle, while one at or behind it waits for the next — the
    /// in-cycle semantics of the reference's sequential pass.
    fn scan(&mut self, t: u64) -> bool {
        let mut moved = false;
        for wi in 0..self.ws.dirty.len() {
            let mut mask = !0u64;
            loop {
                let w = self.ws.dirty[wi] & mask;
                if w == 0 {
                    break;
                }
                let bit = w.trailing_zeros();
                moved |= self.visit_output(wi * 64 + bit as usize, t);
                mask = if bit == 63 { 0 } else { !((1u64 << (bit + 1)) - 1) };
            }
        }
        moved
    }

    /// Visits one output at cycle `t`: validates its request queue, runs
    /// the reference's round-robin selection over the ready candidates,
    /// and moves at most one flit. Visits are only triggered by enabling
    /// events, and a visit that moves nothing changes no model state, so
    /// extra visits are harmless — only a *missing* visit could diverge
    /// from the reference, and every enabling transition schedules one:
    /// - a flit becomes head-of-buffer or its router charge completes
    ///   ([`register`](Engine::register)),
    /// - the channel frees or a VC is released / an owner established
    ///   (the move that occupied it marks `busy_until`),
    /// - downstream capacity frees (the downstream pop marks the feeder).
    fn visit_output(&mut self, o: usize, t: u64) -> bool {
        self.ws.dirty[o / 64] &= !(1 << (o % 64));
        let rlen = self.ws.req_len[o] as usize;
        if rlen == 0 {
            return false;
        }
        if self.ws.busy_until[o] > t {
            return false; // the occupying move scheduled the expiry visit
        }
        let node = o / NPORTS;
        let out = o % NPORTS;
        let base = node * self.stride;
        let rbase = o * self.stride;
        let mut cand = std::mem::take(&mut self.ws.cand);
        cand.clear();
        // One pass: drop stale entries (buffers whose current head no
        // longer requests `o`) in place while collecting the ready
        // candidates with a copy of their head flit.
        let mut keep = 0;
        for i in 0..rlen {
            let buf = self.ws.req[rbase + i];
            if let Some(f) = self.bfront(base + buf as usize) {
                if (self.ws.routes[f.hop as usize] & HOP_PORT_MASK) as usize == out {
                    self.ws.req[rbase + keep] = buf;
                    keep += 1;
                    if f.ready <= t {
                        cand.push((buf, f));
                    }
                }
            }
        }
        self.ws.req_len[o] = keep as u8;

        // Select (buffer, output vc): body/tail flits use their worm's
        // owned VC; heads need a free VC (and downstream space).
        // Round-robin over candidates for fairness. The reduction of the
        // free-running round-robin counter costs one division, paid only
        // when there is an actual contest (`ncand > 1`).
        let mut choice: Option<(usize, usize, Flit)> = None;
        let ncand = cand.len();
        let start = if ncand > 1 { self.ws.rr[o] % ncand } else { 0 };
        for k in 0..ncand {
            let mut idx = start + k;
            if idx >= ncand {
                idx -= ncand;
            }
            let (buf, f) = cand[idx];
            let ovc = match f.kind {
                Kind::Head => {
                    let class = (self.ws.routes[f.hop as usize] >> HOP_PORT_BITS) as usize;
                    match self.free_vc(o, class) {
                        Some(vc) => vc,
                        None => continue,
                    }
                }
                _ => match self.vc_of(o, f.worm) {
                    Some(vc) => vc,
                    None => continue, // owner not established yet
                },
            };
            // Capacity check downstream (ejection always sinks). A remote
            // downstream buffer is checked against this shard's `occ`
            // mirror, which tracks the same `blen + reserved` sum via
            // boundary forwards and received pop credits.
            if out != PORT_LOCAL {
                let (dn, dp) = self.downstream(node, out);
                let dbuf = dn * self.stride + dp * self.vcs + ovc;
                let occupancy = match &self.shard {
                    Some(ctx) if ctx.is_remote(dn) => ctx.occ[dbuf],
                    _ => self.ws.blen[dbuf] + self.ws.reserved[dbuf],
                };
                if occupancy as usize >= self.cfg.buffer_flits {
                    continue;
                }
            }
            choice = Some((buf as usize, ovc, f));
            break;
        }
        self.ws.cand = cand;
        match choice {
            Some((buf, ovc, f)) => {
                self.move_flit(o, buf, ovc, f, t);
                true
            }
            None => false,
        }
    }

    /// Moves `flit`, the (already validated) head of `buf`, through
    /// output `o` on VC `ovc`.
    fn move_flit(&mut self, o: usize, buf: usize, ovc: usize, flit: Flit, t: u64) {
        let node = o / NPORTS;
        let out = o % NPORTS;
        // Drop the head slot; `flit` is the copy the visit already took.
        let b = node * self.stride + buf;
        self.ws.bhead[b] = ((self.ws.bhead[b] as usize + 1) & (self.cap - 1)) as u32;
        self.ws.blen[b] -= 1;
        let link = self.cfg.link_delay;
        self.ws.busy_until[o] = t + link;
        self.ws.busy_ticks[o] += link;
        self.ws.rr[o] = self.ws.rr[o].wrapping_add(1);
        // Revisit when the channel frees: that is also when a released VC
        // or newly established owner becomes usable, and when the losing
        // candidates of this cycle's round-robin get their next shot.
        self.mark_at(t + link, o as u32);
        // The pop freed one slot in this input buffer: the upstream output
        // feeding it may have been capacity-blocked. Within the reference's
        // pass the freed slot is visible to outputs scanned later the same
        // cycle — the dirty bit joins this sweep if the feeder lies ahead
        // of `o`; at or behind, a next-cycle wakeup stands in for the
        // reference's rescan (all later enablings schedule their own).
        let in_port = self.ws.port_of[buf] as usize;
        if in_port != PORT_LOCAL {
            let (fnode, fport) = self.downstream(node, in_port);
            let f = (fnode * NPORTS + fport) as u32;
            let remote = self.shard.as_ref().is_some_and(|c| c.is_remote(fnode));
            if remote {
                // The feeder output lives in a neighbor shard: ship the
                // pop as a credit event instead of touching its state.
                // The *label* follows the serial sweep's numeric rule — a
                // numerically lower feeder index `f < o` gets a next-cycle
                // wakeup (label `t + 1`), a higher one same-cycle sweep
                // visibility (label `t`, applied before the receiver scans
                // `t`). The *mailbox* follows the edge (the input port),
                // which differs from the numeric order only on torus wrap
                // links, where it keeps label-`t` credits flowing from
                // numerically lower shards to higher ones.
                let popped = (node * self.stride + buf) as u32;
                let ctx = self.shard.as_mut().expect("checked above");
                let at = if fnode < ctx.lo { t + 1 } else { t };
                ctx.outbox(in_port).push((at, Ev::Pop { out: f, buf: popped }));
            } else {
                self.ws.dirty[f as usize / 64] |= 1 << (f % 64);
                if f as usize <= o {
                    self.mark_at(t + 1, f);
                }
            }
        } else {
            // Injection pop: pull the next NI flit into the freed slot if
            // its entry time has passed (the capped stand-in for the
            // reference's unbounded injection buffer).
            let b = node * self.stride + buf;
            match self.ws.pending[node].front() {
                Some(&(e, nf)) if e <= t => {
                    self.ws.pending[node].pop_front();
                    self.bpush(b, nf);
                }
                Some(&(e, _)) if self.ws.ni_sched[node] != e => {
                    self.ws.ni_events.push(Reverse((e, node as u32)));
                    self.ws.ni_sched[node] = e;
                }
                _ => {}
            }
        }
        match flit.kind {
            Kind::Head => {
                self.ws.owners[o * self.vcs + ovc] = Some(flit.worm);
                self.ws.vc_rr[o] = if ovc + 1 == self.vcs { 0 } else { ovc + 1 };
            }
            Kind::Tail => self.ws.owners[o * self.vcs + ovc] = None,
            Kind::Body => {}
        }
        // The pop may expose a new head: register its request. If its
        // output lies ahead of the sweep position the scan's word re-read
        // picks it up this same cycle (as the reference's sequential pass
        // would); the ring mark covers the at-or-behind case next cycle.
        if let Some(next_head) = self.bfront(node * self.stride + buf) {
            let o2 = self.register(node, buf, next_head, t);
            if (o2 as usize) < o {
                self.mark_at(t + 1, o2);
            }
        }
        if out == PORT_LOCAL {
            let worm = &mut self.ws.worms[flit.worm as usize];
            worm.ejected += 1;
            if flit.kind == Kind::Head {
                worm.head_hop = flit.hop;
            }
            if flit.kind == Kind::Tail {
                worm.delivered = Some(t + link);
                self.remaining -= 1;
            }
        } else {
            let (dn, dp) = self.downstream(node, out);
            let dbuf = dp * self.vcs + ovc;
            let mut forwarded = flit;
            forwarded.hop += 1;
            if forwarded.kind == Kind::Head {
                self.ws.worms[flit.worm as usize].head_hop = forwarded.hop;
            }
            let landing = Landing { node: dn as u32, buf: dbuf as u32, flit: forwarded };
            let at = t + link;
            let remote = self.shard.as_ref().is_some_and(|c| c.is_remote(dn));
            if remote {
                // Boundary forward: reserve in the capacity mirror and
                // ship the landing to the owning shard (`link_delay >= 1`
                // keeps the label strictly ahead of the receiver's safe
                // horizon in both directions).
                let slot = dn * self.stride + dbuf;
                let ctx = self.shard.as_mut().expect("checked above");
                ctx.occ[slot] += 1;
                ctx.outbox(out).push((at, Ev::Landing(landing)));
            } else {
                self.ws.reserved[dn * self.stride + dbuf] += 1;
                match self.ws.due.back_mut() {
                    Some(back) if back.0 == at => back.1.push(landing),
                    _ => {
                        debug_assert!(self.ws.due.back().is_none_or(|b| b.0 < at));
                        let mut bucket = self.ws.spare.pop().unwrap_or_default();
                        bucket.clear();
                        bucket.push(landing);
                        self.ws.due.push_back((at, bucket));
                    }
                }
            }
        }
    }

    /// A free output VC at `o` for a head of virtual-channel class
    /// `class`, searched round-robin inside the class partition
    /// `[class·v/n, (class+1)·v/n)` — heads may only allocate VCs of
    /// their route hop's class, which is what makes each class's channel
    /// dependencies acyclic (dateline escape on a torus, one dimension
    /// order per class under adaptive routing). With a single class the
    /// partition is the whole VC range and this reduces exactly to the
    /// historical search.
    fn free_vc(&self, o: usize, class: usize) -> Option<usize> {
        let v = self.vcs;
        let n = self.cfg.vc_classes();
        let (lo, hi) = (class * v / n, (class + 1) * v / n);
        let size = hi - lo;
        let start = lo + self.ws.vc_rr[o] % size;
        (0..size)
            .map(|i| {
                let vc = start + i;
                if vc >= hi {
                    vc - size
                } else {
                    vc
                }
            })
            .find(|&vc| self.ws.owners[o * v + vc].is_none())
    }

    /// The output VC at `o` owned by `worm`, if any.
    fn vc_of(&self, o: usize, worm: u32) -> Option<usize> {
        let v = self.vcs;
        (0..v).find(|&vc| self.ws.owners[o * v + vc] == Some(worm))
    }

    /// The first cycle with any work, before any cycle has been processed:
    /// nothing is in flight and the wheel is empty, so only the NI entry
    /// heap can hold events. (The batch loop formerly started at the first
    /// *injection* time; the cycles between injection and NI entry have no
    /// work, and a visit with no work changes no state, so starting at the
    /// first entry is cycle-identical.)
    fn first_time(&self) -> Option<u64> {
        debug_assert!(self.ws.due.is_empty(), "first_time called with flits in flight");
        self.ws.ni_events.peek().map(|&Reverse((e, _))| e)
    }

    /// Earliest future time with scheduled work: the nearest nonempty ring
    /// slot (all wakeups are at most `wheel` cycles out), the next flit
    /// arrival bucket, or the next NI availability.
    fn next_time(&self, t: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        for j in 1..=self.wheel {
            if !self.ws.ring[((t + j) & (self.wheel - 1)) as usize].is_empty() {
                next = Some(t + j);
                break;
            }
        }
        if let Some(&(at, _)) = self.ws.due.front() {
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        if let Some(&Reverse((avail, _))) = self.ws.ni_events.peek() {
            next = Some(next.map_or(avail, |n| n.min(avail)));
        }
        next
    }

    /// Human-readable account of every undelivered worm, for wedge panics.
    fn wedge_report(&self, t: u64) -> String {
        let mut lines = vec![format!(
            "flit simulation wedged at t={t} with {} worms undelivered:",
            self.remaining
        )];
        let undelivered: Vec<&Worm> =
            self.ws.worms.iter().filter(|w| w.delivered.is_none()).collect();
        for worm in undelivered.iter().take(16) {
            lines.push(format!(
                "  worm {} ({}->{}): {}/{} flits ejected, head at hop {}/{}",
                worm.msg.id,
                worm.msg.src.index(),
                worm.msg.dst.index(),
                worm.ejected,
                worm.flits,
                worm.head_hop - worm.route_off,
                worm.route_len - 1,
            ));
        }
        if undelivered.len() > 16 {
            lines.push(format!("  ... and {} more", undelivered.len() - 16));
        }
        lines.join("\n")
    }
}

/// One snapshot of the event loop: the workspace plus where the loop
/// stands in time. Cloning a `LoopState` is what makes speculation cheap —
/// every field of [`Workspace`] is a flat vector or small heap, so the
/// snapshot is a handful of memcpys sized by the mesh, not by history.
#[derive(Clone, Debug)]
struct LoopState {
    ws: Workspace,
    /// Last processed cycle (`None` before the first).
    clock: Option<u64>,
    remaining: usize,
    /// Count of leading worms whose values are final in this state: every
    /// worm below the watermark was delivered on a committed (or promoted)
    /// trajectory, so no later traffic can touch it. The snapshot refresh
    /// skips them — that is what keeps a send O(mesh + in-flight) instead
    /// of O(history).
    finalized: usize,
}

impl LoopState {
    /// An empty state, filled on first [`LoopState::sync_from`].
    fn empty() -> LoopState {
        LoopState { ws: Workspace::default(), clock: None, remaining: 0, finalized: 0 }
    }

    /// Makes `self` a snapshot of `src`, reusing allocations (see
    /// [`Workspace::sync_from`]). `self` must be an earlier snapshot of
    /// the same run (or empty), so `self.finalized <= src.finalized`.
    fn sync_from(&mut self, src: &LoopState) {
        debug_assert!(self.finalized <= src.finalized);
        self.ws.sync_from(&src.ws, self.finalized);
        self.clock = src.clock;
        self.remaining = src.remaining;
        self.finalized = src.finalized;
    }
}

/// The incremental-injection flit engine core: accepts one message at a
/// time (nondecreasing injection order, validated by the caller) and
/// reports each message's delivery cycle immediately, while guaranteeing
/// that the *final* log is cycle-identical to a batch
/// [`FlitLevel::run`] over the same injection schedule.
///
/// # Committed and speculative state
///
/// The flit router is not causal the way the recurrence model is: a later
/// injection can retroactively change an earlier message's delivery
/// (round-robin allocation, buffer contention). So an exact synchronous
/// answer to "when will this message arrive" is impossible before the
/// future traffic is known. The engine keeps two copies of the loop state:
///
/// - **committed** — has processed only cycles that are already *final*:
///   every cycle strictly below `inject + hop_latency` of the latest
///   injection (no future flit can enter a network interface earlier than
///   that, and injections are nondecreasing, so nothing can perturb those
///   cycles). The committed trajectory is therefore exactly the batch
///   trajectory, which is what makes the final log identical.
/// - **speculative** — a clone of the committed state run ahead far enough
///   to deliver the newest message, *assuming no further traffic*. Its
///   delivery cycle is the value [`send`](ClosedLoop::send) returns: the
///   engine's best feedback given everything injected so far.
///
/// On the next send, the speculation is **promoted** to committed for free
/// when it never crossed the new safe horizon (the common case under
/// bursty traffic: speculation barely runs ahead), and discarded otherwise
/// — the committed state then re-advances, redoing only the cycles the
/// speculation guessed at. Either way no cycle is ever committed until it
/// is final.
#[derive(Debug)]
pub(crate) struct ClosedLoop {
    cfg: MeshConfig,
    committed: LoopState,
    spec: Option<LoopState>,
    /// Per-node prefix max of NI entry times — the running counterpart of
    /// the batch model's entry-time rewrite over each pending queue.
    entered: Vec<u64>,
}

impl ClosedLoop {
    /// # Errors
    ///
    /// [`EngineError::UnsupportedTopology`] on an undersized
    /// virtual-channel budget (see [`FlitLevel::try_new`]).
    pub(crate) fn try_new(cfg: MeshConfig) -> Result<Self, EngineError> {
        EngineError::check_flit(&cfg)?;
        let mut ws = Workspace::default();
        let wheel = (cfg.link_delay.max(cfg.router_delay) + 2).next_power_of_two();
        ws.reset(
            cfg.shape.nodes(),
            cfg.virtual_channels,
            wheel as usize,
            cfg.buffer_flits.next_power_of_two(),
        );
        Ok(ClosedLoop {
            cfg,
            committed: LoopState { ws, clock: None, remaining: 0, finalized: 0 },
            spec: None,
            entered: vec![0; cfg.shape.nodes()],
        })
    }

    /// Runs one state's event loop toward `goal`.
    fn advance(cfg: &MeshConfig, st: &mut LoopState, goal: Goal) -> Result<(), EngineError> {
        let vcs = cfg.virtual_channels;
        let wheel = (cfg.link_delay.max(cfg.router_delay) + 2).next_power_of_two();
        let mut engine = Engine {
            cfg: *cfg,
            vcs,
            stride: NPORTS * vcs,
            wheel,
            cap: cfg.buffer_flits.next_power_of_two(),
            ws: &mut st.ws,
            remaining: st.remaining,
            shard: None,
        };
        st.clock = engine.advance(st.clock, goal)?;
        st.remaining = engine.remaining;
        Ok(())
    }

    /// Builds the message's worm and queues its flits at the source NI of
    /// the committed state, mirroring the batch model's construction: the
    /// head becomes available `hop_latency` after injection, the body
    /// follows at one flit per `link_delay`, and entry times are the
    /// running per-node prefix max. Entry times are always at or beyond
    /// the safe horizon, so appending never touches a committed cycle.
    fn add_worm(&mut self, m: NetMessage) -> u32 {
        let cfg = self.cfg;
        let ws = &mut self.committed.ws;
        let w = ws.worms.len() as u32;
        let route_off = ws.routes.len() as u32;
        build_route(&cfg, m.src, m.dst, &mut ws.routes);
        let flits = cfg.flits_for(m.bytes);
        ws.worms.push(Worm {
            msg: m,
            route_off,
            route_len: ws.routes.len() as u32 - route_off,
            flits,
            ejected: 0,
            head_hop: route_off,
            delivered: None,
        });
        let src = m.src.index();
        let base = m.inject.ticks() + cfg.hop_latency();
        let was_empty = ws.pending[src].is_empty();
        for j in 0..flits {
            let kind = if j == 0 {
                Kind::Head
            } else if j == flits - 1 {
                Kind::Tail
            } else {
                Kind::Body
            };
            let avail = base + j * cfg.link_delay;
            let entry = self.entered[src].max(avail);
            self.entered[src] = entry;
            // Mirrors the batch model's entry-time rewrite: heads are
            // charged their router delay from the entry cycle, while body
            // and tail flits keep their raw availability.
            let ready = if kind == Kind::Head { entry + cfg.router_delay } else { avail };
            ws.pending[src].push_back((entry, Flit { worm: w, kind, ready, hop: route_off }));
        }
        // A nonempty queue already has its front's NI event scheduled (the
        // standing invariant of `drain_ni`/`move_flit`); an empty one needs
        // the new front announced.
        if was_empty {
            let e = ws.pending[src].front().expect("flits just queued").0;
            ws.ni_events.push(Reverse((e, src as u32)));
            ws.ni_sched[src] = e;
        }
        self.committed.remaining += 1;
        w
    }

    /// Injects `m` (nondecreasing injection order is the caller's
    /// invariant) and returns the cycle its tail flit reaches the
    /// destination NI, given all traffic injected so far.
    ///
    /// # Errors
    ///
    /// [`EngineError::Wedged`] if the router deadlocks before the answer
    /// exists.
    pub(crate) fn send(&mut self, m: NetMessage) -> Result<u64, EngineError> {
        // Cycles strictly below the horizon can no longer change: this
        // message's first flit cannot enter an NI before it, and neither
        // can any later message's.
        let horizon = m.inject.ticks() + self.cfg.hop_latency();
        let mut scratch = match self.spec.take() {
            // The speculation never processed a non-final cycle:
            // everything it did would have been redone identically, so it
            // *becomes* the committed state; the old committed state is
            // recycled as the next speculation's buffer.
            Some(spec) if spec.clock.is_none_or(|c| c < horizon) => {
                std::mem::replace(&mut self.committed, spec)
            }
            // Discarded speculation: its buffers are recycled.
            Some(spec) => spec,
            None => LoopState::empty(),
        };
        Self::advance(&self.cfg, &mut self.committed, Goal::Before(horizon))?;
        // Committed deliveries are final — advance the watermark the
        // snapshot refresh skips below.
        while self.committed.finalized < self.committed.ws.worms.len()
            && self.committed.ws.worms[self.committed.finalized].delivered.is_some()
        {
            self.committed.finalized += 1;
        }
        let w = self.add_worm(m);
        scratch.sync_from(&self.committed);
        Self::advance(&self.cfg, &mut scratch, Goal::Deliver(w))?;
        let delivered = scratch.ws.worms[w as usize].delivered.expect("Deliver goal reached");
        self.spec = Some(scratch);
        Ok(delivered)
    }

    /// Finishes the run: promotes the speculation (with no further sends it
    /// is unconditionally the true trajectory), drains every worm, emits
    /// one record per message in injection order, and hands per-channel
    /// utilization to the sink — byte-identical to what a batch
    /// [`FlitLevel`] produces for the same schedule.
    ///
    /// With `sim_jobs > 1` the drain — the only whole-network advance left,
    /// and the bulk of the remaining work on a large mesh — runs on the
    /// sharded wavefront engine after splitting the committed mid-run
    /// state; per-send answers were already returned and are untouched, so
    /// `sim_jobs` cannot perturb them, and the drain itself is
    /// cycle-identical.
    ///
    /// # Panics
    ///
    /// Panics if the drain wedges (the [`EngineError::Wedged`] display) —
    /// the sink-returning `finish` contract has no error channel.
    pub(crate) fn finish_into_jobs<S: LogSink>(mut self, sink: &mut S, sim_jobs: usize) {
        if let Some(spec) = self.spec.take() {
            self.committed = spec;
        }
        let shards = shard::plan(sim_jobs, self.cfg.shape.height() as usize);
        let result = if shards > 1 && self.committed.remaining > 0 {
            let mut team = None;
            shard::drain_sharded(
                &self.cfg,
                &mut self.committed.ws,
                self.committed.clock,
                self.committed.remaining,
                shards,
                &mut team,
            )
        } else {
            Self::advance(&self.cfg, &mut self.committed, Goal::Drain)
        };
        if let Err(e) = result {
            panic!("{e}");
        }
        let cfg = self.cfg;
        let mut first_inject: Option<u64> = None;
        let mut last_delivery = 0u64;
        for worm in &self.committed.ws.worms {
            let delivered = worm.delivered.expect("all worms delivered");
            first_inject.get_or_insert(worm.msg.inject.ticks());
            last_delivery = last_delivery.max(delivered);
            let hops = cfg.shape.hop_distance(worm.msg.src, worm.msg.dst);
            sink.record(MsgRecord {
                id: worm.msg.id,
                src: worm.msg.src,
                dst: worm.msg.dst,
                bytes: worm.msg.bytes,
                inject: worm.msg.inject.ticks(),
                delivered,
                hops,
                zero_load: cfg.zero_load_latency(worm.msg.bytes, hops),
            });
        }
        let span = match first_inject {
            Some(first) if last_delivery > first => (last_delivery - first) as f64,
            _ => 0.0,
        };
        let mut util = Vec::new();
        for node in 0..cfg.shape.nodes() {
            for port in 0..NPORTS {
                let busy = self.committed.ws.busy_ticks[node * NPORTS + port];
                if busy > 0 && span > 0.0 {
                    util.push((out_channel_id(node, port), busy as f64 / span));
                }
            }
        }
        sink.finish(util);
    }
}

#[cfg(test)]
mod tests {
    use commchar_des::SimTime;

    use super::*;
    use crate::{MeshModel, OnlineWormhole};

    fn msg(id: u64, src: u16, dst: u16, bytes: u32, inject: u64) -> NetMessage {
        NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject: SimTime::from_ticks(inject),
        }
    }

    #[test]
    fn zero_load_latency_matches_online_model() {
        let cfg = MeshConfig::new(4, 4);
        for (src, dst, bytes) in [(0u16, 15u16, 32u32), (3, 12, 8), (5, 6, 100)] {
            let m = vec![msg(0, src, dst, bytes, 0)];
            let flit = FlitLevel::new(cfg).simulate(&m);
            let online = OnlineWormhole::new(cfg).simulate(&m);
            assert_eq!(
                flit.records()[0].delivered,
                online.records()[0].delivered,
                "zero-load disagreement for {src}->{dst} ({bytes}B)"
            );
            assert_eq!(flit.records()[0].blocked(), 0);
        }
    }

    #[test]
    fn zero_load_unchanged_by_virtual_channels() {
        for vcs in [1, 2, 4] {
            let cfg = MeshConfig::new(4, 4).with_virtual_channels(vcs);
            let m = vec![msg(0, 0, 15, 64, 0)];
            let log = FlitLevel::new(cfg).simulate(&m);
            assert_eq!(log.records()[0].blocked(), 0, "vcs={vcs}");
        }
    }

    #[test]
    fn all_messages_delivered_under_contention() {
        for vcs in [1, 2] {
            let cfg = MeshConfig::new(4, 2).with_virtual_channels(vcs);
            let mut msgs = Vec::new();
            for i in 0..40u64 {
                msgs.push(msg(
                    i,
                    (i % 8) as u16,
                    ((i * 3 + 1) % 8) as u16,
                    16 + (i as u32 % 48),
                    i * 2,
                ));
            }
            let msgs: Vec<NetMessage> = msgs.into_iter().filter(|m| m.src != m.dst).collect();
            let log = FlitLevel::new(cfg).simulate(&msgs);
            assert_eq!(log.records().len(), msgs.len());
            log.check_invariants(cfg.shape).unwrap();
        }
    }

    #[test]
    fn hotspot_contention_is_visible() {
        let cfg = MeshConfig::new(4, 2);
        // Everyone hammers node 0 simultaneously.
        let msgs: Vec<NetMessage> = (1..8).map(|i| msg(i, i as u16, 0, 64, 0)).collect();
        let log = FlitLevel::new(cfg).simulate(&msgs);
        let blocked: u64 = log.records().iter().map(|r| r.blocked()).sum();
        assert!(blocked > 0, "hotspot must create contention");
    }

    #[test]
    fn virtual_channels_relieve_head_of_line_blocking() {
        // A long worm 0->3 blocks the row; a short message 1->2 arrives
        // once the worm firmly holds the channel. With 1 VC it must wait
        // for the worm's tail; with 4 VCs it interleaves on the physical
        // channel.
        let base = MeshConfig::new(4, 1).with_buffer_flits(2);
        let msgs = vec![msg(0, 0, 3, 512, 0), msg(1, 1, 2, 8, 20)];
        let lat = |vcs: usize| {
            let log = FlitLevel::new(base.with_virtual_channels(vcs)).simulate(&msgs);
            log.records().iter().find(|r| r.id == 1).unwrap().latency()
        };
        let one = lat(1);
        let four = lat(4);
        assert!(four < one, "VCs should cut the short message's latency: {four} vs {one}");
    }

    #[test]
    fn same_source_messages_serialize() {
        let cfg = MeshConfig::new(4, 1);
        let msgs = vec![msg(0, 0, 2, 64, 0), msg(1, 0, 3, 64, 0)];
        let log = FlitLevel::new(cfg).simulate(&msgs);
        let r0 = log.records().iter().find(|r| r.id == 0).unwrap();
        let r1 = log.records().iter().find(|r| r.id == 1).unwrap();
        assert!(r1.blocked() > 0 || r0.blocked() > 0);
    }

    #[test]
    fn utilization_bounded() {
        let cfg = MeshConfig::new(2, 2).with_virtual_channels(2);
        let msgs: Vec<NetMessage> = (0..20).map(|i| msg(i, 0, 3, 32, i * 5)).collect();
        let log = FlitLevel::new(cfg).simulate(&msgs);
        for &(_, u) in log.utilization() {
            assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u} out of range");
        }
    }

    #[test]
    fn repeated_batches_reuse_the_workspace() {
        let cfg = MeshConfig::new(4, 2).with_virtual_channels(2);
        let msgs: Vec<NetMessage> =
            (0..30).map(|i| msg(i, (i % 8) as u16, ((i * 5 + 2) % 8) as u16, 24, i * 3)).collect();
        let msgs: Vec<NetMessage> = msgs.into_iter().filter(|m| m.src != m.dst).collect();
        let mut model = FlitLevel::new(cfg);
        let a = model.simulate(&msgs);
        let b = model.simulate(&msgs);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.utilization(), b.utilization());
    }

    #[test]
    fn streaming_sink_sees_what_the_log_sees() {
        let cfg = MeshConfig::new(4, 2).with_virtual_channels(2);
        let msgs: Vec<NetMessage> = (0..60u64)
            .map(|i| msg(i, (i % 8) as u16, ((i * 3 + 1) % 8) as u16, 8 + (i % 40) as u32, i * 4))
            .filter(|m| m.src != m.dst)
            .collect();
        let log = FlitLevel::new(cfg).simulate(&msgs);
        let mut stream = FlitLevel::streaming(cfg);
        stream.run(&msgs);
        let s = stream.into_sink();
        assert_eq!(log.records().len() as u64, s.messages());
        assert_eq!(log.utilization(), s.utilization());
        let a = log.summary();
        let b = s.summary();
        assert_eq!(a.span, b.span);
        assert!((a.mean_latency - b.mean_latency).abs() < 1e-9);
        assert!((a.mean_blocked - b.mean_blocked).abs() < 1e-9);
        assert_eq!(s.spatial_counts(), log.spatial_counts(8));
    }
}
