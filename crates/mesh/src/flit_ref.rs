//! The retained cycle-loop flit router — the validation oracle for the
//! event-driven [`FlitLevel`](crate::FlitLevel).
//!
//! This is the original cycle-accurate implementation: it ticks one cycle
//! at a time and rescans every node × port × virtual-channel buffer per
//! cycle. That makes it easy to audit against the router microarchitecture
//! (every cycle's full state is visited in a fixed order) and hopelessly
//! slow for long runs — which is exactly the division of labour: the
//! event-driven [`FlitLevel`](crate::FlitLevel) is the production model,
//! and this reference pins its semantics. The randomized equivalence
//! suite (`tests/equivalence.rs`) asserts the two produce byte-identical
//! [`NetLog`]s across mesh shapes, virtual-channel counts and seeds.
//!
//! Keep changes to this file semantic-free: any intentional change to the
//! router model must land in both implementations in the same commit, or
//! the equivalence suite fails.

use std::collections::VecDeque;

use crate::engine::EngineError;
use crate::topology::Dir;
use crate::{
    MeshConfig, MeshModel, MsgRecord, NetLog, NetMessage, NodeId, HOP_PORT_BITS, HOP_PORT_MASK,
};

const PORT_E: usize = 0;
const PORT_W: usize = 1;
const PORT_S: usize = 2;
const PORT_N: usize = 3;
const PORT_LOCAL: usize = 4; // injection (input) / ejection (output)
const NPORTS: usize = 5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Head,
    Body,
    Tail,
}

#[derive(Clone, Copy, Debug)]
struct Flit {
    worm: u32,
    kind: Kind,
    /// Earliest cycle this flit may move (router charge for heads).
    ready: u64,
}

#[derive(Debug)]
struct OutPort {
    /// Owner worm per virtual channel.
    owners: Vec<Option<u32>>,
    /// Physical-channel occupancy: one flit per `link_delay`.
    busy_until: u64,
    /// Round-robin pointer over candidate (input buffer) indices.
    rr: usize,
    /// Round-robin pointer for VC allocation.
    vc_rr: usize,
    busy_ticks: u64,
}

impl OutPort {
    fn new(vcs: usize) -> Self {
        OutPort { owners: vec![None; vcs], busy_until: 0, rr: 0, vc_rr: 0, busy_ticks: 0 }
    }

    /// The output VC owned by `worm`, if any.
    fn vc_of(&self, worm: u32) -> Option<usize> {
        self.owners.iter().position(|&o| o == Some(worm))
    }

    /// A free output VC for a head of virtual-channel class `class`,
    /// searched round-robin inside the class partition
    /// `[class·v/classes, (class+1)·v/classes)` — the dateline/escape
    /// discipline (see the event-driven engine's `free_vc`). With one
    /// class this is the whole VC range, the historical search.
    fn free_vc(&self, class: usize, classes: usize) -> Option<usize> {
        let v = self.owners.len();
        let (lo, hi) = (class * v / classes, (class + 1) * v / classes);
        let size = hi - lo;
        let start = lo + self.vc_rr % size;
        (0..size)
            .map(|i| {
                let vc = start + i;
                if vc >= hi {
                    vc - size
                } else {
                    vc
                }
            })
            .find(|&vc| self.owners[vc].is_none())
    }
}

#[derive(Debug)]
struct Worm {
    msg: NetMessage,
    /// `(node index, output port, VC class)` in visit order.
    route: Vec<(usize, usize, usize)>,
    flits: u64,
    delivered: Option<u64>,
}

/// The original cycle-loop router model, retained as the oracle for the
/// event-driven [`FlitLevel`](crate::FlitLevel). Identical router
/// microarchitecture, O(network) work per simulated cycle.
///
/// # Example
///
/// ```
/// use commchar_mesh::{FlitCycleReference, MeshConfig, MeshModel, NetMessage, NodeId};
/// use commchar_des::SimTime;
///
/// let msgs = vec![NetMessage {
///     id: 0, src: NodeId(0), dst: NodeId(3), bytes: 16, inject: SimTime::ZERO,
/// }];
/// let log = FlitCycleReference::new(MeshConfig::new(2, 2)).simulate(&msgs);
/// assert_eq!(log.records().len(), 1);
/// ```
#[derive(Debug)]
pub struct FlitCycleReference {
    cfg: MeshConfig,
}

impl FlitCycleReference {
    /// Creates a model with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration lacks the virtual channels its
    /// (topology × routing) pair needs for deadlock freedom — use
    /// [`FlitCycleReference::try_new`] for the typed error.
    pub fn new(cfg: MeshConfig) -> Self {
        match FlitCycleReference::try_new(cfg) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`new`](FlitCycleReference::new), surfacing an undersized
    /// virtual-channel budget as
    /// [`EngineError::UnsupportedTopology`] instead of a panic.
    pub fn try_new(cfg: MeshConfig) -> Result<Self, EngineError> {
        EngineError::check_flit(&cfg)?;
        Ok(FlitCycleReference { cfg })
    }

    /// Decodes the packed route bytes of [`MeshShape::route_hops`] into
    /// `(node, port, class)` triples — the same routes (and dateline/
    /// escape classes) the event-driven engine follows.
    fn build_route(&self, src: NodeId, dst: NodeId) -> Vec<(usize, usize, usize)> {
        let shape = self.cfg.shape;
        let hops = shape.route_hops(src, dst, self.cfg.routing);
        let mut route = Vec::with_capacity(hops.len());
        let mut node = src;
        for &h in &hops[..hops.len() - 1] {
            let port = (h & HOP_PORT_MASK) as usize;
            let class = (h >> HOP_PORT_BITS) as usize;
            route.push((node.index(), port, class));
            let dir = [Dir::East, Dir::West, Dir::South, Dir::North][port];
            node = shape.neighbour(node, dir).expect("route step off the grid");
        }
        debug_assert_eq!(node, dst, "route bytes did not land on the destination");
        route.push((dst.index(), PORT_LOCAL, 0));
        route
    }
}

/// Runtime state for one simulation run.
struct Sim<'a> {
    cfg: &'a MeshConfig,
    vcs: usize,
    worms: Vec<Worm>,
    /// Input buffers: `buffers[node][port * vcs + vc]`.
    buffers: Vec<Vec<VecDeque<Flit>>>,
    /// Output ports: `outputs[node][port]`.
    outputs: Vec<Vec<OutPort>>,
    /// Reserved (in-flight) slots per input buffer (same indexing).
    reserved: Vec<Vec<usize>>,
    /// Flits in flight on a channel: (arrival, node, buffer index, flit).
    in_flight: Vec<(u64, usize, usize, Flit)>,
    remaining: usize,
}

impl Sim<'_> {
    fn out_channel_id(&self, node: usize, port: usize) -> u32 {
        // Matches MeshShape channel numbering: dirs 0..3, ejection 5.
        if port == PORT_LOCAL {
            node as u32 * 6 + 5
        } else {
            node as u32 * 6 + port as u32
        }
    }

    /// The router and input port fed by `node`'s output `port`. The wrap
    /// arms only ever fire on a torus — a mesh route never walks off an
    /// edge.
    fn downstream(&self, node: usize, port: usize) -> (usize, usize) {
        let w = self.cfg.shape.width() as usize;
        let nodes = self.cfg.shape.nodes();
        match port {
            PORT_E => (if (node + 1).is_multiple_of(w) { node + 1 - w } else { node + 1 }, PORT_W),
            PORT_W => (if node.is_multiple_of(w) { node + w - 1 } else { node - 1 }, PORT_E),
            PORT_S => (if node + w >= nodes { node + w - nodes } else { node + w }, PORT_N),
            PORT_N => (if node < w { node + nodes - w } else { node - w }, PORT_S),
            _ => unreachable!("ejection has no downstream router"),
        }
    }

    /// Route lookup: (output port, VC class) used by `worm` at `node` —
    /// minimal routes are self-avoiding on both topologies, so the node
    /// lookup is unambiguous.
    fn out_port(&self, worm: u32, node: usize) -> (usize, usize) {
        self.worms[worm as usize]
            .route
            .iter()
            .find(|&&(n, _, _)| n == node)
            .map(|&(_, p, c)| (p, c))
            .expect("worm visited a node off its route")
    }

    fn step(&mut self, t: u64) -> bool {
        let mut moved = false;
        let vcs = self.vcs;
        let classes = self.cfg.vc_classes();

        // Phase 1: land in-flight flits whose channel traversal completed.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= t {
                let (_, node, buf, mut flit) = self.in_flight.swap_remove(i);
                if flit.kind == Kind::Head {
                    flit.ready = t + self.cfg.router_delay;
                } else {
                    flit.ready = t;
                }
                self.reserved[node][buf] -= 1;
                self.buffers[node][buf].push_back(flit);
                moved = true;
            } else {
                i += 1;
            }
        }

        // Phase 2: switch + VC allocation, one flit per physical output.
        let nodes = self.cfg.shape.nodes();
        for node in 0..nodes {
            for out in 0..NPORTS {
                if self.outputs[node][out].busy_until > t {
                    continue;
                }
                // Candidate input buffers whose head flit requests `out`.
                let mut candidates: Vec<usize> = Vec::new();
                for buf in 0..NPORTS * vcs {
                    if let Some(f) = self.buffers[node][buf].front() {
                        if f.ready <= t && self.out_port(f.worm, node).0 == out {
                            candidates.push(buf);
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                // Select (buffer, output vc): body/tail flits use their
                // worm's owned VC; heads need a free VC (and downstream
                // space). Round-robin over candidates for fairness.
                let rr = self.outputs[node][out].rr;
                let ncand = candidates.len();
                let mut choice: Option<(usize, usize)> = None;
                for k in 0..ncand {
                    let buf = candidates[(rr + k) % ncand];
                    let f = *self.buffers[node][buf].front().unwrap();
                    let ovc = match f.kind {
                        Kind::Head => {
                            let class = self.out_port(f.worm, node).1;
                            match self.outputs[node][out].free_vc(class, classes) {
                                Some(vc) => vc,
                                None => continue,
                            }
                        }
                        _ => match self.outputs[node][out].vc_of(f.worm) {
                            Some(vc) => vc,
                            None => continue, // owner not established yet
                        },
                    };
                    // Capacity check downstream (ejection always sinks).
                    if out != PORT_LOCAL {
                        let (dn, dp) = self.downstream(node, out);
                        let dbuf = dp * vcs + ovc;
                        if self.buffers[dn][dbuf].len() + self.reserved[dn][dbuf]
                            >= self.cfg.buffer_flits
                        {
                            continue;
                        }
                    }
                    choice = Some((buf, ovc));
                    break;
                }
                let Some((buf, ovc)) = choice else { continue };
                // Move the flit.
                let flit = self.buffers[node][buf].pop_front().unwrap();
                let link = self.cfg.link_delay;
                let port_state = &mut self.outputs[node][out];
                port_state.busy_until = t + link;
                port_state.busy_ticks += link;
                port_state.rr = port_state.rr.wrapping_add(1);
                match flit.kind {
                    Kind::Head => {
                        port_state.owners[ovc] = Some(flit.worm);
                        port_state.vc_rr = (ovc + 1) % vcs;
                    }
                    Kind::Tail => port_state.owners[ovc] = None,
                    Kind::Body => {}
                }
                moved = true;
                if out == PORT_LOCAL {
                    if flit.kind == Kind::Tail {
                        let w = &mut self.worms[flit.worm as usize];
                        w.delivered = Some(t + link);
                        self.remaining -= 1;
                    }
                } else {
                    let (dn, dp) = self.downstream(node, out);
                    let dbuf = dp * vcs + ovc;
                    self.reserved[dn][dbuf] += 1;
                    self.in_flight.push((t + link, dn, dbuf, flit));
                }
            }
        }
        moved
    }

    /// Earliest future time anything can happen (for idle-time skipping).
    fn next_interesting(&self, t: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |cand: u64| {
            if cand > t {
                next = Some(next.map_or(cand, |n| n.min(cand)));
            }
        };
        for &(arr, _, _, _) in &self.in_flight {
            consider(arr);
        }
        for node in 0..self.cfg.shape.nodes() {
            for buf in 0..NPORTS * self.vcs {
                if let Some(f) = self.buffers[node][buf].front() {
                    consider(f.ready);
                    consider(self.outputs[node][self.out_port(f.worm, node).0].busy_until);
                }
            }
        }
        next
    }

    /// Human-readable account of every undelivered worm, for wedge panics:
    /// id, endpoints, flits still at the NI / in the network, and the
    /// furthest route position any of its flits reached.
    fn wedge_report(&self, pending: &[VecDeque<(u64, Flit)>], t: u64) -> String {
        let nworms = self.worms.len();
        let mut in_net = vec![0u64; nworms];
        let mut at_ni = vec![0u64; nworms];
        let mut far = vec![0usize; nworms];
        let mut note = |worm: u32, node: Option<usize>, counts: &mut [u64]| {
            counts[worm as usize] += 1;
            if let Some(node) = node {
                if let Some(pos) =
                    self.worms[worm as usize].route.iter().position(|&(n, _, _)| n == node)
                {
                    far[worm as usize] = far[worm as usize].max(pos);
                }
            }
        };
        for (node, bufs) in self.buffers.iter().enumerate() {
            for buf in bufs {
                for f in buf {
                    note(f.worm, Some(node), &mut in_net);
                }
            }
        }
        for &(_, node, _, f) in &self.in_flight {
            note(f.worm, Some(node), &mut in_net);
        }
        for queue in pending {
            for &(_, f) in queue {
                note(f.worm, None, &mut at_ni);
            }
        }
        let mut lines = vec![format!(
            "flit reference simulation wedged at t={t} with {} worms undelivered:",
            self.remaining
        )];
        let undelivered: Vec<usize> =
            (0..nworms).filter(|&w| self.worms[w].delivered.is_none()).collect();
        for &w in undelivered.iter().take(16) {
            let worm = &self.worms[w];
            lines.push(format!(
                "  worm {} ({}->{}): {} of {} flits still queued at NI, {} in network, \
                 furthest hop {}/{}",
                worm.msg.id,
                worm.msg.src.index(),
                worm.msg.dst.index(),
                at_ni[w],
                worm.flits,
                in_net[w],
                far[w],
                worm.route.len() - 1,
            ));
        }
        if undelivered.len() > 16 {
            lines.push(format!("  ... and {} more", undelivered.len() - 16));
        }
        lines.join("\n")
    }
}

impl MeshModel for FlitCycleReference {
    fn simulate(&mut self, msgs: &[NetMessage]) -> NetLog {
        let cfg = self.cfg;
        let vcs = cfg.virtual_channels;
        let nodes = cfg.shape.nodes();
        let mut sorted: Vec<NetMessage> = msgs.to_vec();
        sorted.sort_by_key(|m| (m.inject, m.id));

        let worms: Vec<Worm> = sorted
            .iter()
            .map(|m| Worm {
                msg: *m,
                route: self.build_route(m.src, m.dst),
                flits: cfg.flits_for(m.bytes),
                delivered: None,
            })
            .collect();

        let mut sim = Sim {
            cfg: &cfg,
            vcs,
            remaining: worms.len(),
            worms,
            buffers: vec![(0..NPORTS * vcs).map(|_| VecDeque::new()).collect(); nodes],
            outputs: (0..nodes).map(|_| (0..NPORTS).map(|_| OutPort::new(vcs)).collect()).collect(),
            reserved: vec![vec![0; NPORTS * vcs]; nodes],
            in_flight: Vec::new(),
        };

        // Per-node NI queues. Flits of one message stay contiguous (a worm
        // may never interleave with another in the injection buffer); the
        // head becomes available hop_latency after injection and the body
        // follows at one flit per link_delay. Messages enter injection
        // VC 0; VC spreading happens at the routers.
        let hop = cfg.hop_latency();
        let mut pending: Vec<VecDeque<(u64, Flit)>> = vec![VecDeque::new(); nodes];
        for (w, worm) in sim.worms.iter().enumerate() {
            let base = worm.msg.inject.ticks() + hop;
            let src = worm.msg.src.index();
            for j in 0..worm.flits {
                let kind = if j == 0 {
                    Kind::Head
                } else if j == worm.flits - 1 {
                    Kind::Tail
                } else {
                    Kind::Body
                };
                let avail = base + j * cfg.link_delay;
                let ready = if kind == Kind::Head { avail + cfg.router_delay } else { avail };
                pending[src].push_back((avail, Flit { worm: w as u32, kind, ready }));
            }
        }

        let mut t = sorted.first().map(|m| m.inject.ticks()).unwrap_or(0);
        let mut guard: u64 = 0;
        let guard_limit = 200_000_000;
        let inj_buf = PORT_LOCAL * vcs; // injection buffer, vc 0
        while sim.remaining > 0 {
            for (node, queue) in pending.iter_mut().enumerate() {
                while queue.front().is_some_and(|&(avail, _)| avail <= t) {
                    let (_, mut flit) = queue.pop_front().unwrap();
                    if flit.kind == Kind::Head {
                        // The router charge starts when the head actually
                        // reaches the router, which may be later than its
                        // nominal availability if it queued at the NI.
                        flit.ready = t + cfg.router_delay;
                    }
                    sim.buffers[node][inj_buf].push_back(flit);
                }
            }
            let moved = sim.step(t);
            guard += 1;
            assert!(
                guard < guard_limit,
                "flit reference simulation exceeded {guard_limit} steps\n{}",
                sim.wedge_report(&pending, t)
            );
            if moved {
                t += 1;
            } else {
                // Idle: skip to the next time anything can change.
                let mut next = sim.next_interesting(t);
                for queue in &pending {
                    if let Some(&(avail, _)) = queue.front() {
                        if avail > t {
                            next = Some(next.map_or(avail, |n| n.min(avail)));
                        }
                    }
                }
                match next {
                    Some(n) => t = n.max(t + 1),
                    None => panic!("{}", sim.wedge_report(&pending, t)),
                }
            }
        }

        let first = sorted.first().map(|m| m.inject.ticks()).unwrap_or(0);
        let mut last = first;
        let mut log = NetLog::new();
        for worm in &sim.worms {
            let delivered = worm.delivered.expect("all worms delivered");
            last = last.max(delivered);
            let hops = cfg.shape.hop_distance(worm.msg.src, worm.msg.dst);
            log.push(MsgRecord {
                id: worm.msg.id,
                src: worm.msg.src,
                dst: worm.msg.dst,
                bytes: worm.msg.bytes,
                inject: worm.msg.inject.ticks(),
                delivered,
                hops,
                zero_load: cfg.zero_load_latency(worm.msg.bytes, hops),
            });
        }
        let span = (last - first) as f64;
        let mut util = Vec::new();
        for node in 0..nodes {
            for port in 0..NPORTS {
                let busy = sim.outputs[node][port].busy_ticks;
                if busy > 0 && span > 0.0 {
                    util.push((sim.out_channel_id(node, port), busy as f64 / span));
                }
            }
        }
        log.set_utilization(util);
        log
    }
}

#[cfg(test)]
mod tests {
    use commchar_des::SimTime;

    use super::*;
    use crate::{MeshModel, OnlineWormhole};

    fn msg(id: u64, src: u16, dst: u16, bytes: u32, inject: u64) -> NetMessage {
        NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject: SimTime::from_ticks(inject),
        }
    }

    #[test]
    fn reference_matches_online_at_zero_load() {
        let cfg = MeshConfig::new(4, 4);
        let m = vec![msg(0, 0, 15, 32, 0)];
        let flit = FlitCycleReference::new(cfg).simulate(&m);
        let online = OnlineWormhole::new(cfg).simulate(&m);
        assert_eq!(flit.records()[0].delivered, online.records()[0].delivered);
    }

    #[test]
    fn undersized_vc_budget_is_a_typed_error() {
        // A torus with the default single VC cannot host the dateline
        // escape class — the constructor reports it instead of panicking.
        let err = FlitCycleReference::try_new(MeshConfig::new_torus(4, 4)).unwrap_err();
        assert_eq!(
            err,
            EngineError::UnsupportedTopology {
                topology: crate::Topology::Torus,
                routing: crate::Routing::Dimension,
                needed: 2,
                have: 1,
            }
        );
        // With the class budget met the constructor accepts the torus.
        assert!(FlitCycleReference::try_new(MeshConfig::new_torus(4, 4).with_virtual_channels(2))
            .is_ok());
    }

    #[test]
    fn reference_matches_online_at_zero_load_on_torus() {
        let cfg = MeshConfig::new_torus(4, 4).with_virtual_channels(2);
        let m = vec![msg(0, 0, 15, 32, 0)];
        let flit = FlitCycleReference::new(cfg).simulate(&m);
        let online = OnlineWormhole::new(cfg).simulate(&m);
        assert_eq!(flit.records()[0].delivered, online.records()[0].delivered);
        assert_eq!(flit.records()[0].hops, 2, "opposite corners wrap to 2 hops");
    }
}
