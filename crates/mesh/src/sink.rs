//! Streaming consumption of network activity.
//!
//! The network models historically produced a [`NetLog`] — one retained
//! [`MsgRecord`] per message. That is the right representation for the
//! characterization pipeline (distribution fitting needs the raw sample),
//! but it makes memory grow linearly with traffic, which rules out
//! long-horizon runs. The [`LogSink`] trait decouples the wormhole model
//! from what happens to each delivered message:
//!
//! - [`NetLog`] implements [`LogSink`] by retaining every record (the
//!   default, fully backward compatible), and
//! - [`StreamingLog`] folds each record into online moments
//!   ([`RunningStats`]), auto-widening latency and inter-arrival
//!   histograms, and per-pair traffic matrices — O(bins + P²) memory,
//!   independent of message count.

use commchar_des::RunningStats;
use commchar_stats::StreamingHistogram;

use crate::log::{MsgRecord, NetLog, NetSummary};

/// A consumer of completed message records, fed by a network model as
/// each message is delivered.
///
/// `finish` is called exactly once, when the model is torn down, with the
/// per-channel utilization it observed.
pub trait LogSink {
    /// Consumes one delivered message.
    fn record(&mut self, rec: MsgRecord);

    /// Receives the per-channel utilization `(channel id, fraction)` at
    /// end of simulation.
    fn finish(&mut self, utilization: Vec<(u32, f64)>);
}

impl LogSink for NetLog {
    fn record(&mut self, rec: MsgRecord) {
        self.push(rec);
    }

    fn finish(&mut self, utilization: Vec<(u32, f64)>) {
        self.set_utilization(utilization);
    }
}

/// Default bin count for the streaming histograms.
const DEFAULT_BINS: usize = 64;

/// Online network statistics in O(bins + P²) memory.
///
/// Each delivered message updates Welford accumulators (latency, blocked
/// time, payload, hops, inter-arrival), two [`StreamingHistogram`]s
/// (latency and per-source inter-arrival), and P×P message/byte matrices.
/// Nothing is retained per message, so a run of 10 million messages holds
/// exactly as much memory as a run of ten — see
/// [`approx_mem_bytes`](StreamingLog::approx_mem_bytes).
///
/// The moment accumulators see values in the same order a [`NetLog`]
/// would record them, so means and variances agree with log-derived
/// statistics to floating-point accuracy; median and p95 come from the
/// histogram and are exact to within one bin width.
///
/// # Example
///
/// ```
/// use commchar_des::SimTime;
/// use commchar_mesh::{MeshConfig, NetMessage, NodeId, OnlineWormhole, StreamingLog};
///
/// let cfg = MeshConfig::new(4, 2);
/// let mut net = OnlineWormhole::with_sink(cfg, StreamingLog::new(cfg.shape.nodes()));
/// net.send(NetMessage {
///     id: 0,
///     src: NodeId(0),
///     dst: NodeId(7),
///     bytes: 40,
///     inject: SimTime::ZERO,
/// });
/// let stream = net.into_sink();
/// assert_eq!(stream.messages(), 1);
/// assert!(stream.summary().mean_latency > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingLog {
    nodes: usize,
    latency: RunningStats,
    blocked: RunningStats,
    bytes: RunningStats,
    hops: RunningStats,
    interarrival: RunningStats,
    latency_hist: StreamingHistogram,
    interarrival_hist: StreamingHistogram,
    /// Per-source previous injection time (inter-arrival state).
    last_inject: Vec<Option<u64>>,
    /// Row-major P×P message counts (`src × nodes + dst`).
    msg_counts: Vec<u64>,
    /// Row-major P×P payload byte totals.
    byte_counts: Vec<u64>,
    total_bytes: u64,
    first_inject: Option<u64>,
    last_delivery: u64,
    utilization: Vec<(u32, f64)>,
}

impl StreamingLog {
    /// Creates an empty accumulator for a `nodes`-processor network, with
    /// the default histogram resolution.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> StreamingLog {
        StreamingLog::with_bins(nodes, DEFAULT_BINS)
    }

    /// Creates an empty accumulator with `bins` histogram bins.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `bins < 2`.
    pub fn with_bins(nodes: usize, bins: usize) -> StreamingLog {
        assert!(nodes > 0, "streaming log needs at least one node");
        StreamingLog {
            nodes,
            latency: RunningStats::new(),
            blocked: RunningStats::new(),
            bytes: RunningStats::new(),
            hops: RunningStats::new(),
            interarrival: RunningStats::new(),
            latency_hist: StreamingHistogram::new(bins),
            interarrival_hist: StreamingHistogram::new(bins),
            last_inject: vec![None; nodes],
            msg_counts: vec![0; nodes * nodes],
            byte_counts: vec![0; nodes * nodes],
            total_bytes: 0,
            first_inject: None,
            last_delivery: 0,
            utilization: Vec::new(),
        }
    }

    /// Node count the accumulator was sized for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Messages folded in so far.
    pub fn messages(&self) -> u64 {
        self.latency.count()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Online latency moments (mean/variance/min/max in ticks).
    pub fn latency(&self) -> &RunningStats {
        &self.latency
    }

    /// Online blocked-time (contention) moments.
    pub fn blocked(&self) -> &RunningStats {
        &self.blocked
    }

    /// Online payload-length moments (bytes).
    pub fn bytes(&self) -> &RunningStats {
        &self.bytes
    }

    /// Online hop-count moments.
    pub fn hops(&self) -> &RunningStats {
        &self.hops
    }

    /// Online per-source inter-arrival moments (ticks between consecutive
    /// injections from the same source).
    pub fn interarrival(&self) -> &RunningStats {
        &self.interarrival
    }

    /// The auto-widening latency histogram.
    pub fn latency_histogram(&self) -> &StreamingHistogram {
        &self.latency_hist
    }

    /// The auto-widening per-source inter-arrival histogram.
    pub fn interarrival_histogram(&self) -> &StreamingHistogram {
        &self.interarrival_hist
    }

    /// `counts[src][dst]` message counts — same shape as
    /// [`NetLog::spatial_counts`].
    pub fn spatial_counts(&self) -> Vec<Vec<u64>> {
        self.msg_counts.chunks(self.nodes).map(|row| row.to_vec()).collect()
    }

    /// `bytes[src][dst]` payload totals — same shape as
    /// [`NetLog::volume_bytes`].
    pub fn volume_bytes(&self) -> Vec<Vec<u64>> {
        self.byte_counts.chunks(self.nodes).map(|row| row.to_vec()).collect()
    }

    /// Messages sent by `src` (row sum of the count matrix).
    pub fn sent_by(&self, src: usize) -> u64 {
        self.msg_counts[src * self.nodes..(src + 1) * self.nodes].iter().sum()
    }

    /// Simulated span: last delivery − first injection (ticks).
    pub fn span(&self) -> u64 {
        match self.first_inject {
            Some(first) => self.last_delivery.saturating_sub(first),
            None => 0,
        }
    }

    /// Per-channel utilization, available after the model calls
    /// [`LogSink::finish`].
    pub fn utilization(&self) -> &[(u32, f64)] {
        &self.utilization
    }

    /// Aggregate summary in the same shape a [`NetLog`] produces. Means
    /// are exact (same accumulation the batch path uses); median and p95
    /// are histogram approximations, exact to within one bin width.
    pub fn summary(&self) -> NetSummary {
        let span = self.span();
        NetSummary {
            messages: self.messages(),
            mean_latency: self.latency.mean(),
            median_latency: self.latency_hist.quantile(0.5),
            p95_latency: self.latency_hist.quantile(0.95),
            mean_blocked: self.blocked.mean(),
            mean_bytes: self.bytes.mean(),
            mean_hops: self.hops.mean(),
            span,
            throughput: if span == 0 { 0.0 } else { self.total_bytes as f64 / span as f64 },
        }
    }

    /// Heap bytes held by the accumulator's growable structures. Constant
    /// for the accumulator's lifetime — O(bins + P²), never a function of
    /// how many messages were recorded (the property the streaming path
    /// exists to provide; asserted by tests at the 10M-message scale).
    pub fn approx_mem_bytes(&self) -> usize {
        use std::mem::size_of;
        self.latency_hist.mem_bytes()
            + self.interarrival_hist.mem_bytes()
            + self.last_inject.capacity() * size_of::<Option<u64>>()
            + self.msg_counts.capacity() * size_of::<u64>()
            + self.byte_counts.capacity() * size_of::<u64>()
            + self.utilization.capacity() * size_of::<(u32, f64)>()
    }
}

impl LogSink for StreamingLog {
    fn record(&mut self, rec: MsgRecord) {
        let s = rec.src.index();
        let d = rec.dst.index();
        assert!(s < self.nodes && d < self.nodes, "record outside the configured node range");
        let latency = rec.latency();
        self.latency.record(latency as f64);
        self.blocked.record(rec.blocked() as f64);
        self.bytes.record(rec.bytes as f64);
        self.hops.record(rec.hops as f64);
        self.latency_hist.record(latency);
        if let Some(prev) = self.last_inject[s] {
            let gap = rec.inject.saturating_sub(prev);
            self.interarrival.record(gap as f64);
            self.interarrival_hist.record(gap);
        }
        self.last_inject[s] = Some(rec.inject);
        self.msg_counts[s * self.nodes + d] += 1;
        self.byte_counts[s * self.nodes + d] += rec.bytes as u64;
        self.total_bytes += rec.bytes as u64;
        self.first_inject = Some(self.first_inject.map_or(rec.inject, |f| f.min(rec.inject)));
        self.last_delivery = self.last_delivery.max(rec.delivered);
    }

    fn finish(&mut self, utilization: Vec<(u32, f64)>) {
        self.utilization = utilization;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn rec(id: u64, src: u16, dst: u16, bytes: u32, inject: u64, delivered: u64) -> MsgRecord {
        MsgRecord {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            inject,
            delivered,
            hops: 1,
            zero_load: 5,
        }
    }

    #[test]
    fn netlog_sink_is_push() {
        let mut log = NetLog::new();
        LogSink::record(&mut log, rec(0, 0, 1, 16, 0, 10));
        LogSink::finish(&mut log, vec![(0, 0.5)]);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.utilization(), &[(0, 0.5)]);
    }

    #[test]
    fn streaming_summary_matches_netlog_on_identical_records() {
        let records: Vec<MsgRecord> = (0..500u64)
            .map(|i| {
                rec(
                    i,
                    (i % 4) as u16,
                    ((i + 1) % 4) as u16,
                    8 + (i % 64) as u32,
                    i * 3,
                    i * 3 + 10 + i % 7,
                )
            })
            .collect();
        let mut log = NetLog::new();
        let mut stream = StreamingLog::new(4);
        for r in &records {
            log.push(*r);
            stream.record(*r);
        }
        let a = log.summary();
        let b = stream.summary();
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.span, b.span);
        assert!((a.mean_latency - b.mean_latency).abs() < 1e-9);
        assert!((a.mean_blocked - b.mean_blocked).abs() < 1e-9);
        assert!((a.mean_bytes - b.mean_bytes).abs() < 1e-9);
        assert!((a.mean_hops - b.mean_hops).abs() < 1e-9);
        assert!((a.throughput - b.throughput).abs() < 1e-12);
        // Quantiles are histogram approximations: within one bin width.
        let w = stream.latency_histogram().width() as f64;
        assert!((a.median_latency - b.median_latency).abs() <= w);
        assert!((a.p95_latency - b.p95_latency).abs() <= w);
    }

    #[test]
    fn streaming_matrices_match_netlog_views() {
        let records = [
            rec(0, 0, 1, 10, 0, 10),
            rec(1, 0, 1, 30, 5, 25),
            rec(2, 1, 0, 8, 6, 30),
            rec(3, 2, 3, 100, 9, 40),
        ];
        let mut log = NetLog::new();
        let mut stream = StreamingLog::new(4);
        for r in &records {
            log.push(*r);
            stream.record(*r);
        }
        assert_eq!(stream.spatial_counts(), log.spatial_counts(4));
        assert_eq!(stream.volume_bytes(), log.volume_bytes(4));
        assert_eq!(stream.sent_by(0), 2);
        assert_eq!(stream.total_bytes(), 148);
    }

    #[test]
    fn streaming_interarrival_is_per_source() {
        let mut stream = StreamingLog::new(2);
        // Source 0 injects at 0, 10, 30; source 1 at 5.
        stream.record(rec(0, 0, 1, 8, 0, 9));
        stream.record(rec(1, 1, 0, 8, 5, 14));
        stream.record(rec(2, 0, 1, 8, 10, 19));
        stream.record(rec(3, 0, 1, 8, 30, 39));
        // Gaps: 10 − 0 and 30 − 10, both from source 0 only.
        assert_eq!(stream.interarrival().count(), 2);
        assert!((stream.interarrival().mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_memory_is_independent_of_message_count() {
        let mut stream = StreamingLog::new(8);
        for i in 0..1000u64 {
            stream.record(rec(i, (i % 8) as u16, ((i + 3) % 8) as u16, 64, i * 5, i * 5 + 20));
        }
        let early = stream.approx_mem_bytes();
        for i in 1000..100_000u64 {
            stream.record(rec(i, (i % 8) as u16, ((i + 3) % 8) as u16, 64, i * 5, i * 5 + 20));
        }
        assert_eq!(stream.approx_mem_bytes(), early);
        assert_eq!(stream.messages(), 100_000);
    }

    #[test]
    fn empty_streaming_summary_is_zeroed() {
        let s = StreamingLog::new(4).summary();
        assert_eq!(s.messages, 0);
        assert_eq!(s.span, 0);
        assert_eq!(s.throughput, 0.0);
        assert_eq!(s.median_latency, 0.0);
    }
}
