//! Mesh topology: node naming, coordinates, channel enumeration, and the
//! routing abstraction (deterministic dimension-order and minimal-adaptive
//! policies, topology-aware for both the open mesh and the wraparound
//! torus).

use std::fmt;

/// A node (processor + router + network interface) in the mesh.
///
/// Nodes are numbered row-major: `id = y * width + x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(u16::try_from(i).expect("node index exceeds u16"))
    }
}

/// An (x, y) mesh coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

/// A directed channel in the mesh.
///
/// Inter-router channels are identified by their source node and direction;
/// each node also has one *injection* channel (NI → router) and one
/// *ejection* channel (router → NI), so traffic sourced at or sinked into a
/// node serializes at its network interface, as in the paper's simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Direction of an inter-router hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// +x
    East,
    /// −x
    West,
    /// +y
    South,
    /// −y
    North,
}

impl Dir {
    fn code(self) -> u32 {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::South => 2,
            Dir::North => 3,
        }
    }

    fn is_x(self) -> bool {
        matches!(self, Dir::East | Dir::West)
    }
}

/// Whether the 2-D grid wraps around (torus) or not (mesh).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Topology {
    /// Open grid: edge nodes have no wraparound links (the paper's network).
    #[default]
    Mesh,
    /// Wraparound grid: every row and column is a ring, halving the
    /// average distance. Supported by every model; the flit-accurate
    /// router keeps it deadlock-free with a dateline (escape) virtual-
    /// channel discipline, which needs at least
    /// [`Routing::vc_classes`] virtual channels per physical channel.
    Torus,
}

impl Topology {
    /// The flag spelling of this topology (`"mesh"` / `"torus"`).
    pub fn name(self) -> &'static str {
        match self {
            Topology::Mesh => "mesh",
            Topology::Torus => "torus",
        }
    }

    /// Parses a `--topology` flag value.
    pub fn parse(s: &str) -> Option<Topology> {
        match s {
            "mesh" => Some(Topology::Mesh),
            "torus" => Some(Topology::Torus),
            _ => None,
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How routes are computed — the policy half of the (topology × routing)
/// matrix, selectable everywhere a [`MeshShape`] is.
///
/// Both policies are *deterministic*: the route for a (src, dst) pair is a
/// pure function of the pair, so every model (the recurrence wormhole, the
/// analytic queueing model, the flit-accurate router and its sharded
/// variant) computes the identical path and simulation output never
/// depends on worker count or message identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Hash)]
pub enum Routing {
    /// Dimension-ordered (XY) routing: resolve the x offset first, then
    /// the y offset. Deadlock-free on the mesh with a single virtual
    /// channel; the historical behavior and the default.
    #[default]
    Dimension,
    /// Minimal-adaptive routing in the O1TURN style: each (src, dst) pair
    /// deterministically takes either the XY or the YX dimension order,
    /// chosen by a pure hash of the pair so traffic spreads over both
    /// minimal quadrant paths. The two orders live in disjoint
    /// virtual-channel classes, which keeps the scheme deadlock-free
    /// (each class on its own is dimension-ordered).
    Adaptive,
}

impl Routing {
    /// The flag spelling of this policy (`"dimension"` / `"adaptive"`).
    pub fn name(self) -> &'static str {
        match self {
            Routing::Dimension => "dimension",
            Routing::Adaptive => "adaptive",
        }
    }

    /// Parses a `--routing` flag value.
    pub fn parse(s: &str) -> Option<Routing> {
        match s {
            "dimension" => Some(Routing::Dimension),
            "adaptive" => Some(Routing::Adaptive),
            _ => None,
        }
    }

    /// Virtual-channel classes this (topology × routing) pair needs for
    /// deadlock freedom: the torus doubles for the dateline (escape)
    /// discipline, adaptive routing doubles to separate the XY and YX
    /// dimension orders. Mesh + dimension needs exactly one class — the
    /// historical single-VC behavior.
    pub fn vc_classes(self, topology: Topology) -> usize {
        let dateline = match topology {
            Topology::Mesh => 1,
            Topology::Torus => 2,
        };
        let orders = match self {
            Routing::Dimension => 1,
            Routing::Adaptive => 2,
        };
        dateline * orders
    }

    /// Whether this (src, dst) pair routes y-first (YX order). Always
    /// false under [`Routing::Dimension`]; under [`Routing::Adaptive`] a
    /// pure hash of the pair picks the order.
    fn y_first(self, src: NodeId, dst: NodeId) -> bool {
        match self {
            Routing::Dimension => false,
            Routing::Adaptive => {
                let h = (src.0 as u32)
                    .wrapping_mul(0x9E37_79B1)
                    .wrapping_add((dst.0 as u32).wrapping_mul(0x85EB_CA77));
                (h >> 15) & 1 == 1
            }
        }
    }
}

impl fmt::Display for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of bits the output-port code occupies in a packed route hop;
/// the virtual-channel class is stored in the bits above.
pub const HOP_PORT_BITS: u8 = 3;

/// Bitmask extracting the output-port code from a packed route hop.
pub const HOP_PORT_MASK: u8 = (1 << HOP_PORT_BITS) - 1;

/// Output-port code of the local (ejection) port in a packed route hop —
/// one past the four `Dir` direction codes.
pub const HOP_PORT_LOCAL: u8 = 4;

/// The shape of a 2-D mesh and its routing/enumeration rules.
///
/// # Example
///
/// ```
/// use commchar_mesh::{MeshShape, NodeId};
/// let shape = MeshShape::new(4, 4);
/// assert_eq!(shape.nodes(), 16);
/// assert_eq!(shape.hop_distance(NodeId(0), NodeId(15)), 6);
/// let path = shape.xy_route(NodeId(0), NodeId(5));
/// // injection + 2 inter-router hops + ejection
/// assert_eq!(path.len(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshShape {
    width: u16,
    height: u16,
    topology: Topology,
}

impl MeshShape {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        MeshShape { width, height, topology: Topology::Mesh }
    }

    /// Creates a `width × height` torus (wraparound grid).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new_torus(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        MeshShape { width, height, topology: Topology::Torus }
    }

    /// The grid's topology.
    pub fn topology(self) -> Topology {
        self.topology
    }

    /// Chooses a near-square shape for `n` nodes (e.g. 8 → 4×2, 16 → 4×4).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not expressible as a near-square grid
    /// (all powers of two and perfect squares are accepted).
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "node count must be positive");
        let mut w = (n as f64).sqrt().ceil() as usize;
        while w <= n {
            if n.is_multiple_of(w) {
                return MeshShape::new(w as u16, (n / w) as u16);
            }
            w += 1;
        }
        unreachable!("w = n always divides n");
    }

    /// Mesh width (columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total channel-id space (inter-router, injection and ejection slots).
    pub fn channel_slots(self) -> usize {
        self.nodes() * 6
    }

    /// Coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(node.index() < self.nodes(), "node {node:?} out of range");
        Coord { x: node.0 % self.width, y: node.0 / self.width }
    }

    /// Node at a coordinate.
    pub fn node_at(self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "coordinate out of range");
        NodeId(c.y * self.width + c.x)
    }

    /// The inter-router channel leaving `node` in direction `dir`.
    pub fn channel(self, node: NodeId, dir: Dir) -> ChannelId {
        ChannelId(node.0 as u32 * 6 + dir.code())
    }

    /// The injection channel (NI → router) of `node`.
    pub fn injection(self, node: NodeId) -> ChannelId {
        ChannelId(node.0 as u32 * 6 + 4)
    }

    /// The ejection channel (router → NI) of `node`.
    pub fn ejection(self, node: NodeId) -> ChannelId {
        ChannelId(node.0 as u32 * 6 + 5)
    }

    /// Manhattan (hop) distance between two nodes, excluding NI channels
    /// (wrap-aware on a torus).
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = ca.x.abs_diff(cb.x);
        let dy = ca.y.abs_diff(cb.y);
        match self.topology {
            Topology::Mesh => (dx + dy) as u32,
            Topology::Torus => (dx.min(self.width - dx) + dy.min(self.height - dy)) as u32,
        }
    }

    /// Deterministic dimension-ordered (XY) route from `src` to `dst`:
    /// injection channel, inter-router channels (x first, then y), ejection
    /// channel. Shorthand for [`MeshShape::route`] with
    /// [`Routing::Dimension`].
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — the network never sees self-messages.
    pub fn xy_route(self, src: NodeId, dst: NodeId) -> Vec<ChannelId> {
        self.route(src, dst, Routing::Dimension)
    }

    /// Deterministic minimal route from `src` to `dst` under `routing`:
    /// injection channel, inter-router channels, ejection channel. Both
    /// policies produce minimal routes, so
    /// `route.len() == hop_distance + 2` on every topology.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — the network never sees self-messages.
    pub fn route(self, src: NodeId, dst: NodeId, routing: Routing) -> Vec<ChannelId> {
        let mut path = Vec::with_capacity(2 + self.hop_distance(src, dst) as usize);
        path.push(self.injection(src));
        self.walk(src, dst, routing, |node, dir, _wrap| path.push(self.channel(node, dir)));
        path.push(self.ejection(dst));
        path
    }

    /// The route as packed per-hop bytes for the flit-accurate router:
    /// one byte per inter-router hop (`class << HOP_PORT_BITS | dir
    /// code`), then one ejection byte (`class 0`, port
    /// [`HOP_PORT_LOCAL`]). The class is the virtual-channel class the
    /// hop's head flit allocates from: the dateline bit flips to 1 on the
    /// hop crossing a torus wrap link and stays set for the rest of that
    /// dimension, and adaptive YX-ordered routes add
    /// `Routing::Dimension.vc_classes(topology)` so the two dimension
    /// orders use disjoint classes. Mesh + dimension packs every hop as
    /// class 0 — the plain port byte of the single-class router.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — the network never sees self-messages.
    pub fn route_hops(self, src: NodeId, dst: NodeId, routing: Routing) -> Vec<u8> {
        let mut hops = Vec::with_capacity(1 + self.hop_distance(src, dst) as usize);
        self.route_hops_into(src, dst, routing, &mut hops);
        hops
    }

    /// [`route_hops`](MeshShape::route_hops), appending into `out` (the
    /// flit router's shared route arena) instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — the network never sees self-messages.
    pub fn route_hops_into(self, src: NodeId, dst: NodeId, routing: Routing, out: &mut Vec<u8>) {
        let order_base = if routing.y_first(src, dst) {
            Routing::Dimension.vc_classes(self.topology) as u8
        } else {
            0
        };
        let mut dateline = 0u8;
        let mut last_x = None;
        self.walk(src, dst, routing, |_node, dir, wrap| {
            if last_x != Some(dir.is_x()) {
                dateline = 0; // class resets at the dimension switch
                last_x = Some(dir.is_x());
            }
            if wrap {
                dateline = 1;
            }
            let class = order_base + dateline;
            out.push((class << HOP_PORT_BITS) | dir.code() as u8);
        });
        out.push(HOP_PORT_LOCAL);
    }

    /// Walks the minimal route from `src` to `dst` under `routing`,
    /// calling `step(node, dir, wraps)` for each inter-router hop —
    /// `wraps` marks a hop crossing a torus wrap link (the dateline).
    ///
    /// Dimension order resolves x then y; adaptive order is decided per
    /// (src, dst) by [`Routing::y_first`]. On a torus each dimension takes
    /// the shorter way around; equidistant ties split by endpoint parity
    /// so tied pairs do not all pile onto the same ring direction.
    fn walk(
        self,
        src: NodeId,
        dst: NodeId,
        routing: Routing,
        mut step: impl FnMut(NodeId, Dir, bool),
    ) {
        assert_ne!(src, dst, "self-messages do not enter the network");
        let mut cur = self.coord(src);
        let goal = self.coord(dst);
        let tie_forward = (src.0 ^ dst.0) & 1 == 0;
        let step_x = |cur: u16| -> (Dir, u16) {
            let fwd = (goal.x + self.width - cur) % self.width;
            let bwd = self.width - fwd;
            let use_east = match self.topology {
                Topology::Mesh => goal.x > cur,
                Topology::Torus => fwd < bwd || (fwd == bwd && tie_forward),
            };
            if use_east {
                (Dir::East, (cur + 1) % self.width)
            } else {
                (Dir::West, (cur + self.width - 1) % self.width)
            }
        };
        let step_y = |cur: u16| -> (Dir, u16) {
            let fwd = (goal.y + self.height - cur) % self.height;
            let bwd = self.height - fwd;
            let use_south = match self.topology {
                Topology::Mesh => goal.y > cur,
                Topology::Torus => fwd < bwd || (fwd == bwd && tie_forward),
            };
            if use_south {
                (Dir::South, (cur + 1) % self.height)
            } else {
                (Dir::North, (cur + self.height - 1) % self.height)
            }
        };
        let run_x = |cur: &mut Coord, step: &mut dyn FnMut(NodeId, Dir, bool)| {
            while cur.x != goal.x {
                let (dir, nx) = step_x(cur.x);
                let wraps = (dir == Dir::East && nx == 0) || (dir == Dir::West && cur.x == 0);
                step(self.node_at(*cur), dir, wraps);
                cur.x = nx;
            }
        };
        let run_y = |cur: &mut Coord, step: &mut dyn FnMut(NodeId, Dir, bool)| {
            while cur.y != goal.y {
                let (dir, ny) = step_y(cur.y);
                let wraps = (dir == Dir::South && ny == 0) || (dir == Dir::North && cur.y == 0);
                step(self.node_at(*cur), dir, wraps);
                cur.y = ny;
            }
        };
        if routing.y_first(src, dst) {
            run_y(&mut cur, &mut step);
            run_x(&mut cur, &mut step);
        } else {
            run_x(&mut cur, &mut step);
            run_y(&mut cur, &mut step);
        }
    }

    /// The neighbour of `node` in direction `dir`, if it exists (wraps on
    /// a torus, so a torus always has a neighbour in every direction).
    pub fn neighbour(self, node: NodeId, dir: Dir) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match (self.topology, dir) {
            (_, Dir::East) if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            (_, Dir::West) if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            (_, Dir::South) if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            (_, Dir::North) if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            (Topology::Torus, Dir::East) => Coord { x: 0, y: c.y },
            (Topology::Torus, Dir::West) => Coord { x: self.width - 1, y: c.y },
            (Topology::Torus, Dir::South) => Coord { x: c.x, y: 0 },
            (Topology::Torus, Dir::North) => Coord { x: c.x, y: self.height - 1 },
            _ => return None,
        };
        Some(self.node_at(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_coords() {
        let s = MeshShape::new(4, 2);
        assert_eq!(s.coord(NodeId(0)), Coord { x: 0, y: 0 });
        assert_eq!(s.coord(NodeId(5)), Coord { x: 1, y: 1 });
        assert_eq!(s.node_at(Coord { x: 3, y: 1 }), NodeId(7));
    }

    #[test]
    fn for_nodes_shapes() {
        assert_eq!(MeshShape::for_nodes(8), MeshShape::new(4, 2));
        assert_eq!(MeshShape::for_nodes(16), MeshShape::new(4, 4));
        assert_eq!(MeshShape::for_nodes(32), MeshShape::new(8, 4));
        assert_eq!(MeshShape::for_nodes(9), MeshShape::new(3, 3));
        assert_eq!(MeshShape::for_nodes(1), MeshShape::new(1, 1));
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let s = MeshShape::new(4, 4);
        // 0 (0,0) -> 10 (2,2): inj, E, E, S, S, ej
        let path = s.xy_route(NodeId(0), NodeId(10));
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], s.injection(NodeId(0)));
        assert_eq!(path[1], s.channel(NodeId(0), Dir::East));
        assert_eq!(path[2], s.channel(NodeId(1), Dir::East));
        assert_eq!(path[3], s.channel(NodeId(2), Dir::South));
        assert_eq!(path[4], s.channel(NodeId(6), Dir::South));
        assert_eq!(path[5], s.ejection(NodeId(10)));
    }

    #[test]
    fn route_length_matches_distance() {
        let s = MeshShape::new(5, 3);
        for a in 0..s.nodes() {
            for b in 0..s.nodes() {
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId::from(a), NodeId::from(b));
                assert_eq!(s.xy_route(a, b).len() as u32, s.hop_distance(a, b) + 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-messages")]
    fn self_route_panics() {
        MeshShape::new(2, 2).xy_route(NodeId(1), NodeId(1));
    }

    #[test]
    fn channels_are_unique() {
        let s = MeshShape::new(3, 3);
        let mut seen = std::collections::HashSet::new();
        for n in 0..s.nodes() {
            let n = NodeId::from(n);
            for dir in [Dir::East, Dir::West, Dir::South, Dir::North] {
                assert!(seen.insert(s.channel(n, dir)));
            }
            assert!(seen.insert(s.injection(n)));
            assert!(seen.insert(s.ejection(n)));
        }
        assert!(seen.iter().all(|c| (c.0 as usize) < s.channel_slots()));
    }

    #[test]
    fn torus_distance_wraps() {
        let t = MeshShape::new_torus(4, 4);
        // Opposite corners: 2 hops on a torus, 6 on a mesh.
        assert_eq!(t.hop_distance(NodeId(0), NodeId(15)), 2);
        assert_eq!(MeshShape::new(4, 4).hop_distance(NodeId(0), NodeId(15)), 6);
        // Route length matches the wrapped distance for every pair.
        for a in 0..t.nodes() {
            for b in 0..t.nodes() {
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId::from(a), NodeId::from(b));
                assert_eq!(t.xy_route(a, b).len() as u32, t.hop_distance(a, b) + 2);
            }
        }
    }

    #[test]
    fn torus_neighbours_wrap() {
        let t = MeshShape::new_torus(3, 2);
        assert_eq!(t.neighbour(NodeId(0), Dir::West), Some(NodeId(2)));
        assert_eq!(t.neighbour(NodeId(0), Dir::North), Some(NodeId(3)));
        assert_eq!(t.neighbour(NodeId(2), Dir::East), Some(NodeId(0)));
    }

    #[test]
    fn routing_names_round_trip() {
        for r in [Routing::Dimension, Routing::Adaptive] {
            assert_eq!(Routing::parse(r.name()), Some(r));
        }
        assert_eq!(Routing::parse("west-first"), None);
        assert_eq!(Routing::default(), Routing::Dimension);
        for t in [Topology::Mesh, Topology::Torus] {
            assert_eq!(Topology::parse(t.name()), Some(t));
        }
        assert_eq!(Topology::parse("hypercube"), None);
    }

    #[test]
    fn vc_class_budget_per_combination() {
        assert_eq!(Routing::Dimension.vc_classes(Topology::Mesh), 1);
        assert_eq!(Routing::Adaptive.vc_classes(Topology::Mesh), 2);
        assert_eq!(Routing::Dimension.vc_classes(Topology::Torus), 2);
        assert_eq!(Routing::Adaptive.vc_classes(Topology::Torus), 4);
    }

    #[test]
    fn adaptive_routes_are_minimal_and_split_orders() {
        for s in [MeshShape::new(5, 4), MeshShape::new_torus(5, 4)] {
            let mut y_first_seen = false;
            let mut x_first_seen = false;
            for a in 0..s.nodes() {
                for b in 0..s.nodes() {
                    if a == b {
                        continue;
                    }
                    let (a, b) = (NodeId::from(a), NodeId::from(b));
                    let path = s.route(a, b, Routing::Adaptive);
                    assert_eq!(path.len() as u32, s.hop_distance(a, b) + 2);
                    assert_eq!(path[0], s.injection(a));
                    assert_eq!(*path.last().unwrap(), s.ejection(b));
                    // The hash must actually use both dimension orders.
                    let ca = s.coord(a);
                    let cb = s.coord(b);
                    if ca.x != cb.x && ca.y != cb.y {
                        let first = path[1].0 % 6;
                        if first <= 1 {
                            x_first_seen = true;
                        } else {
                            y_first_seen = true;
                        }
                    }
                }
            }
            assert!(x_first_seen && y_first_seen, "adaptive never split orders on {s:?}");
        }
    }

    #[test]
    fn packed_hops_on_mesh_dimension_are_plain_port_bytes() {
        let s = MeshShape::new(4, 4);
        // 0 (0,0) -> 10 (2,2): E, E, S, S, eject — all class 0.
        let hops = s.route_hops(NodeId(0), NodeId(10), Routing::Dimension);
        assert_eq!(hops, vec![0, 0, 2, 2, HOP_PORT_LOCAL]);
    }

    #[test]
    fn dateline_class_flips_on_the_wrap_hop() {
        let t = MeshShape::new_torus(5, 1);
        // 3 -> 0 forward: E (wraps 4->0 on the second hop).
        let hops = t.route_hops(NodeId(3), NodeId(0), Routing::Dimension);
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0] & HOP_PORT_MASK, 0, "east");
        assert_eq!(hops[0] >> HOP_PORT_BITS, 0, "before the dateline");
        assert_eq!(hops[1] >> HOP_PORT_BITS, 1, "wrap hop crosses the dateline");
        assert_eq!(*hops.last().unwrap(), HOP_PORT_LOCAL);
        // Within one dimension the class never decreases (escape
        // discipline), for every pair and policy.
        let t = MeshShape::new_torus(6, 5);
        for routing in [Routing::Dimension, Routing::Adaptive] {
            for a in 0..t.nodes() {
                for b in 0..t.nodes() {
                    if a == b {
                        continue;
                    }
                    let hops = t.route_hops(NodeId::from(a), NodeId::from(b), routing);
                    let mut last: Option<(bool, u8)> = None;
                    for &h in &hops[..hops.len() - 1] {
                        let is_x = (h & HOP_PORT_MASK) <= 1;
                        let class = h >> HOP_PORT_BITS;
                        if let Some((lx, lc)) = last {
                            if lx == is_x {
                                assert!(class >= lc, "class dropped inside a dimension");
                            }
                        }
                        last = Some((is_x, class));
                        assert!((class as usize) < routing.vc_classes(Topology::Torus));
                    }
                }
            }
        }
    }

    #[test]
    fn neighbours_respect_edges() {
        let s = MeshShape::new(3, 2);
        assert_eq!(s.neighbour(NodeId(0), Dir::West), None);
        assert_eq!(s.neighbour(NodeId(0), Dir::North), None);
        assert_eq!(s.neighbour(NodeId(0), Dir::East), Some(NodeId(1)));
        assert_eq!(s.neighbour(NodeId(0), Dir::South), Some(NodeId(3)));
        assert_eq!(s.neighbour(NodeId(5), Dir::East), None);
        assert_eq!(s.neighbour(NodeId(5), Dir::South), None);
    }
}
