//! Mesh topology: node naming, coordinates, channel enumeration, XY routing.

use std::fmt;

/// A node (processor + router + network interface) in the mesh.
///
/// Nodes are numbered row-major: `id = y * width + x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(u16::try_from(i).expect("node index exceeds u16"))
    }
}

/// An (x, y) mesh coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

/// A directed channel in the mesh.
///
/// Inter-router channels are identified by their source node and direction;
/// each node also has one *injection* channel (NI → router) and one
/// *ejection* channel (router → NI), so traffic sourced at or sinked into a
/// node serializes at its network interface, as in the paper's simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Direction of an inter-router hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// +x
    East,
    /// −x
    West,
    /// +y
    South,
    /// −y
    North,
}

impl Dir {
    fn code(self) -> u32 {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::South => 2,
            Dir::North => 3,
        }
    }
}

/// Whether the 2-D grid wraps around (torus) or not (mesh).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Topology {
    /// Open grid: edge nodes have no wraparound links (the paper's network).
    #[default]
    Mesh,
    /// Wraparound grid: every row and column is a ring, halving the
    /// average distance. Supported by the recurrence network model; the
    /// flit-accurate router requires escape virtual channels for torus
    /// deadlock freedom and currently rejects it.
    Torus,
}

/// The shape of a 2-D mesh and its routing/enumeration rules.
///
/// # Example
///
/// ```
/// use commchar_mesh::{MeshShape, NodeId};
/// let shape = MeshShape::new(4, 4);
/// assert_eq!(shape.nodes(), 16);
/// assert_eq!(shape.hop_distance(NodeId(0), NodeId(15)), 6);
/// let path = shape.xy_route(NodeId(0), NodeId(5));
/// // injection + 2 inter-router hops + ejection
/// assert_eq!(path.len(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshShape {
    width: u16,
    height: u16,
    topology: Topology,
}

impl MeshShape {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        MeshShape { width, height, topology: Topology::Mesh }
    }

    /// Creates a `width × height` torus (wraparound grid).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new_torus(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        MeshShape { width, height, topology: Topology::Torus }
    }

    /// The grid's topology.
    pub fn topology(self) -> Topology {
        self.topology
    }

    /// Chooses a near-square shape for `n` nodes (e.g. 8 → 4×2, 16 → 4×4).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not expressible as a near-square grid
    /// (all powers of two and perfect squares are accepted).
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "node count must be positive");
        let mut w = (n as f64).sqrt().ceil() as usize;
        while w <= n {
            if n.is_multiple_of(w) {
                return MeshShape::new(w as u16, (n / w) as u16);
            }
            w += 1;
        }
        unreachable!("w = n always divides n");
    }

    /// Mesh width (columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total channel-id space (inter-router, injection and ejection slots).
    pub fn channel_slots(self) -> usize {
        self.nodes() * 6
    }

    /// Coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(node.index() < self.nodes(), "node {node:?} out of range");
        Coord { x: node.0 % self.width, y: node.0 / self.width }
    }

    /// Node at a coordinate.
    pub fn node_at(self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "coordinate out of range");
        NodeId(c.y * self.width + c.x)
    }

    /// The inter-router channel leaving `node` in direction `dir`.
    pub fn channel(self, node: NodeId, dir: Dir) -> ChannelId {
        ChannelId(node.0 as u32 * 6 + dir.code())
    }

    /// The injection channel (NI → router) of `node`.
    pub fn injection(self, node: NodeId) -> ChannelId {
        ChannelId(node.0 as u32 * 6 + 4)
    }

    /// The ejection channel (router → NI) of `node`.
    pub fn ejection(self, node: NodeId) -> ChannelId {
        ChannelId(node.0 as u32 * 6 + 5)
    }

    /// Manhattan (hop) distance between two nodes, excluding NI channels
    /// (wrap-aware on a torus).
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = ca.x.abs_diff(cb.x);
        let dy = ca.y.abs_diff(cb.y);
        match self.topology {
            Topology::Mesh => (dx + dy) as u32,
            Topology::Torus => (dx.min(self.width - dx) + dy.min(self.height - dy)) as u32,
        }
    }

    /// Deterministic dimension-ordered (XY) route from `src` to `dst`:
    /// injection channel, inter-router channels (x first, then y), ejection
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` — the network never sees self-messages.
    pub fn xy_route(self, src: NodeId, dst: NodeId) -> Vec<ChannelId> {
        assert_ne!(src, dst, "self-messages do not enter the network");
        let mut path = Vec::with_capacity(2 + self.hop_distance(src, dst) as usize);
        path.push(self.injection(src));
        let mut cur = self.coord(src);
        let goal = self.coord(dst);
        // Per-dimension step: on a torus pick the shorter way around;
        // equidistant ties split by endpoint parity so tied pairs do not
        // all pile onto the same ring direction.
        let tie_forward = (src.0 ^ dst.0) & 1 == 0;
        let step_x = |cur: u16| -> (Dir, u16) {
            let fwd = (goal.x + self.width - cur) % self.width;
            let bwd = self.width - fwd;
            let use_east = match self.topology {
                Topology::Mesh => goal.x > cur,
                Topology::Torus => fwd < bwd || (fwd == bwd && tie_forward),
            };
            if use_east {
                (Dir::East, (cur + 1) % self.width)
            } else {
                (Dir::West, (cur + self.width - 1) % self.width)
            }
        };
        let step_y = |cur: u16| -> (Dir, u16) {
            let fwd = (goal.y + self.height - cur) % self.height;
            let bwd = self.height - fwd;
            let use_south = match self.topology {
                Topology::Mesh => goal.y > cur,
                Topology::Torus => fwd < bwd || (fwd == bwd && tie_forward),
            };
            if use_south {
                (Dir::South, (cur + 1) % self.height)
            } else {
                (Dir::North, (cur + self.height - 1) % self.height)
            }
        };
        while cur.x != goal.x {
            let (dir, nx) = step_x(cur.x);
            path.push(self.channel(self.node_at(cur), dir));
            cur.x = nx;
        }
        while cur.y != goal.y {
            let (dir, ny) = step_y(cur.y);
            path.push(self.channel(self.node_at(cur), dir));
            cur.y = ny;
        }
        path.push(self.ejection(dst));
        path
    }

    /// The neighbour of `node` in direction `dir`, if it exists (wraps on
    /// a torus, so a torus always has a neighbour in every direction).
    pub fn neighbour(self, node: NodeId, dir: Dir) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match (self.topology, dir) {
            (_, Dir::East) if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            (_, Dir::West) if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            (_, Dir::South) if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            (_, Dir::North) if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            (Topology::Torus, Dir::East) => Coord { x: 0, y: c.y },
            (Topology::Torus, Dir::West) => Coord { x: self.width - 1, y: c.y },
            (Topology::Torus, Dir::South) => Coord { x: c.x, y: 0 },
            (Topology::Torus, Dir::North) => Coord { x: c.x, y: self.height - 1 },
            _ => return None,
        };
        Some(self.node_at(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_coords() {
        let s = MeshShape::new(4, 2);
        assert_eq!(s.coord(NodeId(0)), Coord { x: 0, y: 0 });
        assert_eq!(s.coord(NodeId(5)), Coord { x: 1, y: 1 });
        assert_eq!(s.node_at(Coord { x: 3, y: 1 }), NodeId(7));
    }

    #[test]
    fn for_nodes_shapes() {
        assert_eq!(MeshShape::for_nodes(8), MeshShape::new(4, 2));
        assert_eq!(MeshShape::for_nodes(16), MeshShape::new(4, 4));
        assert_eq!(MeshShape::for_nodes(32), MeshShape::new(8, 4));
        assert_eq!(MeshShape::for_nodes(9), MeshShape::new(3, 3));
        assert_eq!(MeshShape::for_nodes(1), MeshShape::new(1, 1));
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let s = MeshShape::new(4, 4);
        // 0 (0,0) -> 10 (2,2): inj, E, E, S, S, ej
        let path = s.xy_route(NodeId(0), NodeId(10));
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], s.injection(NodeId(0)));
        assert_eq!(path[1], s.channel(NodeId(0), Dir::East));
        assert_eq!(path[2], s.channel(NodeId(1), Dir::East));
        assert_eq!(path[3], s.channel(NodeId(2), Dir::South));
        assert_eq!(path[4], s.channel(NodeId(6), Dir::South));
        assert_eq!(path[5], s.ejection(NodeId(10)));
    }

    #[test]
    fn route_length_matches_distance() {
        let s = MeshShape::new(5, 3);
        for a in 0..s.nodes() {
            for b in 0..s.nodes() {
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId::from(a), NodeId::from(b));
                assert_eq!(s.xy_route(a, b).len() as u32, s.hop_distance(a, b) + 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-messages")]
    fn self_route_panics() {
        MeshShape::new(2, 2).xy_route(NodeId(1), NodeId(1));
    }

    #[test]
    fn channels_are_unique() {
        let s = MeshShape::new(3, 3);
        let mut seen = std::collections::HashSet::new();
        for n in 0..s.nodes() {
            let n = NodeId::from(n);
            for dir in [Dir::East, Dir::West, Dir::South, Dir::North] {
                assert!(seen.insert(s.channel(n, dir)));
            }
            assert!(seen.insert(s.injection(n)));
            assert!(seen.insert(s.ejection(n)));
        }
        assert!(seen.iter().all(|c| (c.0 as usize) < s.channel_slots()));
    }

    #[test]
    fn torus_distance_wraps() {
        let t = MeshShape::new_torus(4, 4);
        // Opposite corners: 2 hops on a torus, 6 on a mesh.
        assert_eq!(t.hop_distance(NodeId(0), NodeId(15)), 2);
        assert_eq!(MeshShape::new(4, 4).hop_distance(NodeId(0), NodeId(15)), 6);
        // Route length matches the wrapped distance for every pair.
        for a in 0..t.nodes() {
            for b in 0..t.nodes() {
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId::from(a), NodeId::from(b));
                assert_eq!(t.xy_route(a, b).len() as u32, t.hop_distance(a, b) + 2);
            }
        }
    }

    #[test]
    fn torus_neighbours_wrap() {
        let t = MeshShape::new_torus(3, 2);
        assert_eq!(t.neighbour(NodeId(0), Dir::West), Some(NodeId(2)));
        assert_eq!(t.neighbour(NodeId(0), Dir::North), Some(NodeId(3)));
        assert_eq!(t.neighbour(NodeId(2), Dir::East), Some(NodeId(0)));
    }

    #[test]
    fn neighbours_respect_edges() {
        let s = MeshShape::new(3, 2);
        assert_eq!(s.neighbour(NodeId(0), Dir::West), None);
        assert_eq!(s.neighbour(NodeId(0), Dir::North), None);
        assert_eq!(s.neighbour(NodeId(0), Dir::East), Some(NodeId(1)));
        assert_eq!(s.neighbour(NodeId(0), Dir::South), Some(NodeId(3)));
        assert_eq!(s.neighbour(NodeId(5), Dir::East), None);
        assert_eq!(s.neighbour(NodeId(5), Dir::South), None);
    }
}
