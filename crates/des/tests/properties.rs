//! Property-based tests for the DES kernel.

use commchar_des::{
    Calendar, CountTable, Facility, RunningStats, SimDuration, SimTime, TimeWeighted,
};
use proptest::prelude::*;

proptest! {
    /// Popping the calendar yields events in nondecreasing time order, and
    /// FIFO order within equal timestamps.
    #[test]
    fn calendar_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_ticks(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = cal.pop() {
            prop_assert_eq!(at.ticks(), t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "not stable: ({lt},{li}) then ({t},{i})");
            }
            last = Some((t, i));
        }
    }

    /// Welford statistics agree with the two-pass formulas.
    #[test]
    fn running_stats_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..500)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
    }

    /// Merging partitions of a sample equals accumulating the whole sample.
    #[test]
    fn running_stats_merge_is_partition_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 1usize..100,
    ) {
        let cut = split % xs.len().max(1);
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..cut] { a.record(x); }
        for &x in &xs[cut..] { b.record(x); }
        let mut whole = RunningStats::new();
        for &x in &xs { whole.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7 * whole.variance().max(1.0));
    }

    /// A facility never starts a reservation before it is requested nor
    /// before the previous reservation finished, and utilization stays in
    /// [0, 1].
    #[test]
    fn facility_is_a_fifo_server(reqs in prop::collection::vec((0u64..10_000, 1u64..100), 1..100)) {
        let mut sorted = reqs.clone();
        sorted.sort();
        let mut f = Facility::new(SimTime::ZERO);
        let mut prev_end = 0u64;
        for &(at, dur) in &sorted {
            let start = f.reserve(SimTime::from_ticks(at), SimDuration::from_ticks(dur));
            prop_assert!(start.ticks() >= at);
            prop_assert!(start.ticks() >= prev_end);
            prev_end = start.ticks() + dur;
        }
        let u = f.busy_fraction(SimTime::from_ticks(prev_end));
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// The time-weighted average of a 0/1 signal is the busy fraction.
    #[test]
    fn time_weighted_zero_one_signal(mut toggles in prop::collection::vec(1u64..1000, 1..40)) {
        toggles.sort_unstable();
        toggles.dedup();
        let mut tw = TimeWeighted::new(SimTime::ZERO);
        let mut busy = 0u64;
        let mut last = 0u64;
        let mut level = 0.0;
        for &t in &toggles {
            if level == 1.0 {
                busy += t - last;
            }
            level = 1.0 - level;
            tw.set(SimTime::from_ticks(t), level);
            last = t;
        }
        let end = last + 100;
        if level == 1.0 {
            busy += end - last;
        }
        let expect = busy as f64 / end as f64;
        prop_assert!((tw.average(SimTime::from_ticks(end)) - expect).abs() < 1e-9);
    }

    /// CountTable totals and fractions are consistent.
    #[test]
    fn count_table_fractions_sum_to_one(keys in prop::collection::vec(0u64..50, 1..300)) {
        let mut t = CountTable::new();
        for &k in &keys {
            t.add(k);
        }
        prop_assert_eq!(t.total(), keys.len() as u64);
        let total_fraction: f64 = t.iter().map(|(k, _)| t.fraction(k)).sum();
        prop_assert!((total_fraction - 1.0).abs() < 1e-9);
        let wm = t.weighted_mean();
        let mean = keys.iter().sum::<u64>() as f64 / keys.len() as f64;
        prop_assert!((wm - mean).abs() < 1e-9);
    }
}
