//! The event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event in the calendar.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers break timestamp ties in insertion order,
        // making the simulation deterministic.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A stable discrete-event calendar.
///
/// Events scheduled at equal timestamps are returned in the order they were
/// scheduled (FIFO), which the simulators rely on for determinism.
///
/// # Example
///
/// ```
/// use commchar_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ticks(5), 'x');
/// cal.schedule(SimTime::from_ticks(5), 'y');
/// cal.schedule(SimTime::from_ticks(1), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['z', 'x', 'y']);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Calendar<E> {
    /// Creates an empty calendar positioned at `SimTime::ZERO`.
    pub fn new() -> Self {
        Calendar { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event —
    /// scheduling into the past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "scheduled event at {at:?} before current time {:?}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the calendar clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        for &t in &[30u64, 10, 20] {
            cal.schedule(SimTime::from_ticks(t), t);
        }
        let times: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(4), ());
        cal.schedule(SimTime::from_ticks(9), ());
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ticks(4));
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ticks(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(10), ());
        cal.pop();
        cal.schedule(SimTime::from_ticks(5), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(3), 'a');
        assert_eq!(cal.peek_time(), Some(SimTime::from_ticks(3)));
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
    }
}
