//! The event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event in the calendar.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers break timestamp ties in insertion order,
        // making the simulation deterministic.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A stable discrete-event calendar.
///
/// Events scheduled at equal timestamps are returned in the order they were
/// scheduled (FIFO), which the simulators rely on for determinism.
///
/// # Example
///
/// ```
/// use commchar_des::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ticks(5), 'x');
/// cal.schedule(SimTime::from_ticks(5), 'y');
/// cal.schedule(SimTime::from_ticks(1), 'z');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['z', 'x', 'y']);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Calendar<E> {
    /// Creates an empty calendar positioned at `SimTime::ZERO`.
    pub fn new() -> Self {
        Calendar { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event —
    /// scheduling into the past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "scheduled event at {at:?} before current time {:?}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the calendar clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// A pending event in a [`KeyedCalendar`].
struct KeyedEntry<K, E> {
    time: SimTime,
    key: K,
    event: E,
}

impl<K: Ord, E> PartialEq for KeyedEntry<K, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<K: Ord, E> Eq for KeyedEntry<K, E> {}
impl<K: Ord, E> PartialOrd for KeyedEntry<K, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, E> Ord for KeyedEntry<K, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inversion: the smallest (time, key) pops first.
        (&other.time, &other.key).cmp(&(&self.time, &self.key))
    }
}

/// A calendar ordered by `(time, key)` rather than `(time, insertion order)`.
///
/// Partitioned (sharded) simulations cannot use [`Calendar`]'s insertion-seq
/// tie-break: the interleaving of `schedule` calls across shards depends on
/// how the event space was partitioned, so insertion order is not stable
/// under re-sharding. A `KeyedCalendar` instead breaks timestamp ties with a
/// caller-supplied key that is derived from simulation state alone (e.g.
/// `(event class, emitting site, per-site sequence)`), making the pop order
/// identical for any partitioning of the same logical event set.
///
/// Each shard owns one `KeyedCalendar`, whose clock ([`now`](Self::now)) is
/// that shard's local virtual time; [`advance_to`](Self::advance_to) moves
/// the clock to the start of a conservative time window without popping.
///
/// # Example
///
/// ```
/// use commchar_des::{KeyedCalendar, SimTime};
///
/// let mut cal = KeyedCalendar::new();
/// cal.schedule(SimTime::from_ticks(5), 2u32, 'b');
/// cal.schedule(SimTime::from_ticks(5), 1u32, 'a');
/// cal.schedule(SimTime::from_ticks(1), 9u32, 'z');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, _, e)| e)).collect();
/// assert_eq!(order, vec!['z', 'a', 'b']);
/// ```
pub struct KeyedCalendar<K: Ord, E> {
    heap: BinaryHeap<KeyedEntry<K, E>>,
    now: SimTime,
}

impl<K: Ord, E> KeyedCalendar<K, E> {
    /// Creates an empty calendar positioned at `SimTime::ZERO`.
    pub fn new() -> Self {
        KeyedCalendar { heap: BinaryHeap::new(), now: SimTime::ZERO }
    }

    /// Schedules `event` at absolute time `at`, tie-broken by `key`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the calendar clock — scheduling into
    /// the past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, key: K, event: E) {
        assert!(at >= self.now, "scheduled event at {at:?} before current time {:?}", self.now);
        self.heap.push(KeyedEntry { time: at, key, event });
    }

    /// Removes and returns the earliest `(time, key, event)`, advancing the
    /// calendar clock.
    pub fn pop(&mut self) -> Option<(SimTime, K, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.key, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the `(time, key)` of the next event without removing it.
    pub fn peek(&self) -> Option<(SimTime, &K)> {
        self.heap.peek().map(|e| (e.time, &e.key))
    }

    /// Advances the clock to `to` without popping — used by windowed shards
    /// entering a new conservative time window.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past, or if an event earlier than `to` is
    /// still pending (the window would have skipped it).
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "window start {to:?} before current time {:?}", self.now);
        if let Some(t) = self.peek_time() {
            assert!(t >= to, "window start {to:?} would skip pending event at {t:?}");
        }
        self.now = to;
    }

    /// The calendar clock: the later of the last popped event time and the
    /// last window start passed to [`advance_to`](Self::advance_to).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<K: Ord, E> Default for KeyedCalendar<K, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, E> std::fmt::Debug for KeyedCalendar<K, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedCalendar")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        for &t in &[30u64, 10, 20] {
            cal.schedule(SimTime::from_ticks(t), t);
        }
        let times: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(4), ());
        cal.schedule(SimTime::from_ticks(9), ());
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ticks(4));
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ticks(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(10), ());
        cal.pop();
        cal.schedule(SimTime::from_ticks(5), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(3), 'a');
        assert_eq!(cal.peek_time(), Some(SimTime::from_ticks(3)));
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
    }

    #[test]
    fn empty_calendar_drains_cleanly() {
        // A shard whose window holds no events must observe a clean drain:
        // pop yields None, peeks yield None, and the clock is untouched.
        let mut cal: Calendar<()> = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.len(), 0);
        assert_eq!(cal.peek_time(), None);
        assert_eq!(cal.pop(), None);
        assert_eq!(cal.now(), SimTime::ZERO);
        // Draining an emptied calendar behaves the same way.
        cal.schedule(SimTime::from_ticks(2), ());
        cal.pop();
        assert_eq!(cal.pop(), None);
        assert_eq!(cal.pop(), None);
        assert_eq!(cal.now(), SimTime::from_ticks(2));
        // And it accepts new events at or after the drained clock.
        cal.schedule(SimTime::from_ticks(2), ());
        assert_eq!(cal.pop(), Some((SimTime::from_ticks(2), ())));
    }

    #[test]
    fn simultaneous_events_interleaved_with_earlier_times_stay_fifo() {
        // Tie-break ordering under a mixed schedule: equal-time events keep
        // their global insertion order even when events at other timestamps
        // are scheduled in between.
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ticks(7), "seven-first");
        cal.schedule(SimTime::from_ticks(3), "three");
        cal.schedule(SimTime::from_ticks(7), "seven-second");
        cal.schedule(SimTime::from_ticks(1), "one");
        cal.schedule(SimTime::from_ticks(7), "seven-third");
        let order: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["one", "three", "seven-first", "seven-second", "seven-third"]);
    }

    #[test]
    fn keyed_calendar_orders_by_key_not_insertion() {
        let mut cal = KeyedCalendar::new();
        // Insert equal-time events with keys in descending order; pops must
        // come back in ascending key order regardless.
        for k in (0u32..50).rev() {
            cal.schedule(SimTime::from_ticks(9), k, k);
        }
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_calendar_pop_is_partition_invariant() {
        // The sharding contract: merging two disjoint schedules of the same
        // logical events yields the same pop order as scheduling them all in
        // one calendar, for any interleaving of the schedule calls.
        let events: Vec<(u64, (u8, u32))> =
            vec![(5, (0, 2)), (5, (1, 0)), (3, (1, 7)), (5, (0, 1)), (3, (0, 9))];
        let mut whole = KeyedCalendar::new();
        for &(t, k) in &events {
            whole.schedule(SimTime::from_ticks(t), k, k);
        }
        let mut interleaved = KeyedCalendar::new();
        for &(t, k) in events.iter().rev() {
            interleaved.schedule(SimTime::from_ticks(t), k, k);
        }
        let a: Vec<_> = std::iter::from_fn(|| whole.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| interleaved.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn keyed_calendar_advance_to_sets_window_clock() {
        let mut cal: KeyedCalendar<u32, ()> = KeyedCalendar::new();
        cal.advance_to(SimTime::from_ticks(10));
        assert_eq!(cal.now(), SimTime::from_ticks(10));
        // Scheduling before the window start is now a causality violation.
        cal.schedule(SimTime::from_ticks(10), 0, ());
        assert_eq!(cal.pop(), Some((SimTime::from_ticks(10), 0, ())));
    }

    #[test]
    #[should_panic(expected = "would skip pending event")]
    fn keyed_calendar_advance_past_pending_event_panics() {
        let mut cal = KeyedCalendar::new();
        cal.schedule(SimTime::from_ticks(4), 0u32, ());
        cal.advance_to(SimTime::from_ticks(5));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn keyed_calendar_scheduling_into_past_panics() {
        let mut cal = KeyedCalendar::new();
        cal.schedule(SimTime::from_ticks(10), 0u32, ());
        cal.pop();
        cal.schedule(SimTime::from_ticks(5), 1u32, ());
    }
}
