//! Single-server facilities with FIFO queues (CSIM-style resources).

use crate::{RunningStats, SimDuration, SimTime};

/// Aggregate statistics for a [`Facility`].
#[derive(Clone, Debug)]
pub struct FacilityStats {
    /// Number of completed services.
    pub completions: u64,
    /// Mean time a request waited in queue before service began.
    pub mean_queue_wait: f64,
    /// Mean service time.
    pub mean_service: f64,
    /// Fraction of time the server was busy over the observation window.
    pub utilization: f64,
}

/// A single-server resource with a FIFO queue, modelled after CSIM's
/// `facility`. Requests *reserve* the server for a duration; the facility
/// computes when each reservation actually acquires it and records
/// waiting-time and utilization statistics.
///
/// The facility is a passive timing calculator: callers drive it with
/// explicit timestamps, which is how the event-driven network model uses it
/// for channels.
///
/// # Example
///
/// ```
/// use commchar_des::{Facility, SimDuration, SimTime};
///
/// let mut link = Facility::new(SimTime::ZERO);
/// // Two back-to-back transfers of 10 ticks each, both requested at t=0:
/// let g1 = link.reserve(SimTime::ZERO, SimDuration::from_ticks(10));
/// let g2 = link.reserve(SimTime::ZERO, SimDuration::from_ticks(10));
/// assert_eq!(g1.ticks(), 0);   // starts immediately
/// assert_eq!(g2.ticks(), 10);  // queued behind the first
/// ```
#[derive(Debug)]
pub struct Facility {
    start: SimTime,
    /// Time at which the server next becomes free.
    free_at: SimTime,
    waits: RunningStats,
    services: RunningStats,
    total_service: SimDuration,
    completions: u64,
}

impl Facility {
    /// Creates an idle facility observed from `start`.
    pub fn new(start: SimTime) -> Self {
        Facility {
            start,
            free_at: start,
            waits: RunningStats::new(),
            services: RunningStats::new(),
            total_service: SimDuration::ZERO,
            completions: 0,
        }
    }

    /// Reserves the server for `service` ticks, requested at `at`.
    ///
    /// Returns the time service *starts* (i.e. `max(at, previous backlog)`);
    /// the reservation then occupies the server for `service` ticks.
    pub fn reserve(&mut self, at: SimTime, service: SimDuration) -> SimTime {
        let start = self.free_at.max(at);
        let wait = start.saturating_since(at);
        self.waits.record(wait.as_f64());
        self.services.record(service.as_f64());
        self.total_service += service;
        self.free_at = start + service;
        self.completions += 1;
        start
    }

    /// Time at which the server next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether a request arriving at `at` would be served immediately.
    pub fn idle_at(&self, at: SimTime) -> bool {
        self.free_at <= at
    }

    /// Statistics snapshot over the window from construction to `end`.
    pub fn stats(&self, end: SimTime) -> FacilityStats {
        FacilityStats {
            completions: self.completions,
            mean_queue_wait: self.waits.mean(),
            mean_service: self.services.mean(),
            utilization: self.busy_fraction(end),
        }
    }

    /// Fraction of the observation window the server was busy.
    ///
    /// Computed from accumulated service time, so back-to-back reservations
    /// are counted exactly; capped at 1.0 when `end` precedes the backlog.
    pub fn busy_fraction(&self, end: SimTime) -> f64 {
        let span = end.saturating_since(self.start).as_f64();
        if span == 0.0 {
            return 0.0;
        }
        (self.total_service.as_f64() / span).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_backlog_ordering() {
        let mut f = Facility::new(SimTime::ZERO);
        let s1 = f.reserve(SimTime::from_ticks(0), SimDuration::from_ticks(5));
        let s2 = f.reserve(SimTime::from_ticks(1), SimDuration::from_ticks(5));
        let s3 = f.reserve(SimTime::from_ticks(20), SimDuration::from_ticks(5));
        assert_eq!(s1.ticks(), 0);
        assert_eq!(s2.ticks(), 5); // queued
        assert_eq!(s3.ticks(), 20); // idle again
        assert_eq!(f.free_at().ticks(), 25);
    }

    #[test]
    fn idle_query() {
        let mut f = Facility::new(SimTime::ZERO);
        assert!(f.idle_at(SimTime::ZERO));
        f.reserve(SimTime::ZERO, SimDuration::from_ticks(10));
        assert!(!f.idle_at(SimTime::from_ticks(9)));
        assert!(f.idle_at(SimTime::from_ticks(10)));
    }

    #[test]
    fn utilization_counts_service_time() {
        let mut f = Facility::new(SimTime::ZERO);
        f.reserve(SimTime::ZERO, SimDuration::from_ticks(30));
        f.reserve(SimTime::from_ticks(50), SimDuration::from_ticks(20));
        let stats = f.stats(SimTime::from_ticks(100));
        assert_eq!(stats.completions, 2);
        assert!((stats.utilization - 0.5).abs() < 1e-12);
        assert!((stats.mean_service - 25.0).abs() < 1e-12);
    }

    #[test]
    fn release_and_reserve_at_identical_timestamps_is_deterministic() {
        // Two requests land exactly when the facility frees up (tick 10):
        // the release is processed first (no artificial wait), then the
        // tied requests serve back-to-back in reservation order. This order
        // is pinned because windowed shards replay facility activity from
        // merged mailboxes and must agree with the serial schedule.
        let mut f = Facility::new(SimTime::ZERO);
        let s0 = f.reserve(SimTime::ZERO, SimDuration::from_ticks(10));
        let s1 = f.reserve(SimTime::from_ticks(10), SimDuration::from_ticks(3));
        let s2 = f.reserve(SimTime::from_ticks(10), SimDuration::from_ticks(3));
        assert_eq!(s0.ticks(), 0);
        assert_eq!(s1.ticks(), 10); // starts the instant the server frees
        assert_eq!(s2.ticks(), 13); // FIFO behind the tied arrival
        assert!(f.idle_at(SimTime::from_ticks(16)));
        let stats = f.stats(SimTime::from_ticks(16));
        assert_eq!(stats.completions, 3);
        // The tied arrival that went second waited exactly one service time.
        assert!((stats.mean_queue_wait - 1.0).abs() < 1e-12);
        assert!((stats.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_respects_observation_start() {
        let mut f = Facility::new(SimTime::from_ticks(100));
        f.reserve(SimTime::from_ticks(100), SimDuration::from_ticks(50));
        assert!((f.busy_fraction(SimTime::from_ticks(200)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wait_statistics() {
        let mut f = Facility::new(SimTime::ZERO);
        f.reserve(SimTime::ZERO, SimDuration::from_ticks(10));
        f.reserve(SimTime::ZERO, SimDuration::from_ticks(10)); // waits 10
        let stats = f.stats(SimTime::from_ticks(20));
        assert!((stats.mean_queue_wait - 5.0).abs() < 1e-12);
    }
}
