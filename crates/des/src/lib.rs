//! # commchar-des
//!
//! A small, deterministic discrete-event simulation (DES) kernel, standing in
//! for the CSIM package the original paper built its network simulator on.
//!
//! The kernel provides:
//!
//! - [`SimTime`] / [`SimDuration`] — integer simulated time (ticks).
//! - [`Calendar`] — a stable event calendar: events with equal timestamps
//!   dequeue in insertion order, which keeps simulations deterministic.
//! - [`KeyedCalendar`] — a calendar ordered by `(time, key)` for partitioned
//!   simulations, where insertion order is not stable under re-sharding;
//!   each shard's calendar doubles as its local clock.
//! - [`Facility`] — a single-server resource with a FIFO queue and
//!   utilization accounting, mirroring CSIM's `facility` abstraction.
//! - Statistics accumulators ([`RunningStats`], [`TimeWeighted`],
//!   [`CountTable`]) used throughout the network and protocol simulators.
//!
//! # Example
//!
//! ```
//! use commchar_des::{Calendar, SimTime};
//!
//! let mut cal: Calendar<&'static str> = Calendar::new();
//! cal.schedule(SimTime::from_ticks(10), "b");
//! cal.schedule(SimTime::from_ticks(5), "a");
//! let (t, ev) = cal.pop().unwrap();
//! assert_eq!((t.ticks(), ev), (5, "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod facility;
mod stats;
mod time;

pub use calendar::{Calendar, KeyedCalendar};
pub use facility::{Facility, FacilityStats};
pub use stats::{CountTable, RunningStats, TimeWeighted};
pub use time::{SimDuration, SimTime};
