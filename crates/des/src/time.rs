//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of simulated time, in integer *ticks*.
///
/// The interpretation of a tick is chosen by the layer above: the
/// execution-driven simulator uses processor cycles, the trace-driven
/// replayer uses sub-microsecond ticks. Integer time keeps simulations
/// exactly deterministic and free of floating-point drift.
///
/// # Example
///
/// ```
/// use commchar_des::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_ticks(42);
/// assert_eq!(t.ticks(), 42);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_ticks(42));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in integer ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ticks` ticks after the origin.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the number of ticks since the origin.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the duration since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Converts to a floating-point tick count (for statistics only).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ticks` ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the length in ticks.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Converts to a floating-point tick count (for statistics only).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(ticks: u64) -> Self {
        SimDuration(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_ticks(100);
        let d = SimDuration::from_ticks(25);
        assert_eq!((t + d).ticks(), 125);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn max_and_saturation() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).ticks(), 6);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_subtraction_panics_in_debug() {
        let _ = SimTime::from_ticks(1) - SimTime::from_ticks(2);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ticks).sum();
        assert_eq!(total.ticks(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_ticks(7)), "7");
        assert_eq!(format!("{:?}", SimTime::from_ticks(7)), "t7");
        assert_eq!(format!("{:?}", SimDuration::from_ticks(7)), "Δ7");
    }
}
