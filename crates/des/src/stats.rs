//! Statistics accumulators used by the simulators.

use std::collections::BTreeMap;

use crate::SimTime;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use commchar_des::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] { s.record(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), or 0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Smallest observation, or +∞ if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or −∞ if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal, used for channel
/// and facility utilization.
///
/// # Example
///
/// ```
/// use commchar_des::{SimTime, TimeWeighted};
/// let mut u = TimeWeighted::new(SimTime::ZERO);
/// u.set(SimTime::from_ticks(0), 1.0);  // busy
/// u.set(SimTime::from_ticks(6), 0.0);  // idle
/// assert_eq!(u.average(SimTime::from_ticks(10)), 0.6);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
}

impl TimeWeighted {
    /// Creates an accumulator whose signal is 0 from `start`.
    pub fn new(start: SimTime) -> Self {
        TimeWeighted { start, last_change: start, current: 0.0, weighted_sum: 0.0 }
    }

    /// Sets the signal value at time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the previous change.
    pub fn set(&mut self, at: SimTime, value: f64) {
        debug_assert!(at >= self.last_change);
        self.weighted_sum += self.current * at.saturating_since(self.last_change).as_f64();
        self.last_change = at;
        self.current = value;
    }

    /// Current signal value.
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Time-weighted average over `[start, end]`.
    pub fn average(&self, end: SimTime) -> f64 {
        let span = end.saturating_since(self.start).as_f64();
        if span == 0.0 {
            return 0.0;
        }
        let tail = self.current * end.saturating_since(self.last_change).as_f64();
        (self.weighted_sum + tail) / span
    }
}

/// A sparse histogram over integer keys (message lengths, hop counts, …).
///
/// # Example
///
/// ```
/// use commchar_des::CountTable;
/// let mut t = CountTable::new();
/// t.add(8);
/// t.add(8);
/// t.add(40);
/// assert_eq!(t.count(8), 2);
/// assert_eq!(t.total(), 3);
/// assert!((t.fraction(40) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CountTable {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl CountTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        CountTable::default()
    }

    /// Increments the count for `key`.
    pub fn add(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds `n` observations of `key`.
    pub fn add_n(&mut self, key: u64, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Count recorded for `key`.
    pub fn count(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations equal to `key` (0 if the table is empty).
    pub fn fraction(&self, key: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(key) as f64 / self.total as f64
        }
    }

    /// Iterates over `(key, count)` pairs in increasing key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Mean of the keys weighted by count.
    pub fn weighted_mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(&k, &v)| k as f64 * v as f64).sum();
        sum / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [3.5, -1.0, 2.25, 8.0, 0.0, 4.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 8.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut s1 = RunningStats::new();
        for &x in &a {
            s1.record(x);
        }
        let mut s2 = RunningStats::new();
        for &x in &b {
            s2.record(x);
        }
        let mut whole = RunningStats::new();
        for &x in a.iter().chain(&b) {
            whole.record(x);
        }
        s1.merge(&s2);
        assert!((s1.mean() - whole.mean()).abs() < 1e-12);
        assert!((s1.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(s1.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.record(5.0);
        let before = s.mean();
        s.merge(&RunningStats::new());
        assert_eq!(s.mean(), before);
        let mut empty = RunningStats::new();
        empty.merge(&s);
        assert_eq!(empty.count(), 1);
    }

    #[test]
    fn cv_of_constant_stream_is_zero() {
        let mut s = RunningStats::new();
        for _ in 0..5 {
            s.record(3.0);
        }
        assert!(s.cv().abs() < 1e-12);
    }

    #[test]
    fn time_weighted_partial_busy() {
        let mut u = TimeWeighted::new(SimTime::ZERO);
        u.set(SimTime::from_ticks(2), 1.0);
        u.set(SimTime::from_ticks(5), 0.0);
        // busy during [2,5) of [0,10] => 0.3
        assert!((u.average(SimTime::from_ticks(10)) - 0.3).abs() < 1e-12);
        assert_eq!(u.value(), 0.0);
    }

    #[test]
    fn time_weighted_empty_span() {
        let u = TimeWeighted::new(SimTime::from_ticks(5));
        assert_eq!(u.average(SimTime::from_ticks(5)), 0.0);
    }

    #[test]
    fn count_table_basics() {
        let mut t = CountTable::new();
        t.add_n(16, 3);
        t.add(48);
        assert_eq!(t.total(), 4);
        assert_eq!(t.count(16), 3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(16, 3), (48, 1)]);
        assert!((t.weighted_mean() - (16.0 * 3.0 + 48.0) / 4.0).abs() < 1e-12);
    }
}
