//! Property-based tests for the message-passing runtime: collective
//! semantics, clock monotonicity, and trace well-formedness under random
//! communication schedules.

use commchar_sp2::{run_mp, Sp2Config};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// reduce-then-broadcast equals allreduce for random contributions.
    #[test]
    fn allreduce_sums_correctly(nprocs in 2usize..7, vals in prop::collection::vec(-100.0f64..100.0, 7), len in 1usize..5) {
        let vals2 = vals.clone();
        run_mp(Sp2Config::new(nprocs), move |r| {
            let contrib: Vec<f64> = (0..len).map(|i| vals2[r.rank() % 7] + i as f64).collect();
            let got = r.allreduce_sum(&contrib);
            let expect: Vec<f64> = (0..len)
                .map(|i| (0..nprocs).map(|q| vals2[q % 7] + i as f64).sum())
                .collect();
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-9, "{g} vs {e}");
            }
        });
    }

    /// All-to-all delivers exactly the chunk each sender addressed to each
    /// receiver, for arbitrary chunk sizes.
    #[test]
    fn alltoall_is_a_personalized_exchange(nprocs in 2usize..7, chunk_len in 1usize..6) {
        run_mp(Sp2Config::new(nprocs), move |r| {
            let me = r.rank();
            let chunks: Vec<Vec<f64>> = (0..nprocs)
                .map(|q| (0..chunk_len).map(|i| (me * 100 + q * 10 + i) as f64).collect())
                .collect();
            let got = r.alltoall(chunks);
            for (q, chunk) in got.iter().enumerate() {
                let expect: Vec<f64> =
                    (0..chunk_len).map(|i| (q * 100 + me * 10 + i) as f64).collect();
                assert_eq!(chunk, &expect, "from rank {q}");
            }
        });
    }

    /// The trace is well-formed and every dependency id refers to an
    /// earlier message, for random send/recv schedules.
    #[test]
    fn traces_are_well_formed(nprocs in 2usize..6, rounds in 1usize..6) {
        let out = run_mp(Sp2Config::new(nprocs), move |r| {
            let me = r.rank();
            let n = r.size();
            for round in 0..rounds {
                // Ring exchange with payload depending on the round.
                let to = (me + 1) % n;
                let from = (me + n - 1) % n;
                r.send(to, &vec![round as f64; 1 + round], round as u32);
                let got = r.recv(from, round as u32);
                assert_eq!(got.len(), 1 + round);
                r.barrier();
            }
        });
        out.trace.check().unwrap();
        // Clocks advanced and the trace is non-trivial.
        prop_assert!(out.exec_ticks > 0);
        prop_assert!(out.trace.len() as usize >= nprocs * rounds);
    }

    /// Per-rank message ids are unique and timestamps per source are
    /// nondecreasing.
    #[test]
    fn per_source_timestamps_monotone(nprocs in 2usize..6, msgs in 1usize..10) {
        let out = run_mp(Sp2Config::new(nprocs), move |r| {
            let me = r.rank();
            let n = r.size();
            if me == 0 {
                for i in 0..msgs {
                    for q in 1..n {
                        r.send(q, &[i as f64], i as u32);
                    }
                }
            } else {
                for i in 0..msgs {
                    let _ = r.recv(0, i as u32);
                }
            }
        });
        let mut per_src: std::collections::HashMap<u16, u64> = Default::default();
        let mut ids = std::collections::HashSet::new();
        for e in out.trace.events() {
            prop_assert!(ids.insert(e.id), "duplicate id {}", e.id);
            let last = per_src.entry(e.src).or_insert(0);
            prop_assert!(e.t >= *last, "source {} went back in time", e.src);
            *last = e.t;
        }
    }

    /// The SP2 cost model is affine: doubling payload bytes adds exactly
    /// the per-byte slope.
    #[test]
    fn cost_model_is_affine(bytes in 8u32..100_000) {
        let cfg = Sp2Config::new(2);
        let a = cfg.software_overhead_us(bytes);
        let b = cfg.software_overhead_us(bytes + 1000);
        prop_assert!((b - a - 1000.0 * cfg.per_byte_us).abs() < 1e-9);
    }
}
