//! SP2 communication cost model parameters.

/// Configuration of the message-passing machine model.
///
/// Logical clocks tick at `ticks_per_us` per microsecond; the defaults
/// encode the paper's measured SP2 software overhead (`73.42 µs + 0.0463
/// µs/byte`, split evenly between sender and receiver) and a simple wire
/// model for the SP2's high-performance switch.
#[derive(Clone, Copy, Debug)]
pub struct Sp2Config {
    /// Number of ranks.
    pub nprocs: usize,
    /// Fixed software overhead per transfer, microseconds.
    pub base_overhead_us: f64,
    /// Per-byte software overhead, microseconds.
    pub per_byte_us: f64,
    /// Wire (switch) latency per message, microseconds.
    pub wire_latency_us: f64,
    /// Wire time per byte, microseconds (≈ 1/40 MB/s).
    pub wire_per_byte_us: f64,
    /// Clock resolution: ticks per microsecond.
    pub ticks_per_us: f64,
}

impl Sp2Config {
    /// Creates a model with the paper's SP2 constants.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one rank");
        Sp2Config {
            nprocs,
            base_overhead_us: 73.42,
            per_byte_us: 4.63e-2,
            wire_latency_us: 1.0,
            wire_per_byte_us: 0.025,
            ticks_per_us: 100.0,
        }
    }

    /// Total software overhead for an `x`-byte transfer, in microseconds —
    /// the paper's validated `4.63e-2·x + 73.42`.
    pub fn software_overhead_us(&self, bytes: u32) -> f64 {
        self.base_overhead_us + self.per_byte_us * bytes as f64
    }

    /// Converts microseconds to clock ticks (rounded).
    pub fn us_to_ticks(&self, us: f64) -> u64 {
        (us * self.ticks_per_us).round() as u64
    }

    /// Sender-side overhead in ticks (half the software overhead).
    pub fn send_ticks(&self, bytes: u32) -> u64 {
        self.us_to_ticks(self.software_overhead_us(bytes) / 2.0)
    }

    /// Receiver-side overhead in ticks (the other half).
    pub fn recv_ticks(&self, bytes: u32) -> u64 {
        self.us_to_ticks(self.software_overhead_us(bytes) / 2.0)
    }

    /// Wire transit time in ticks.
    pub fn wire_ticks(&self, bytes: u32) -> u64 {
        self.us_to_ticks(self.wire_latency_us + self.wire_per_byte_us * bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = Sp2Config::new(8);
        assert!((c.software_overhead_us(0) - 73.42).abs() < 1e-12);
        assert!((c.software_overhead_us(1000) - (73.42 + 46.3)).abs() < 1e-9);
    }

    #[test]
    fn tick_conversion_rounds() {
        let c = Sp2Config::new(2);
        assert_eq!(c.us_to_ticks(1.0), 100);
        assert_eq!(c.us_to_ticks(0.004), 0);
        assert_eq!(c.us_to_ticks(0.006), 1);
    }

    #[test]
    fn halves_sum_to_whole() {
        let c = Sp2Config::new(2);
        let total = c.send_ticks(500) + c.recv_ticks(500);
        let direct = c.us_to_ticks(c.software_overhead_us(500));
        assert!((total as i64 - direct as i64).abs() <= 1);
    }
}
