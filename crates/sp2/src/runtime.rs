//! The rank threads, point-to-point layer, collectives and tracing.

use std::collections::VecDeque;
use std::sync::Arc;

use commchar_trace::{CommEvent, CommTrace, EventKind};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::Sp2Config;

/// Tag reserved for fault propagation: a dying rank poisons its peers so
/// blocked receives fail fast instead of hanging.
const POISON_TAG: u32 = u32::MAX;

/// A message in flight between ranks.
#[derive(Clone, Debug)]
struct Packet {
    id: u64,
    src: usize,
    tag: u32,
    /// Arrival time at the destination (sender clock + overhead + wire).
    arrival: u64,
    data: Vec<f64>,
}

/// The output of a message-passing run.
#[derive(Debug)]
pub struct MpRun {
    /// Application-level communication trace (with causal annotations).
    pub trace: CommTrace,
    /// Final logical clock of the slowest rank, in ticks.
    pub exec_ticks: u64,
    /// Number of ranks.
    pub nprocs: usize,
}

impl MpRun {
    /// The trace in the packed columnar format of `commchar-tracestore` —
    /// the compact alternative to [`CommTrace::to_jsonl`] for traces
    /// headed to disk.
    pub fn packed_trace(&self) -> Vec<u8> {
        commchar_tracestore::pack_trace(&self.trace)
    }

    /// Streams the trace into `out` through a
    /// [`TraceWriter`](commchar_tracestore::TraceWriter) without an
    /// intermediate buffer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `out`.
    pub fn write_packed<W: std::io::Write>(
        &self,
        out: W,
    ) -> Result<W, commchar_tracestore::TraceStoreError> {
        let mut w = commchar_tracestore::TraceWriter::new(out, self.trace.nodes())?;
        for &e in self.trace.events() {
            w.push(e)?;
        }
        w.finish()
    }
}

/// Per-rank execution context: point-to-point operations, collectives,
/// logical clock, and tracing.
///
/// Payloads are `f64` slices (the NAS kernels ship doubles); a message of
/// `k` values costs `8k` bytes in the model.
pub struct Rank {
    id: usize,
    n: usize,
    clock: u64,
    cfg: Sp2Config,
    seq: u64,
    last_recv: Option<u64>,
    inbox: Receiver<Packet>,
    pending: VecDeque<Packet>,
    outs: Vec<Sender<Packet>>,
    events: Arc<Mutex<Vec<CommEvent>>>,
    sent: u64,
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank").field("id", &self.id).field("clock", &self.clock).finish()
    }
}

impl Rank {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.id
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Current logical clock in ticks.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Accounts local computation time in microseconds.
    pub fn compute_us(&mut self, us: f64) {
        self.clock += self.cfg.us_to_ticks(us);
    }

    fn next_id(&mut self) -> u64 {
        let id = ((self.id as u64) << 40) | self.seq;
        self.seq += 1;
        id
    }

    /// Sends `data` to `dst` with a matching `tag`. Non-blocking in real
    /// time; the logical clock advances by the sender-side SP2 overhead.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or equals this rank.
    pub fn send(&mut self, dst: usize, data: &[f64], tag: u32) {
        assert!(dst < self.n, "rank {dst} out of range");
        assert_ne!(dst, self.id, "self-send is not allowed");
        let bytes = (data.len() * 8).max(8) as u32;
        let t_issue = self.clock;
        self.clock += self.cfg.send_ticks(bytes);
        let arrival = self.clock + self.cfg.wire_ticks(bytes);
        let id = self.next_id();
        let kind = if data.len() <= 2 { EventKind::Control } else { EventKind::Data };
        let mut ev = CommEvent::new(id, t_issue, self.id as u16, dst as u16, bytes, kind);
        if let Some(dep) = self.last_recv {
            ev = ev.after(dep);
        }
        self.events.lock().push(ev);
        self.sent += 1;
        self.outs[dst]
            .send(Packet { id, src: self.id, tag, arrival, data: data.to_vec() })
            .expect("rank hung up");
    }

    /// Receives the next message from `src` with `tag`, blocking until it
    /// arrives. The logical clock advances to the message arrival plus the
    /// receiver-side overhead.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range, equals this rank, or if the peer
    /// exits without sending (runtime teardown).
    pub fn recv(&mut self, src: usize, tag: u32) -> Vec<f64> {
        assert!(src < self.n, "rank {src} out of range");
        assert_ne!(src, self.id, "self-receive is not allowed");
        // Check buffered out-of-order packets first.
        if let Some(pos) = self.pending.iter().position(|p| p.src == src && p.tag == tag) {
            let p = self.pending.remove(pos).unwrap();
            return self.consume(p);
        }
        loop {
            let p = self.inbox.recv().expect("peer rank terminated while we were receiving");
            assert_ne!(p.tag, POISON_TAG, "peer rank {} panicked while we were receiving", p.src);
            if p.src == src && p.tag == tag {
                return self.consume(p);
            }
            self.pending.push_back(p);
        }
    }

    fn consume(&mut self, p: Packet) -> Vec<f64> {
        let bytes = (p.data.len() * 8).max(8) as u32;
        self.clock = self.clock.max(p.arrival) + self.cfg.recv_ticks(bytes);
        self.last_recv = Some(p.id);
        p.data
    }

    /// Linear barrier rooted at rank 0: everyone reports to p0, p0 releases
    /// everyone — the flat algorithm of the period's MPL runtimes.
    pub fn barrier(&mut self) {
        const TAG: u32 = u32::MAX - 1;
        if self.id == 0 {
            for q in 1..self.n {
                let _ = self.recv(q, TAG);
            }
            for q in 1..self.n {
                self.send(q, &[0.0], TAG);
            }
        } else {
            self.send(0, &[0.0], TAG);
            let _ = self.recv(0, TAG);
        }
    }

    /// Linear broadcast from `root`: the root sends to every other rank.
    /// Non-roots pass anything (typically `vec![]`) and receive the data.
    pub fn bcast(&mut self, root: usize, data: Vec<f64>) -> Vec<f64> {
        const TAG: u32 = u32::MAX - 2;
        if self.id == root {
            for q in 0..self.n {
                if q != root {
                    self.send(q, &data, TAG);
                }
            }
            data
        } else {
            self.recv(root, TAG)
        }
    }

    /// Binomial-tree broadcast from `root`: log₂(n) rounds; rank r (in
    /// root-relative numbering) receives from `r − 2^k` and forwards to
    /// `r + 2^k`. The modern algorithm — used by the collective-algorithm
    /// ablation to show how the spatial "favorite processor" signature
    /// depends on the library's implementation, not just the application.
    pub fn bcast_tree(&mut self, root: usize, data: Vec<f64>) -> Vec<f64> {
        const TAG: u32 = u32::MAX - 6;
        let n = self.n;
        let rel = (self.id + n - root) % n;
        let mut data = data;
        if rel != 0 {
            // Receive from the parent: clear the lowest set bit.
            let parent_rel = rel & (rel - 1);
            let parent = (parent_rel + root) % n;
            data = self.recv(parent, TAG);
        }
        // Forward to children: set bits above the lowest set bit of rel.
        let lowest = if rel == 0 { n.next_power_of_two() } else { rel & rel.wrapping_neg() };
        let mut bit = 1;
        while bit < lowest && rel + bit < n {
            let child = (rel + bit + root) % n;
            self.send(child, &data, TAG);
            bit <<= 1;
        }
        data
    }

    /// Linear element-wise sum reduction to `root`. Every rank contributes
    /// a slice of equal length; the root returns the sums (others get their
    /// own contribution back).
    ///
    /// # Panics
    ///
    /// Panics (on the root) if contributions disagree in length.
    pub fn reduce_sum(&mut self, root: usize, contrib: &[f64]) -> Vec<f64> {
        const TAG: u32 = u32::MAX - 3;
        if self.id == root {
            let mut acc = contrib.to_vec();
            for q in 0..self.n {
                if q == root {
                    continue;
                }
                let part = self.recv(q, TAG);
                assert_eq!(part.len(), acc.len(), "reduce contribution length mismatch");
                for (a, b) in acc.iter_mut().zip(&part) {
                    *a += b;
                }
            }
            acc
        } else {
            self.send(root, contrib, TAG);
            contrib.to_vec()
        }
    }

    /// Binomial-tree sum reduction to `root`: log₂(n) rounds; partial sums
    /// combine up the tree, spreading the receive load that the linear
    /// algorithm concentrates at the root.
    pub fn reduce_sum_tree(&mut self, root: usize, contrib: &[f64]) -> Vec<f64> {
        const TAG: u32 = u32::MAX - 7;
        let n = self.n;
        let rel = (self.id + n - root) % n;
        let mut acc = contrib.to_vec();
        // Receive from children (mirror of bcast_tree's sends), largest
        // subtree first so child sends complete in tree order.
        let lowest = if rel == 0 { n.next_power_of_two() } else { rel & rel.wrapping_neg() };
        let mut bits = Vec::new();
        let mut bit = 1;
        while bit < lowest && rel + bit < n {
            bits.push(bit);
            bit <<= 1;
        }
        for &bit in bits.iter().rev() {
            let child = (rel + bit + root) % n;
            let part = self.recv(child, TAG);
            assert_eq!(part.len(), acc.len(), "reduce contribution length mismatch");
            for (a, b) in acc.iter_mut().zip(&part) {
                *a += b;
            }
        }
        if rel != 0 {
            let parent_rel = rel & (rel - 1);
            let parent = (parent_rel + root) % n;
            self.send(parent, &acc, TAG);
        }
        acc
    }

    /// All-reduce: reduce to rank 0, then broadcast — both rooted at p0,
    /// reinforcing the favorite-processor pattern the paper observes.
    pub fn allreduce_sum(&mut self, contrib: &[f64]) -> Vec<f64> {
        let reduced = self.reduce_sum(0, contrib);
        if self.id == 0 {
            self.bcast(0, reduced)
        } else {
            self.bcast(0, Vec::new())
        }
    }

    /// Personalized all-to-all: `chunks[q]` goes to rank `q`; returns the
    /// chunks received (index = sender). Pairwise ring exchange.
    ///
    /// # Panics
    ///
    /// Panics if `chunks.len() != size()`.
    pub fn alltoall(&mut self, chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        const TAG: u32 = u32::MAX - 4;
        assert_eq!(chunks.len(), self.n, "need one chunk per rank");
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.n];
        out[self.id] = chunks[self.id].clone();
        for k in 1..self.n {
            let to = (self.id + k) % self.n;
            let from = (self.id + self.n - k) % self.n;
            self.send(to, &chunks[to], TAG);
            out[from] = self.recv(from, TAG);
        }
        out
    }

    /// Linear gather to `root` (index = sender).
    pub fn gather(&mut self, root: usize, contrib: &[f64]) -> Vec<Vec<f64>> {
        const TAG: u32 = u32::MAX - 5;
        if self.id == root {
            let mut out = vec![Vec::new(); self.n];
            out[root] = contrib.to_vec();
            for q in (0..self.n).filter(|&q| q != root) {
                out[q] = self.recv(q, TAG);
            }
            out
        } else {
            self.send(root, contrib, TAG);
            Vec::new()
        }
    }
}

/// Runs `body` on every rank and collects the application-level trace.
///
/// # Panics
///
/// Panics if any rank thread panics.
pub fn run_mp<B>(cfg: Sp2Config, body: B) -> MpRun
where
    B: Fn(&mut Rank) + Send + Sync + 'static,
{
    let n = cfg.nprocs;
    let mut senders: Vec<Sender<Packet>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Packet>>> = Vec::with_capacity(n);
    // Keep one clone of every receiver alive until all ranks have joined,
    // so a fire-and-forget send to an already-finished rank (legal, e.g.
    // the last round of a ping-pong) does not error.
    let mut keepalive: Vec<Receiver<Packet>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        keepalive.push(rx.clone());
        receivers.push(Some(rx));
    }
    let events = Arc::new(Mutex::new(Vec::new()));
    let body = Arc::new(body);
    let mut handles = Vec::with_capacity(n);
    for (id, slot) in receivers.iter_mut().enumerate() {
        let mut rank = Rank {
            id,
            n,
            clock: 0,
            cfg,
            seq: 0,
            last_recv: None,
            inbox: slot.take().expect("receiver taken twice"),
            pending: VecDeque::new(),
            outs: senders.clone(),
            events: Arc::clone(&events),
            sent: 0,
        };
        let body = Arc::clone(&body);
        handles.push(
            std::thread::Builder::new()
                .name(format!("sp2-r{id}"))
                .spawn(move || {
                    // A panicking rank must poison its peers before dying,
                    // or their blocked receives would hang forever.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        body(&mut rank);
                    }));
                    match result {
                        Ok(()) => rank.clock,
                        Err(payload) => {
                            for (q, out) in rank.outs.iter().enumerate() {
                                if q != rank.id {
                                    let _ = out.send(Packet {
                                        id: u64::MAX,
                                        src: rank.id,
                                        tag: POISON_TAG,
                                        arrival: rank.clock,
                                        data: Vec::new(),
                                    });
                                }
                            }
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
                .expect("failed to spawn rank thread"),
        );
    }
    drop(senders);

    let mut exec_ticks = 0;
    for h in handles {
        exec_ticks = exec_ticks.max(h.join().expect("rank thread panicked"));
    }
    drop(keepalive);
    let mut evs = Arc::try_unwrap(events).expect("all ranks joined").into_inner();
    evs.sort_by_key(|e| (e.t, e.id));
    let mut trace = CommTrace::new(n);
    for e in evs {
        trace.push(e);
    }
    trace.check().expect("runtime produced an inconsistent trace");
    MpRun { trace, exec_ticks, nprocs: n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_clock_matches_model() {
        let cfg = Sp2Config::new(2);
        let out = run_mp(cfg, |r| {
            if r.rank() == 0 {
                r.send(1, &[1.0; 100], 7);
                let back = r.recv(1, 8);
                assert_eq!(back.len(), 100);
            } else {
                let data = r.recv(0, 7);
                r.send(0, &data, 8);
            }
        });
        assert_eq!(out.trace.len(), 2);
        let bytes = 800u32;
        let one_way = cfg.send_ticks(bytes) + cfg.wire_ticks(bytes) + cfg.recv_ticks(bytes);
        // Round trip ≈ 2 one-way transfers.
        assert_eq!(out.exec_ticks, 2 * one_way);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = run_mp(Sp2Config::new(2), |r| {
            if r.rank() == 0 {
                r.send(1, &[1.0], 1);
                r.send(1, &[2.0], 2);
            } else {
                // Receive in reverse tag order.
                let b = r.recv(0, 2);
                let a = r.recv(0, 1);
                assert_eq!((a[0], b[0]), (1.0, 2.0));
            }
        });
        assert_eq!(out.trace.len(), 2);
    }

    #[test]
    fn collectives_compute_correctly() {
        run_mp(Sp2Config::new(5), |r| {
            let me = r.rank() as f64;
            // reduce
            let sum = r.reduce_sum(0, &[me, 2.0 * me]);
            if r.rank() == 0 {
                assert_eq!(sum, vec![10.0, 20.0]);
            }
            // bcast
            let v = r.bcast(2, if r.rank() == 2 { vec![9.0] } else { vec![] });
            assert_eq!(v, vec![9.0]);
            // allreduce
            let all = r.allreduce_sum(&[1.0]);
            assert_eq!(all, vec![5.0]);
            // barrier (smoke)
            r.barrier();
            // gather
            let g = r.gather(0, &[me]);
            if r.rank() == 0 {
                assert_eq!(g.iter().map(|v| v[0]).collect::<Vec<_>>(), vec![0., 1., 2., 3., 4.]);
            }
        });
    }

    #[test]
    fn alltoall_permutes_chunks() {
        run_mp(Sp2Config::new(4), |r| {
            let me = r.rank() as f64;
            let chunks: Vec<Vec<f64>> = (0..4).map(|q| vec![me * 10.0 + q as f64; 3]).collect();
            let got = r.alltoall(chunks);
            for (q, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![q as f64 * 10.0 + me; 3], "from rank {q}");
            }
        });
    }

    #[test]
    fn tree_collectives_compute_correctly() {
        for n in [2usize, 3, 4, 5, 7, 8] {
            run_mp(Sp2Config::new(n), move |r| {
                let me = r.rank() as f64;
                for root in 0..n.min(3) {
                    // Tree broadcast.
                    let v = r.bcast_tree(
                        root,
                        if r.rank() == root { vec![root as f64, 9.0] } else { vec![] },
                    );
                    assert_eq!(v, vec![root as f64, 9.0], "bcast_tree root {root} rank {me}");
                    // Tree reduce.
                    let sum = r.reduce_sum_tree(root, &[me]);
                    if r.rank() == root {
                        let expect: f64 = (0..n).map(|q| q as f64).sum();
                        assert_eq!(sum, vec![expect], "reduce_sum_tree root {root}");
                    }
                }
            });
        }
    }

    #[test]
    fn tree_bcast_spreads_the_load() {
        // Linear bcast: root sends n−1 messages. Tree bcast: root sends
        // only ⌈log₂ n⌉.
        let count_root_sends = |tree: bool| {
            let out = run_mp(Sp2Config::new(8), move |r| {
                for _ in 0..4 {
                    let data = if r.rank() == 0 { vec![1.0; 8] } else { vec![] };
                    if tree {
                        let _ = r.bcast_tree(0, data);
                    } else {
                        let _ = r.bcast(0, data);
                    }
                }
            });
            out.trace.events().iter().filter(|e| e.src == 0).count()
        };
        let linear = count_root_sends(false);
        let tree = count_root_sends(true);
        assert_eq!(linear, 4 * 7);
        assert_eq!(tree, 4 * 3, "root forwards to log2(8) children");
    }

    #[test]
    fn trace_records_dependencies() {
        let out = run_mp(Sp2Config::new(2), |r| {
            if r.rank() == 0 {
                r.send(1, &[1.0], 0);
            } else {
                let _ = r.recv(0, 0);
                r.send(0, &[2.0], 1); // causally after the receive
            }
        });
        let reply = out.trace.events().iter().find(|e| e.src == 1).unwrap();
        let first = out.trace.events().iter().find(|e| e.src == 0).unwrap();
        assert_eq!(reply.depends_on, Some(first.id));
    }

    #[test]
    fn deterministic_clocks() {
        let go = || {
            run_mp(Sp2Config::new(4), |r| {
                let contrib = vec![r.rank() as f64; 16];
                let _ = r.allreduce_sum(&contrib);
                r.barrier();
                let chunks: Vec<Vec<f64>> = (0..4).map(|q| vec![q as f64; 8]).collect();
                let _ = r.alltoall(chunks);
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.exec_ticks, b.exec_ticks);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn p0_is_the_collective_favorite() {
        // Many reduces: every rank's destination histogram should be
        // dominated by p0.
        let out = run_mp(Sp2Config::new(8), |r| {
            for _ in 0..20 {
                let _ = r.reduce_sum(0, &[1.0]);
            }
        });
        let p = commchar_trace::profile::profile(&out.trace);
        for s in &p.sources[1..] {
            assert_eq!(s.dest_counts[0], 20, "rank {} must send everything to p0", s.src);
        }
    }
}
