//! # commchar-sp2
//!
//! A message-passing runtime with the IBM SP2's validated communication
//! cost model — the *static strategy* substrate of the methodology.
//!
//! The paper ran its message-passing applications (3D-FFT and MG from the
//! NAS suite) on a real IBM SP2 and traced communication calls at the
//! application (MPI) level with an IBM utility; the traces were then fed to
//! the 2-D mesh simulator. This crate reproduces the tracing half:
//! applications written against [`Rank`] (send/recv plus the collectives
//! the NAS codes use) execute for real on one thread per rank, while a
//! per-rank logical clock advances by the paper's measured SP2 software
//! overhead — `4.63e-2·x + 73.42 µs` to transfer `x` bytes — plus a simple
//! wire model. Every point-to-point message is recorded as a
//! [`commchar_trace::CommEvent`], annotated with the id of the message the
//! sender most recently *received* so the causal replayer can preserve
//! happens-before order on the simulated mesh.
//!
//! Collectives decompose into point-to-point messages rooted at rank 0
//! (linear algorithms, as in the early MPL/MPI implementations), which is
//! exactly what makes p0 the "favorite" processor in the paper's spatial
//! distributions while the *volume* distribution stays uniform.
//!
//! # Example
//!
//! ```
//! use commchar_sp2::{run_mp, Sp2Config};
//!
//! let cfg = Sp2Config::new(4);
//! let out = run_mp(cfg, |rank| {
//!     let me = rank.rank() as f64;
//!     let sum = rank.reduce_sum(0, &[me]);
//!     let total = rank.bcast(0, if rank.rank() == 0 { sum } else { vec![] });
//!     assert_eq!(total[0], 0.0 + 1.0 + 2.0 + 3.0);
//! });
//! assert!(out.trace.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod runtime;

pub use config::Sp2Config;
pub use runtime::{run_mp, MpRun, Rank};
