//! Property-based tests for traces, profiling and causal replay.

use commchar_mesh::MeshConfig;
use commchar_trace::profile::{interarrival_aggregate, interarrival_by_source, profile};
use commchar_trace::replay::CausalReplayer;
use commchar_trace::{CommEvent, CommTrace, EventKind};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random trace with a random dependency structure. Dependencies are only
/// attached when the dependency strictly precedes the dependent event in
/// `(t, id)` order — the validity rule real executions guarantee and
/// `CommTrace::check` enforces.
fn arb_trace(nodes: usize, max: usize) -> impl Strategy<Value = CommTrace> {
    prop::collection::vec(
        (0..nodes as u16, 0..nodes as u16, 1u32..100, 0u64..50_000, prop::option::of(0usize..max)),
        1..max,
    )
    .prop_map(move |raw| {
        let mut trace = CommTrace::new(nodes);
        let mut id = 0u64;
        let mut times: Vec<(u64, u64)> = Vec::new(); // (t, id) per pushed event
        for (s, d, bytes, t, dep) in raw {
            if s == d {
                continue;
            }
            let mut e = CommEvent::new(id, t, s, d, bytes, EventKind::Data);
            if let Some(dep) = dep {
                if let Some(&(dep_t, dep_id)) = times.get(dep % times.len().max(1)) {
                    if (dep_t, dep_id) < (t, id) {
                        e = e.after(dep_id);
                    }
                }
            }
            trace.push(e);
            times.push((t, id));
            id += 1;
        }
        trace
    })
}

proptest! {
    /// Profile totals equal direct sums.
    #[test]
    fn profile_conserves_counts(trace in arb_trace(8, 100)) {
        prop_assume!(!trace.is_empty());
        let p = profile(&trace);
        prop_assert_eq!(p.messages, trace.len() as u64);
        let bytes: u64 = trace.events().iter().map(|e| e.bytes as u64).sum();
        prop_assert_eq!(p.bytes, bytes);
        let per_source: u64 = p.sources.iter().map(|s| s.messages).sum();
        prop_assert_eq!(per_source, p.messages);
        prop_assert_eq!(p.kind_counts.iter().sum::<u64>(), p.messages);
    }

    /// Inter-arrival gaps are nonnegative and count = msgs − active sources.
    #[test]
    fn interarrival_counts(trace in arb_trace(6, 80)) {
        prop_assume!(!trace.is_empty());
        let by_src = interarrival_by_source(&trace);
        let agg = interarrival_aggregate(&trace);
        prop_assert!(agg.iter().all(|&g| g >= 0.0));
        prop_assert_eq!(agg.len(), trace.len().saturating_sub(1));
        let active = by_src.iter().filter(|g| !g.is_empty()).count()
            + by_src.iter().filter(|g| g.is_empty()).count();
        prop_assert_eq!(active, 6);
        for gaps in &by_src {
            prop_assert!(gaps.iter().all(|&g| g >= 0.0));
        }
    }

    /// Causal replay delivers every event exactly once, injects
    /// per-source in trace order, and never violates a dependency.
    #[test]
    fn causal_replay_preserves_happens_before(trace in arb_trace(8, 60)) {
        prop_assume!(!trace.is_empty());
        let cfg = MeshConfig::for_nodes(8);
        let log = CausalReplayer::new(cfg).replay(&trace);
        prop_assert_eq!(log.records().len(), trace.len());
        log.check_invariants(cfg.shape).unwrap();

        let by_id: HashMap<u64, (u64, u64)> =
            log.records().iter().map(|r| (r.id, (r.inject, r.delivered))).collect();
        for e in trace.events() {
            if let Some(dep) = e.depends_on {
                let (inject, _) = by_id[&e.id];
                let (_, dep_delivered) = by_id[&dep];
                prop_assert!(
                    inject >= dep_delivered,
                    "event {} injected at {inject} before dep {dep} delivered at {dep_delivered}",
                    e.id
                );
            }
        }

        // Per-source order preserved.
        let mut order: HashMap<u16, Vec<u64>> = HashMap::new();
        let mut events: Vec<_> = trace.events().to_vec();
        events.sort_by_key(|e| (e.t, e.id));
        for e in &events {
            order.entry(e.src).or_default().push(e.id);
        }
        for (src, ids) in order {
            let mut injects: Vec<u64> = ids.iter().map(|id| by_id[id].0).collect();
            let sorted = {
                let mut s = injects.clone();
                s.sort_unstable();
                s
            };
            prop_assert_eq!(&injects, &sorted, "source {} reordered its sends", src);
            injects.clear();
        }
    }

    /// Naive replay keeps the original timestamps verbatim.
    #[test]
    fn naive_replay_is_verbatim(trace in arb_trace(6, 40)) {
        prop_assume!(!trace.is_empty());
        let cfg = MeshConfig::for_nodes(6);
        let log = CausalReplayer::new(cfg).replay_naive(&trace);
        let by_id: HashMap<u64, u64> = log.records().iter().map(|r| (r.id, r.inject)).collect();
        for e in trace.events() {
            prop_assert_eq!(by_id[&e.id], e.t);
        }
    }

    /// Replay is deterministic.
    #[test]
    fn replay_is_deterministic(trace in arb_trace(5, 40)) {
        prop_assume!(!trace.is_empty());
        let cfg = MeshConfig::for_nodes(5);
        let rep = CausalReplayer::new(cfg);
        let a = rep.replay(&trace);
        let b = rep.replay(&trace);
        prop_assert_eq!(a.records(), b.records());
    }
}
