//! Trace-driven network simulation with causality preservation.
//!
//! Naively replaying a trace at its recorded timestamps ignores the
//! feedback between network latency and application progress — the classic
//! trace-driven pitfall the paper cites (Goldschmidt & Hennessy). The
//! [`CausalReplayer`] instead preserves two things from the original run:
//!
//! 1. **per-source think times** — the gap between consecutive sends from
//!    the same processor, and
//! 2. **happens-before edges** — a send annotated with `depends_on = m`
//!    is never injected before message `m` has been *delivered* in the
//!    replayed execution.
//!
//! The injection time of event `e` from source `s` becomes
//! `max(inject(prev_s) + think(e), delivered(dep(e)))`, so a slower (or
//! faster) simulated network stretches (or compresses) the schedule exactly
//! the way the original machine would have.

use std::collections::{BinaryHeap, HashMap};

use commchar_des::SimTime;
use commchar_mesh::{
    EngineError, EngineKind, IncrementalFlit, LogSink, MeshConfig, NetEngine, NetLog, NetMessage,
    NodeId, OnlineWormhole, StreamingLog,
};

use crate::CommTrace;

/// Why a replay could not complete — surfaced as a value on the fallible
/// paths ([`CausalReplayer::try_replay`] and friends) and as a panic with
/// the same message on the infallible ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace failed [`CommTrace::check`].
    BrokenTrace(String),
    /// The trace names more processors than the mesh has nodes.
    MeshTooSmall {
        /// Processors in the trace.
        trace_nodes: usize,
        /// Nodes in the mesh.
        mesh_nodes: usize,
    },
    /// The causal schedule drained without injecting every event — a
    /// dependency cycle, or a dependency on a never-sent message.
    Stalled {
        /// Events injected before the stall.
        injected: usize,
        /// Events in the trace.
        total: usize,
    },
    /// The network engine rejected an injection.
    Engine(EngineError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BrokenTrace(why) => {
                write!(f, "trace must be internally consistent: {why}")
            }
            ReplayError::MeshTooSmall { trace_nodes, mesh_nodes } => write!(
                f,
                "trace has more processors than the mesh has nodes \
                 ({trace_nodes} vs {mesh_nodes})"
            ),
            ReplayError::Stalled { injected, total } => write!(
                f,
                "causal replay stalled: dependency cycle or dep on never-sent message \
                 ({injected} of {total} events injected)"
            ),
            ReplayError::Engine(e) => write!(f, "network engine rejected injection: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<EngineError> for ReplayError {
    fn from(e: EngineError) -> Self {
        ReplayError::Engine(e)
    }
}

/// Causality-preserving trace replayer. See the module docs.
#[derive(Debug)]
pub struct CausalReplayer {
    cfg: MeshConfig,
}

#[derive(PartialEq, Eq)]
struct Ready {
    inject: u64,
    src: u16,
    idx: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (inject, src).
        (other.inject, other.src).cmp(&(self.inject, self.src))
    }
}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl CausalReplayer {
    /// Creates a replayer targeting the given mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        CausalReplayer { cfg }
    }

    /// Replays the trace through the wormhole network and returns the log.
    ///
    /// # Panics
    ///
    /// Panics if the trace fails [`CommTrace::check`] or references nodes
    /// outside the mesh.
    pub fn replay(&self, trace: &CommTrace) -> NetLog {
        self.replay_into(trace, NetLog::new())
    }

    /// Replays the trace with online statistics only — O(bins + P²)
    /// memory however long the trace, at the price of losing per-message
    /// records. Shorthand for [`replay_into`](Self::replay_into) with a
    /// [`StreamingLog`] sized for the mesh.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`replay`](Self::replay).
    pub fn replay_streaming(&self, trace: &CommTrace) -> StreamingLog {
        self.replay_into(trace, StreamingLog::new(self.cfg.shape.nodes()))
    }

    /// Replays the trace through a network engine selected at runtime,
    /// returning its retained log or a [`ReplayError`].
    pub fn try_replay(&self, trace: &CommTrace, kind: EngineKind) -> Result<NetLog, ReplayError> {
        match kind {
            EngineKind::Recurrence => self.replay_engine(trace, OnlineWormhole::new(self.cfg)),
            EngineKind::FlitLevel { sim_jobs } => {
                self.replay_engine(trace, IncrementalFlit::new(self.cfg).with_sim_jobs(sim_jobs))
            }
        }
    }

    /// Replays the trace through a runtime-selected engine with online
    /// statistics only — the fallible, engine-generic counterpart of
    /// [`replay_streaming`](Self::replay_streaming).
    pub fn try_replay_streaming(
        &self,
        trace: &CommTrace,
        kind: EngineKind,
    ) -> Result<StreamingLog, ReplayError> {
        let sink = StreamingLog::new(self.cfg.shape.nodes());
        match kind {
            EngineKind::Recurrence => {
                self.replay_engine(trace, OnlineWormhole::with_sink(self.cfg, sink))
            }
            EngineKind::FlitLevel { sim_jobs } => {
                let net = IncrementalFlit::with_sink(self.cfg, sink).with_sim_jobs(sim_jobs);
                self.replay_engine(trace, net)
            }
        }
    }

    /// Replays the trace, delivering every completed message to `sink`.
    /// Shorthand for [`replay_engine`](Self::replay_engine) over the
    /// recurrence model; any [`LogSink`] works.
    ///
    /// # Panics
    ///
    /// Panics if the trace fails [`CommTrace::check`] or references nodes
    /// outside the mesh.
    pub fn replay_into<S: LogSink>(&self, trace: &CommTrace, sink: S) -> S {
        self.replay_engine(trace, OnlineWormhole::with_sink(self.cfg, sink))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Replays the trace through any closed-loop [`NetEngine`] — the
    /// generic core every other replay entry point wraps. The engine's
    /// feedback (each send's reported delivery time) resolves
    /// happens-before edges, so a higher-fidelity engine reshapes the
    /// injected schedule exactly as the paper's Figure 1 loop would.
    pub fn replay_engine<E: NetEngine>(
        &self,
        trace: &CommTrace,
        mut net: E,
    ) -> Result<E::Sink, ReplayError> {
        trace.check().map_err(ReplayError::BrokenTrace)?;
        if trace.nodes() > self.cfg.shape.nodes() {
            return Err(ReplayError::MeshTooSmall {
                trace_nodes: trace.nodes(),
                mesh_nodes: self.cfg.shape.nodes(),
            });
        }

        // Per-source event lists in trace order, with think times.
        let n = trace.nodes();
        let mut per_src: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n]; // (event idx, think)
        let mut last_t: Vec<Option<u64>> = vec![None; n];
        let mut events: Vec<&crate::CommEvent> = trace.events().iter().collect();
        events.sort_by_key(|e| (e.t, e.id));
        for (idx, e) in events.iter().enumerate() {
            let s = e.src as usize;
            let think = match last_t[s] {
                Some(prev) => e.t.saturating_sub(prev),
                None => e.t,
            };
            last_t[s] = Some(e.t);
            per_src[s].push((idx as u64, think));
        }

        let mut delivered: HashMap<u64, u64> = HashMap::new(); // msg id -> tail delivery
        let mut waiting: HashMap<u64, Vec<u16>> = HashMap::new(); // dep id -> sources parked
        let mut next_idx: Vec<usize> = vec![0; n]; // cursor into per_src
        let mut last_inject: Vec<u64> = vec![0; n];
        let mut heap: BinaryHeap<Ready> = BinaryHeap::new();

        // Computes the next ready entry for a source, if its dependency is
        // resolved; otherwise parks the source on the dependency.
        let arm = |s: usize,
                   next_idx: &[usize],
                   last_inject: &[u64],
                   delivered: &HashMap<u64, u64>,
                   waiting: &mut HashMap<u64, Vec<u16>>,
                   heap: &mut BinaryHeap<Ready>| {
            let Some(&(eidx, think)) = per_src[s].get(next_idx[s]) else { return };
            let e = events[eidx as usize];
            let base = last_inject[s] + think;
            match e.depends_on {
                Some(dep) => match delivered.get(&dep) {
                    Some(&d) => {
                        heap.push(Ready { inject: base.max(d), src: s as u16, idx: eidx as usize })
                    }
                    None => waiting.entry(dep).or_default().push(s as u16),
                },
                None => heap.push(Ready { inject: base, src: s as u16, idx: eidx as usize }),
            }
        };

        for s in 0..n {
            arm(s, &next_idx, &last_inject, &delivered, &mut waiting, &mut heap);
        }

        let mut injected = 0usize;
        while let Some(r) = heap.pop() {
            let e = events[r.idx];
            let d = net.send(NetMessage {
                id: e.id,
                src: NodeId(e.src),
                dst: NodeId(e.dst),
                bytes: e.bytes,
                inject: SimTime::from_ticks(r.inject),
            })?;
            injected += 1;
            delivered.insert(e.id, d.ticks());
            let s = e.src as usize;
            last_inject[s] = r.inject;
            next_idx[s] += 1;
            arm(s, &next_idx, &last_inject, &delivered, &mut waiting, &mut heap);
            if let Some(parked) = waiting.remove(&e.id) {
                for ps in parked {
                    arm(ps as usize, &next_idx, &last_inject, &delivered, &mut waiting, &mut heap);
                }
            }
        }
        if injected != events.len() {
            return Err(ReplayError::Stalled { injected, total: events.len() });
        }
        Ok(net.finish())
    }

    /// Naive replay at recorded timestamps — the pitfall baseline (no
    /// feedback, no causality). Useful to quantify the distortion the
    /// causal replayer removes.
    pub fn replay_naive(&self, trace: &CommTrace) -> NetLog {
        let mut events: Vec<&crate::CommEvent> = trace.events().iter().collect();
        events.sort_by_key(|e| (e.t, e.id));
        let mut net = OnlineWormhole::new(self.cfg);
        for e in events {
            net.send(NetMessage {
                id: e.id,
                src: NodeId(e.src),
                dst: NodeId(e.dst),
                bytes: e.bytes,
                inject: SimTime::from_ticks(e.t),
            });
        }
        net.into_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommEvent, EventKind};

    fn ev(id: u64, t: u64, src: u16, dst: u16, bytes: u32) -> CommEvent {
        CommEvent::new(id, t, src, dst, bytes, EventKind::Data)
    }

    #[test]
    fn replay_without_deps_keeps_think_times() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1, 8));
        tr.push(ev(1, 100, 0, 1, 8));
        let cfg = MeshConfig::for_nodes(4);
        let log = CausalReplayer::new(cfg).replay(&tr);
        let r1 = log.records().iter().find(|r| r.id == 1).unwrap();
        assert_eq!(r1.inject, 100);
    }

    #[test]
    fn dependency_delays_injection() {
        // Event 1 (from p1) depends on event 0 (p0 -> p1); in the original
        // trace it fires at t=1, but the network can't deliver msg 0 by
        // then, so the replay must push it to msg 0's delivery.
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1, 256));
        tr.push(ev(1, 1, 1, 2, 8).after(0));
        let cfg = MeshConfig::for_nodes(4);
        let rep = CausalReplayer::new(cfg);
        let log = rep.replay(&tr);
        let d0 = log.records().iter().find(|r| r.id == 0).unwrap().delivered;
        let i1 = log.records().iter().find(|r| r.id == 1).unwrap().inject;
        assert!(i1 >= d0, "dependent send at {i1} before delivery {d0}");

        // The naive replay violates causality.
        let naive = rep.replay_naive(&tr);
        let n1 = naive.records().iter().find(|r| r.id == 1).unwrap().inject;
        assert!(n1 < d0, "naive replay should expose the pitfall");
    }

    #[test]
    fn chains_of_dependencies_replay_in_order() {
        let mut tr = CommTrace::new(4);
        // Ping-pong: 0 -> 1 -> 0 -> 1 ...
        for round in 0..10u64 {
            let id = round;
            let (s, d) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            let mut e = ev(id, round * 10, s, d, 64);
            if id > 0 {
                e = e.after(id - 1);
            }
            tr.push(e);
        }
        let cfg = MeshConfig::for_nodes(4);
        let log = CausalReplayer::new(cfg).replay(&tr);
        let mut delivered = std::collections::HashMap::new();
        for r in log.records() {
            delivered.insert(r.id, r.delivered);
        }
        for r in log.records() {
            if r.id > 0 {
                assert!(r.inject >= delivered[&(r.id - 1)]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "internally consistent")]
    fn broken_trace_rejected() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1, 8).after(42));
        CausalReplayer::new(MeshConfig::for_nodes(4)).replay(&tr);
    }

    #[test]
    fn streaming_replay_matches_batch_replay() {
        let mut tr = CommTrace::new(8);
        let mut id = 0u64;
        for t in 0..200u64 {
            let src = (t % 8) as u16;
            let dst = ((t * 5 + 1) % 8) as u16;
            if src != dst {
                let mut e = ev(id, t * 9, src, dst, 16 + (t % 48) as u32);
                if id > 4 && t % 3 == 0 {
                    e = e.after(id - 4);
                }
                tr.push(e);
                id += 1;
            }
        }
        let cfg = MeshConfig::for_nodes(8);
        let rep = CausalReplayer::new(cfg);
        let log = rep.replay(&tr);
        let stream = rep.replay_streaming(&tr);
        assert_eq!(log.records().len() as u64, stream.messages());
        let a = log.summary();
        let b = stream.summary();
        assert_eq!(a.span, b.span);
        assert!((a.mean_latency - b.mean_latency).abs() < 1e-9);
        assert!((a.mean_blocked - b.mean_blocked).abs() < 1e-9);
        assert!((a.throughput - b.throughput).abs() < 1e-12);
        assert_eq!(stream.spatial_counts(), log.spatial_counts(8));
        assert_eq!(log.utilization(), stream.utilization());
    }

    #[test]
    fn try_replay_recurrence_matches_infallible_replay() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1, 8));
        tr.push(ev(1, 50, 2, 3, 24).after(0));
        tr.push(ev(2, 100, 0, 1, 8));
        let cfg = MeshConfig::for_nodes(4);
        let rep = CausalReplayer::new(cfg);
        let a = rep.replay(&tr);
        let b = rep.try_replay(&tr, EngineKind::Recurrence).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.utilization(), b.utilization());
    }

    #[test]
    fn flit_engine_replays_and_preserves_causality() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1, 256));
        tr.push(ev(1, 1, 1, 2, 8).after(0));
        let cfg = MeshConfig::for_nodes(4);
        let log = CausalReplayer::new(cfg).try_replay(&tr, EngineKind::flit()).unwrap();
        assert_eq!(log.records().len(), 2);
        // The dependent send was injected no earlier than the delivery
        // time the flit engine reported for its dependency at send time.
        // (The final logged delivery can only be revised by *later*
        // traffic, of which there is none here, so it must also hold.)
        let d0 = log.records().iter().find(|r| r.id == 0).unwrap().delivered;
        let i1 = log.records().iter().find(|r| r.id == 1).unwrap().inject;
        assert!(i1 >= d0, "dependent send at {i1} before delivery {d0}");
    }

    #[test]
    fn broken_trace_is_a_typed_error() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1, 8).after(42));
        let err = CausalReplayer::new(MeshConfig::for_nodes(4))
            .try_replay(&tr, EngineKind::Recurrence)
            .unwrap_err();
        assert!(matches!(err, ReplayError::BrokenTrace(_)), "{err}");
        assert!(err.to_string().contains("internally consistent"));
    }

    #[test]
    fn oversized_trace_is_a_typed_error() {
        let mut tr = CommTrace::new(16);
        tr.push(ev(0, 0, 14, 15, 8));
        let err = CausalReplayer::new(MeshConfig::for_nodes(4))
            .try_replay(&tr, EngineKind::Recurrence)
            .unwrap_err();
        assert_eq!(err, ReplayError::MeshTooSmall { trace_nodes: 16, mesh_nodes: 4 });
    }

    #[test]
    fn all_messages_accounted_for() {
        let mut tr = CommTrace::new(8);
        let mut id = 0;
        for t in 0..50u64 {
            let src = (t % 8) as u16;
            let dst = ((t * 5 + 1) % 8) as u16;
            if src != dst {
                tr.push(ev(id, t * 7, src, dst, 32));
                id += 1;
            }
        }
        let cfg = MeshConfig::for_nodes(8);
        let log = CausalReplayer::new(cfg).replay(&tr);
        assert_eq!(log.records().len(), tr.len());
        log.check_invariants(cfg.shape).unwrap();
    }
}
