//! Trace profiling: per-source workload summaries.
//!
//! Two extraction paths share one definition of the profile:
//!
//! - **Batch** — [`extract`] walks an in-memory [`CommTrace`] and hands
//!   back the profile plus raw temporal samples ([`GapExtract`]).
//! - **Streaming** — [`SegmentExtract::from_events`] condenses one
//!   time-sorted block of events into a constant-size partial (grouped
//!   gap runs, integer counters), and [`StreamAccum`] folds the partials
//!   in time order, stitching the boundary gaps between consecutive
//!   blocks. The result ([`StreamExtract`]) represents exactly the same
//!   gap multisets and profile integers as the batch pass, without ever
//!   materializing the event stream.

use std::collections::BTreeMap;

use commchar_stats::burstiness::{BurstAccum, Burstiness};
use commchar_stats::merge::GroupedSample;

use crate::{CommEvent, CommTrace, EventKind};

/// Per-source profile of a trace.
#[derive(Clone, Debug)]
pub struct SourceProfile {
    /// Source processor.
    pub src: u16,
    /// Messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Mean inter-send gap (think time) in ticks.
    pub mean_gap: f64,
    /// Destination message counts (index = destination).
    pub dest_counts: Vec<u64>,
    /// Destination byte counts (index = destination).
    pub dest_bytes: Vec<u64>,
}

/// Whole-trace profile.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// One entry per source processor.
    pub sources: Vec<SourceProfile>,
    /// Total messages.
    pub messages: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Mean message length in bytes.
    pub mean_bytes: f64,
    /// Span between first and last generation time.
    pub span: u64,
    /// Message counts by kind (control, data, sync).
    pub kind_counts: [u64; 3],
}

/// Incremental profile builder — the sink form of [`profile`], for
/// callers that stream events (a packed-trace reader, a live profiler)
/// instead of holding a whole [`CommTrace`].
///
/// Push events in any order; [`finish`](ProfileAccum::finish) produces
/// exactly the [`TraceProfile`] that [`profile`] would compute over the
/// same events.
#[derive(Clone, Debug)]
pub struct ProfileAccum {
    sources: Vec<SourceProfile>,
    times: Vec<Vec<u64>>,
    lengths: Vec<u32>,
    kind_counts: [u64; 3],
    first: u64,
    last: u64,
    total_bytes: u64,
    messages: u64,
}

/// Everything one streaming pass over a trace yields for the
/// characterization pipeline: the volume/spatial profile plus the raw
/// temporal samples, so the analyzer never re-walks the event list.
#[derive(Clone, Debug)]
pub struct GapExtract {
    /// The whole-trace profile ([`ProfileAccum::finish`]'s output):
    /// per-source message/byte/destination counts and the volume totals.
    pub profile: TraceProfile,
    /// Per-source inter-send gaps in ticks, identical to
    /// [`interarrival_by_source`] over the same events.
    pub per_source: Vec<Vec<f64>>,
    /// Aggregate inter-arrival gaps across all sources in time order,
    /// identical to [`interarrival_aggregate`] over the same events.
    pub aggregate: Vec<f64>,
    /// Every event's payload length, in push order.
    pub lengths: Vec<u32>,
}

impl ProfileAccum {
    /// Starts an empty profile over `nodes` processors.
    pub fn new(nodes: usize) -> Self {
        ProfileAccum {
            sources: (0..nodes)
                .map(|s| SourceProfile {
                    src: s as u16,
                    messages: 0,
                    bytes: 0,
                    mean_gap: 0.0,
                    dest_counts: vec![0; nodes],
                    dest_bytes: vec![0; nodes],
                })
                .collect(),
            times: vec![Vec::new(); nodes],
            lengths: Vec::new(),
            kind_counts: [0; 3],
            first: u64::MAX,
            last: 0,
            total_bytes: 0,
            messages: 0,
        }
    }

    /// Accounts one event.
    ///
    /// # Panics
    ///
    /// Panics if the event's endpoints are out of range for the node
    /// count given to [`new`](ProfileAccum::new).
    pub fn push(&mut self, e: &CommEvent) {
        let s = &mut self.sources[e.src as usize];
        s.messages += 1;
        s.bytes += e.bytes as u64;
        s.dest_counts[e.dst as usize] += 1;
        s.dest_bytes[e.dst as usize] += e.bytes as u64;
        self.times[e.src as usize].push(e.t);
        self.lengths.push(e.bytes);
        self.total_bytes += e.bytes as u64;
        self.first = self.first.min(e.t);
        self.last = self.last.max(e.t);
        self.messages += 1;
        self.kind_counts[match e.kind {
            EventKind::Control => 0,
            EventKind::Data => 1,
            EventKind::Sync => 2,
        }] += 1;
    }

    /// Completes the per-source gap statistics and returns the profile.
    pub fn finish(self) -> TraceProfile {
        self.finish_with_gaps().profile
    }

    /// Completes the profile **and** hands back the temporal raw samples
    /// the same pass already ordered: per-source and aggregate
    /// inter-arrival gaps, plus the observed message lengths.
    ///
    /// This is the single-streaming-pass entry point of the
    /// characterization pipeline — one walk over the events feeds the
    /// temporal fits, the spatial classification (via the profile's
    /// `dest_counts` rows) and the volume attribute, where the analyzer
    /// previously re-traversed and re-sorted the trace once per view.
    pub fn finish_with_gaps(mut self) -> GapExtract {
        let mut per_source = Vec::with_capacity(self.times.len());
        for (s, ts) in self.sources.iter_mut().zip(&mut self.times) {
            ts.sort_unstable();
            if ts.len() >= 2 {
                let total: u64 = ts.windows(2).map(|w| w[1] - w[0]).sum();
                s.mean_gap = total as f64 / (ts.len() - 1) as f64;
            }
            per_source.push(ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect());
        }
        // Aggregate arrival order: merge the per-source sorted times. A
        // flat sort is simplest and the per-source vectors are already
        // sorted, so this is the merge pass of a mergesort in disguise.
        let mut all: Vec<u64> = Vec::with_capacity(self.messages as usize);
        for ts in &self.times {
            all.extend_from_slice(ts);
        }
        all.sort_unstable();
        let aggregate = all.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let profile = TraceProfile {
            sources: self.sources,
            messages: self.messages,
            bytes: self.total_bytes,
            mean_bytes: if self.messages == 0 {
                0.0
            } else {
                self.total_bytes as f64 / self.messages as f64
            },
            span: if self.messages == 0 { 0 } else { self.last - self.first },
            kind_counts: self.kind_counts,
        };
        GapExtract { profile, per_source, aggregate, lengths: self.lengths }
    }
}

/// One streaming pass over a trace yielding the profile plus the temporal
/// raw samples — see [`ProfileAccum::finish_with_gaps`].
pub fn extract(trace: &CommTrace) -> GapExtract {
    let mut accum = ProfileAccum::new(trace.nodes());
    for e in trace.events() {
        accum.push(e);
    }
    accum.finish_with_gaps()
}

/// Events were not in nondecreasing time order where the streaming
/// pipeline requires them sorted (within a block, or across blocks fed to
/// [`StreamAccum::absorb`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsortedError {
    /// The later timestamp seen first.
    pub prev: u64,
    /// The earlier timestamp that arrived after it.
    pub at: u64,
}

impl std::fmt::Display for UnsortedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "events out of time order: t={} after t={}", self.at, self.prev)
    }
}

impl std::error::Error for UnsortedError {}

/// Constant-size partial extraction of one time-sorted block of events:
/// per-source counters, grouped gap runs, and the block's ordered
/// aggregate gaps (bounded by the block length). Built independently per
/// block — in parallel, if the caller wants — and folded in time order by
/// [`StreamAccum::absorb`].
#[derive(Clone, Debug)]
pub struct SegmentExtract {
    nodes: usize,
    msgs: Vec<u64>,
    bytes: Vec<u64>,
    dest_counts: Vec<Vec<u64>>,
    dest_bytes: Vec<Vec<u64>>,
    /// Per-source (first, last) send times; `None` when the source is
    /// silent in this block.
    src_span: Vec<Option<(u64, u64)>>,
    src_gaps: Vec<GroupedSample>,
    /// Aggregate gaps internal to the block, in time order (the burstiness
    /// accumulator needs the order; the fit only needs the runs).
    agg_gaps: Vec<f64>,
    agg_grouped: GroupedSample,
    span: Option<(u64, u64)>,
    total_bytes: u64,
    kind_counts: [u64; 3],
    length_counts: BTreeMap<u32, u64>,
}

impl SegmentExtract {
    /// Extracts one block. `events` must be sorted by time (nondecreasing)
    /// — packed CCTRACE1 traces are — or an [`UnsortedError`] is returned.
    ///
    /// # Panics
    ///
    /// Panics if an event's endpoints are out of range for `nodes`.
    pub fn from_events(nodes: usize, events: &[CommEvent]) -> Result<Self, UnsortedError> {
        let mut seg = SegmentExtract {
            nodes,
            msgs: vec![0; nodes],
            bytes: vec![0; nodes],
            dest_counts: vec![vec![0; nodes]; nodes],
            dest_bytes: vec![vec![0; nodes]; nodes],
            src_span: vec![None; nodes],
            src_gaps: vec![GroupedSample::new(); nodes],
            agg_gaps: Vec::new(),
            agg_grouped: GroupedSample::new(),
            span: None,
            total_bytes: 0,
            kind_counts: [0; 3],
            length_counts: BTreeMap::new(),
        };
        let mut prev_by_src: Vec<Option<u64>> = vec![None; nodes];
        let mut prev: Option<u64> = None;
        for e in events {
            if let Some(p) = prev {
                if e.t < p {
                    return Err(UnsortedError { prev: p, at: e.t });
                }
                seg.agg_gaps.push((e.t - p) as f64);
            }
            prev = Some(e.t);
            let s = e.src as usize;
            if let Some(p) = prev_by_src[s] {
                seg.src_gaps[s].insert((e.t - p) as f64, 1);
            }
            prev_by_src[s] = Some(e.t);
            seg.msgs[s] += 1;
            seg.bytes[s] += e.bytes as u64;
            seg.dest_counts[s][e.dst as usize] += 1;
            seg.dest_bytes[s][e.dst as usize] += e.bytes as u64;
            seg.src_span[s] = Some(seg.src_span[s].map_or((e.t, e.t), |(first, _)| (first, e.t)));
            seg.span = Some(seg.span.map_or((e.t, e.t), |(first, _)| (first, e.t)));
            seg.total_bytes += e.bytes as u64;
            *seg.length_counts.entry(e.bytes).or_insert(0) += 1;
            seg.kind_counts[match e.kind {
                EventKind::Control => 0,
                EventKind::Data => 1,
                EventKind::Sync => 2,
            }] += 1;
        }
        seg.agg_grouped = GroupedSample::from_samples(&seg.agg_gaps);
        Ok(seg)
    }

    /// Events in the block.
    pub fn messages(&self) -> u64 {
        self.msgs.iter().sum()
    }
}

/// Everything the constant-memory pass yields for the characterization
/// pipeline — the streaming counterpart of [`GapExtract`], with raw sample
/// vectors replaced by grouped runs and an already-finished burstiness
/// summary.
#[derive(Clone, Debug)]
pub struct StreamExtract {
    /// The whole-trace profile, identical to [`profile`]'s output over the
    /// same events.
    pub profile: TraceProfile,
    /// Per-source inter-send gap runs: exactly the multiset of
    /// [`interarrival_by_source`], grouped.
    pub per_source: Vec<GroupedSample>,
    /// Aggregate inter-arrival gap runs: exactly the multiset of
    /// [`interarrival_aggregate`], grouped.
    pub aggregate: GroupedSample,
    /// Burstiness of the aggregate gap sequence, accumulated in time order
    /// — bit-identical to `burstiness(&interarrival_aggregate(trace))`.
    pub burstiness: Burstiness,
    /// Message length → occurrence count over the whole trace.
    pub length_counts: BTreeMap<u32, u64>,
}

/// Folds [`SegmentExtract`]s in time order into one [`StreamExtract`],
/// inserting the boundary gaps (last event of the absorbed prefix to first
/// event of the next block, aggregate and per-source) that no single block
/// can see. Memory is O(distinct gap values + nodes²), independent of
/// trace length — communication traces are tick-quantized, so the
/// distinct-gap count saturates.
#[derive(Clone, Debug)]
pub struct StreamAccum {
    nodes: usize,
    msgs: Vec<u64>,
    bytes: Vec<u64>,
    dest_counts: Vec<Vec<u64>>,
    dest_bytes: Vec<Vec<u64>>,
    src_span: Vec<Option<(u64, u64)>>,
    src_gaps: Vec<GroupedSample>,
    aggregate: GroupedSample,
    burst: BurstAccum,
    span: Option<(u64, u64)>,
    total_bytes: u64,
    kind_counts: [u64; 3],
    length_counts: BTreeMap<u32, u64>,
}

impl StreamAccum {
    /// Starts an empty accumulator over `nodes` processors.
    pub fn new(nodes: usize) -> Self {
        StreamAccum {
            nodes,
            msgs: vec![0; nodes],
            bytes: vec![0; nodes],
            dest_counts: vec![vec![0; nodes]; nodes],
            dest_bytes: vec![vec![0; nodes]; nodes],
            src_span: vec![None; nodes],
            src_gaps: vec![GroupedSample::new(); nodes],
            aggregate: GroupedSample::new(),
            burst: BurstAccum::new(),
            span: None,
            total_bytes: 0,
            kind_counts: [0; 3],
            length_counts: BTreeMap::new(),
        }
    }

    /// Folds the next block in. Blocks must arrive in trace order: the
    /// block's first event may not precede the last event already
    /// absorbed.
    ///
    /// # Panics
    ///
    /// Panics if the segment was extracted for a different node count.
    pub fn absorb(&mut self, seg: &SegmentExtract) -> Result<(), UnsortedError> {
        assert_eq!(seg.nodes, self.nodes, "segment node count mismatch");
        let Some((seg_first, seg_last)) = seg.span else { return Ok(()) };
        if let Some((_, last)) = self.span {
            if seg_first < last {
                return Err(UnsortedError { prev: last, at: seg_first });
            }
            // The aggregate boundary gap precedes the block's internal
            // gaps in time order.
            let boundary = (seg_first - last) as f64;
            self.burst.push(boundary);
            self.aggregate.insert(boundary, 1);
        }
        for &g in &seg.agg_gaps {
            self.burst.push(g);
        }
        self.aggregate.merge(&seg.agg_grouped);
        for s in 0..self.nodes {
            let Some((first, last)) = seg.src_span[s] else { continue };
            self.src_span[s] = Some(match self.src_span[s] {
                // Global time order makes `first >= prev_last` here.
                Some((global_first, prev_last)) => {
                    self.src_gaps[s].insert((first - prev_last) as f64, 1);
                    (global_first, last)
                }
                None => (first, last),
            });
            self.src_gaps[s].merge(&seg.src_gaps[s]);
            self.msgs[s] += seg.msgs[s];
            self.bytes[s] += seg.bytes[s];
            for d in 0..self.nodes {
                self.dest_counts[s][d] += seg.dest_counts[s][d];
                self.dest_bytes[s][d] += seg.dest_bytes[s][d];
            }
        }
        self.span = Some(match self.span {
            Some((first, _)) => (first, seg_last),
            None => (seg_first, seg_last),
        });
        self.total_bytes += seg.total_bytes;
        for k in 0..3 {
            self.kind_counts[k] += seg.kind_counts[k];
        }
        for (&len, &c) in &seg.length_counts {
            *self.length_counts.entry(len).or_insert(0) += c;
        }
        Ok(())
    }

    /// Completes the pass. The profile is identical to [`profile`]'s
    /// output over the same events (per-source mean gaps telescope:
    /// `(last − first) / (messages − 1)` equals the sum of the gaps, in
    /// exact u64 arithmetic).
    pub fn finish(self) -> StreamExtract {
        let sources = (0..self.nodes)
            .map(|s| SourceProfile {
                src: s as u16,
                messages: self.msgs[s],
                bytes: self.bytes[s],
                mean_gap: match self.src_span[s] {
                    Some((first, last)) if self.msgs[s] >= 2 => {
                        (last - first) as f64 / (self.msgs[s] - 1) as f64
                    }
                    _ => 0.0,
                },
                dest_counts: self.dest_counts[s].clone(),
                dest_bytes: self.dest_bytes[s].clone(),
            })
            .collect();
        let messages: u64 = self.msgs.iter().sum();
        let profile = TraceProfile {
            sources,
            messages,
            bytes: self.total_bytes,
            mean_bytes: if messages == 0 { 0.0 } else { self.total_bytes as f64 / messages as f64 },
            span: self.span.map_or(0, |(first, last)| last - first),
            kind_counts: self.kind_counts,
        };
        StreamExtract {
            profile,
            per_source: self.src_gaps,
            aggregate: self.aggregate,
            burstiness: self.burst.finish(),
            length_counts: self.length_counts,
        }
    }
}

/// Computes the profile of a trace.
///
/// # Example
///
/// ```
/// use commchar_trace::{profile::profile, CommEvent, CommTrace, EventKind};
/// let mut tr = CommTrace::new(2);
/// tr.push(CommEvent::new(0, 0, 0, 1, 10, EventKind::Data));
/// tr.push(CommEvent::new(1, 100, 0, 1, 30, EventKind::Data));
/// let p = profile(&tr);
/// assert_eq!(p.messages, 2);
/// assert_eq!(p.sources[0].mean_gap, 100.0);
/// ```
pub fn profile(trace: &CommTrace) -> TraceProfile {
    let mut accum = ProfileAccum::new(trace.nodes());
    for e in trace.events() {
        accum.push(e);
    }
    accum.finish()
}

/// Per-source inter-arrival (inter-send) gaps — the temporal attribute's
/// raw sample, by source.
pub fn interarrival_by_source(trace: &CommTrace) -> Vec<Vec<f64>> {
    let n = trace.nodes();
    let mut times: Vec<Vec<u64>> = vec![Vec::new(); n];
    for e in trace.events() {
        times[e.src as usize].push(e.t);
    }
    times
        .into_iter()
        .map(|mut ts| {
            ts.sort_unstable();
            ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
        })
        .collect()
}

/// Aggregate inter-arrival gaps across all sources (messages entering the
/// network anywhere) — the paper's network-wide message generation view.
pub fn interarrival_aggregate(trace: &CommTrace) -> Vec<f64> {
    let mut ts: Vec<u64> = trace.events().iter().map(|e| e.t).collect();
    ts.sort_unstable();
    ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommEvent;

    fn trace() -> CommTrace {
        let mut tr = CommTrace::new(3);
        tr.push(CommEvent::new(0, 0, 0, 1, 8, EventKind::Control));
        tr.push(CommEvent::new(1, 10, 0, 2, 40, EventKind::Data));
        tr.push(CommEvent::new(2, 30, 0, 1, 8, EventKind::Sync));
        tr.push(CommEvent::new(3, 5, 1, 0, 16, EventKind::Data));
        tr
    }

    #[test]
    fn profile_counts() {
        let p = profile(&trace());
        assert_eq!(p.messages, 4);
        assert_eq!(p.bytes, 72);
        assert_eq!(p.kind_counts, [1, 2, 1]);
        assert_eq!(p.span, 30);
        assert_eq!(p.sources[0].messages, 3);
        assert_eq!(p.sources[0].dest_counts, vec![0, 2, 1]);
        assert_eq!(p.sources[1].dest_bytes, vec![16, 0, 0]);
        assert_eq!(p.sources[2].messages, 0);
    }

    #[test]
    fn gaps() {
        let p = profile(&trace());
        assert!((p.sources[0].mean_gap - 15.0).abs() < 1e-12);
        let by_src = interarrival_by_source(&trace());
        assert_eq!(by_src[0], vec![10.0, 20.0]);
        assert!(by_src[1].is_empty());
        let agg = interarrival_aggregate(&trace());
        assert_eq!(agg, vec![5.0, 5.0, 20.0]);
    }

    #[test]
    fn empty_trace_profile() {
        let p = profile(&CommTrace::new(2));
        assert_eq!(p.messages, 0);
        assert_eq!(p.span, 0);
        assert_eq!(p.mean_bytes, 0.0);
    }

    #[test]
    fn extract_matches_the_separate_passes() {
        let tr = trace();
        let x = extract(&tr);
        assert_eq!(x.per_source, interarrival_by_source(&tr));
        assert_eq!(x.aggregate, interarrival_aggregate(&tr));
        assert_eq!(x.lengths, vec![8, 40, 8, 16]);
        assert_eq!(x.profile.messages, profile(&tr).messages);
        assert_eq!(x.profile.sources[0].dest_counts, vec![0, 2, 1]);
        let empty = extract(&CommTrace::new(2));
        assert!(empty.aggregate.is_empty());
        assert!(empty.lengths.is_empty());
    }

    /// A deterministically scrambled-but-sortable trace with several
    /// sources, duplicate timestamps and silent-source stretches.
    fn sorted_trace(n_events: u64) -> CommTrace {
        let mut tr = CommTrace::new(4);
        let mut t = 0u64;
        for i in 0..n_events {
            t += (i * i + 3) % 7; // includes zero increments
            let src = ((i * 5 + 1) % 4) as u16;
            let dst = (src + 1 + (i % 3) as u16) % 4;
            let kind = match i % 3 {
                0 => EventKind::Control,
                1 => EventKind::Data,
                _ => EventKind::Sync,
            };
            tr.push(CommEvent::new(i, t, src, dst, 8 + (i % 5) as u32 * 16, kind));
        }
        tr
    }

    fn stream_over_blocks(tr: &CommTrace, block: usize) -> StreamExtract {
        let mut acc = StreamAccum::new(tr.nodes());
        for chunk in tr.events().chunks(block.max(1)) {
            let seg = SegmentExtract::from_events(tr.nodes(), chunk).unwrap();
            acc.absorb(&seg).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn streamed_extraction_equals_batch_for_any_block_size() {
        let tr = sorted_trace(257);
        let batch = extract(&tr);
        for block in [1, 2, 3, 7, 64, 1000] {
            let st = stream_over_blocks(&tr, block);
            // Gap multisets are exactly the batch samples, grouped.
            for (s, gaps) in batch.per_source.iter().enumerate() {
                assert_eq!(st.per_source[s], GroupedSample::from_samples(gaps), "src {s}");
            }
            assert_eq!(st.aggregate, GroupedSample::from_samples(&batch.aggregate));
            // Profile integers and telescoped mean gaps are identical.
            assert_eq!(st.profile.messages, batch.profile.messages);
            assert_eq!(st.profile.bytes, batch.profile.bytes);
            assert_eq!(st.profile.span, batch.profile.span);
            assert_eq!(st.profile.kind_counts, batch.profile.kind_counts);
            assert_eq!(st.profile.mean_bytes, batch.profile.mean_bytes);
            for (sp, bp) in st.profile.sources.iter().zip(&batch.profile.sources) {
                assert_eq!(sp.messages, bp.messages);
                assert_eq!(sp.dest_counts, bp.dest_counts);
                assert_eq!(sp.dest_bytes, bp.dest_bytes);
                assert_eq!(sp.mean_gap, bp.mean_gap, "src {}", sp.src);
            }
            // Burstiness is fed the identical ordered sequence.
            let b = commchar_stats::burstiness::burstiness(&batch.aggregate);
            assert!(st.burstiness.cv2 == b.cv2);
            assert!(
                st.burstiness.idi8 == b.idi8 || (st.burstiness.idi8.is_nan() && b.idi8.is_nan())
            );
            assert!(
                st.burstiness.rho1 == b.rho1 || (st.burstiness.rho1.is_nan() && b.rho1.is_nan())
            );
            // Length counts match the observed lengths.
            let mut want = BTreeMap::new();
            for &l in &batch.lengths {
                *want.entry(l).or_insert(0u64) += 1;
            }
            assert_eq!(st.length_counts, want);
        }
    }

    #[test]
    fn unsorted_input_is_a_typed_error() {
        let events = [
            CommEvent::new(0, 10, 0, 1, 8, EventKind::Data),
            CommEvent::new(1, 4, 0, 1, 8, EventKind::Data),
        ];
        let err = SegmentExtract::from_events(2, &events).unwrap_err();
        assert_eq!(err, UnsortedError { prev: 10, at: 4 });

        let early = SegmentExtract::from_events(2, &events[1..]).unwrap();
        let late = SegmentExtract::from_events(2, &events[..1]).unwrap();
        let mut acc = StreamAccum::new(2);
        acc.absorb(&late).unwrap();
        assert_eq!(acc.absorb(&early).unwrap_err(), UnsortedError { prev: 10, at: 4 });
    }

    #[test]
    fn empty_segments_are_identity() {
        let mut acc = StreamAccum::new(3);
        acc.absorb(&SegmentExtract::from_events(3, &[]).unwrap()).unwrap();
        let st = acc.finish();
        assert_eq!(st.profile.messages, 0);
        assert_eq!(st.profile.span, 0);
        assert!(st.aggregate.is_empty());
    }
}
