//! Trace profiling: per-source workload summaries.

use crate::{CommEvent, CommTrace, EventKind};

/// Per-source profile of a trace.
#[derive(Clone, Debug)]
pub struct SourceProfile {
    /// Source processor.
    pub src: u16,
    /// Messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Mean inter-send gap (think time) in ticks.
    pub mean_gap: f64,
    /// Destination message counts (index = destination).
    pub dest_counts: Vec<u64>,
    /// Destination byte counts (index = destination).
    pub dest_bytes: Vec<u64>,
}

/// Whole-trace profile.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// One entry per source processor.
    pub sources: Vec<SourceProfile>,
    /// Total messages.
    pub messages: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Mean message length in bytes.
    pub mean_bytes: f64,
    /// Span between first and last generation time.
    pub span: u64,
    /// Message counts by kind (control, data, sync).
    pub kind_counts: [u64; 3],
}

/// Incremental profile builder — the sink form of [`profile`], for
/// callers that stream events (a packed-trace reader, a live profiler)
/// instead of holding a whole [`CommTrace`].
///
/// Push events in any order; [`finish`](ProfileAccum::finish) produces
/// exactly the [`TraceProfile`] that [`profile`] would compute over the
/// same events.
#[derive(Clone, Debug)]
pub struct ProfileAccum {
    sources: Vec<SourceProfile>,
    times: Vec<Vec<u64>>,
    lengths: Vec<u32>,
    kind_counts: [u64; 3],
    first: u64,
    last: u64,
    total_bytes: u64,
    messages: u64,
}

/// Everything one streaming pass over a trace yields for the
/// characterization pipeline: the volume/spatial profile plus the raw
/// temporal samples, so the analyzer never re-walks the event list.
#[derive(Clone, Debug)]
pub struct GapExtract {
    /// The whole-trace profile ([`ProfileAccum::finish`]'s output):
    /// per-source message/byte/destination counts and the volume totals.
    pub profile: TraceProfile,
    /// Per-source inter-send gaps in ticks, identical to
    /// [`interarrival_by_source`] over the same events.
    pub per_source: Vec<Vec<f64>>,
    /// Aggregate inter-arrival gaps across all sources in time order,
    /// identical to [`interarrival_aggregate`] over the same events.
    pub aggregate: Vec<f64>,
    /// Every event's payload length, in push order.
    pub lengths: Vec<u32>,
}

impl ProfileAccum {
    /// Starts an empty profile over `nodes` processors.
    pub fn new(nodes: usize) -> Self {
        ProfileAccum {
            sources: (0..nodes)
                .map(|s| SourceProfile {
                    src: s as u16,
                    messages: 0,
                    bytes: 0,
                    mean_gap: 0.0,
                    dest_counts: vec![0; nodes],
                    dest_bytes: vec![0; nodes],
                })
                .collect(),
            times: vec![Vec::new(); nodes],
            lengths: Vec::new(),
            kind_counts: [0; 3],
            first: u64::MAX,
            last: 0,
            total_bytes: 0,
            messages: 0,
        }
    }

    /// Accounts one event.
    ///
    /// # Panics
    ///
    /// Panics if the event's endpoints are out of range for the node
    /// count given to [`new`](ProfileAccum::new).
    pub fn push(&mut self, e: &CommEvent) {
        let s = &mut self.sources[e.src as usize];
        s.messages += 1;
        s.bytes += e.bytes as u64;
        s.dest_counts[e.dst as usize] += 1;
        s.dest_bytes[e.dst as usize] += e.bytes as u64;
        self.times[e.src as usize].push(e.t);
        self.lengths.push(e.bytes);
        self.total_bytes += e.bytes as u64;
        self.first = self.first.min(e.t);
        self.last = self.last.max(e.t);
        self.messages += 1;
        self.kind_counts[match e.kind {
            EventKind::Control => 0,
            EventKind::Data => 1,
            EventKind::Sync => 2,
        }] += 1;
    }

    /// Completes the per-source gap statistics and returns the profile.
    pub fn finish(self) -> TraceProfile {
        self.finish_with_gaps().profile
    }

    /// Completes the profile **and** hands back the temporal raw samples
    /// the same pass already ordered: per-source and aggregate
    /// inter-arrival gaps, plus the observed message lengths.
    ///
    /// This is the single-streaming-pass entry point of the
    /// characterization pipeline — one walk over the events feeds the
    /// temporal fits, the spatial classification (via the profile's
    /// `dest_counts` rows) and the volume attribute, where the analyzer
    /// previously re-traversed and re-sorted the trace once per view.
    pub fn finish_with_gaps(mut self) -> GapExtract {
        let mut per_source = Vec::with_capacity(self.times.len());
        for (s, ts) in self.sources.iter_mut().zip(&mut self.times) {
            ts.sort_unstable();
            if ts.len() >= 2 {
                let total: u64 = ts.windows(2).map(|w| w[1] - w[0]).sum();
                s.mean_gap = total as f64 / (ts.len() - 1) as f64;
            }
            per_source.push(ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect());
        }
        // Aggregate arrival order: merge the per-source sorted times. A
        // flat sort is simplest and the per-source vectors are already
        // sorted, so this is the merge pass of a mergesort in disguise.
        let mut all: Vec<u64> = Vec::with_capacity(self.messages as usize);
        for ts in &self.times {
            all.extend_from_slice(ts);
        }
        all.sort_unstable();
        let aggregate = all.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let profile = TraceProfile {
            sources: self.sources,
            messages: self.messages,
            bytes: self.total_bytes,
            mean_bytes: if self.messages == 0 {
                0.0
            } else {
                self.total_bytes as f64 / self.messages as f64
            },
            span: if self.messages == 0 { 0 } else { self.last - self.first },
            kind_counts: self.kind_counts,
        };
        GapExtract { profile, per_source, aggregate, lengths: self.lengths }
    }
}

/// One streaming pass over a trace yielding the profile plus the temporal
/// raw samples — see [`ProfileAccum::finish_with_gaps`].
pub fn extract(trace: &CommTrace) -> GapExtract {
    let mut accum = ProfileAccum::new(trace.nodes());
    for e in trace.events() {
        accum.push(e);
    }
    accum.finish_with_gaps()
}

/// Computes the profile of a trace.
///
/// # Example
///
/// ```
/// use commchar_trace::{profile::profile, CommEvent, CommTrace, EventKind};
/// let mut tr = CommTrace::new(2);
/// tr.push(CommEvent::new(0, 0, 0, 1, 10, EventKind::Data));
/// tr.push(CommEvent::new(1, 100, 0, 1, 30, EventKind::Data));
/// let p = profile(&tr);
/// assert_eq!(p.messages, 2);
/// assert_eq!(p.sources[0].mean_gap, 100.0);
/// ```
pub fn profile(trace: &CommTrace) -> TraceProfile {
    let mut accum = ProfileAccum::new(trace.nodes());
    for e in trace.events() {
        accum.push(e);
    }
    accum.finish()
}

/// Per-source inter-arrival (inter-send) gaps — the temporal attribute's
/// raw sample, by source.
pub fn interarrival_by_source(trace: &CommTrace) -> Vec<Vec<f64>> {
    let n = trace.nodes();
    let mut times: Vec<Vec<u64>> = vec![Vec::new(); n];
    for e in trace.events() {
        times[e.src as usize].push(e.t);
    }
    times
        .into_iter()
        .map(|mut ts| {
            ts.sort_unstable();
            ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
        })
        .collect()
}

/// Aggregate inter-arrival gaps across all sources (messages entering the
/// network anywhere) — the paper's network-wide message generation view.
pub fn interarrival_aggregate(trace: &CommTrace) -> Vec<f64> {
    let mut ts: Vec<u64> = trace.events().iter().map(|e| e.t).collect();
    ts.sort_unstable();
    ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommEvent;

    fn trace() -> CommTrace {
        let mut tr = CommTrace::new(3);
        tr.push(CommEvent::new(0, 0, 0, 1, 8, EventKind::Control));
        tr.push(CommEvent::new(1, 10, 0, 2, 40, EventKind::Data));
        tr.push(CommEvent::new(2, 30, 0, 1, 8, EventKind::Sync));
        tr.push(CommEvent::new(3, 5, 1, 0, 16, EventKind::Data));
        tr
    }

    #[test]
    fn profile_counts() {
        let p = profile(&trace());
        assert_eq!(p.messages, 4);
        assert_eq!(p.bytes, 72);
        assert_eq!(p.kind_counts, [1, 2, 1]);
        assert_eq!(p.span, 30);
        assert_eq!(p.sources[0].messages, 3);
        assert_eq!(p.sources[0].dest_counts, vec![0, 2, 1]);
        assert_eq!(p.sources[1].dest_bytes, vec![16, 0, 0]);
        assert_eq!(p.sources[2].messages, 0);
    }

    #[test]
    fn gaps() {
        let p = profile(&trace());
        assert!((p.sources[0].mean_gap - 15.0).abs() < 1e-12);
        let by_src = interarrival_by_source(&trace());
        assert_eq!(by_src[0], vec![10.0, 20.0]);
        assert!(by_src[1].is_empty());
        let agg = interarrival_aggregate(&trace());
        assert_eq!(agg, vec![5.0, 5.0, 20.0]);
    }

    #[test]
    fn empty_trace_profile() {
        let p = profile(&CommTrace::new(2));
        assert_eq!(p.messages, 0);
        assert_eq!(p.span, 0);
        assert_eq!(p.mean_bytes, 0.0);
    }

    #[test]
    fn extract_matches_the_separate_passes() {
        let tr = trace();
        let x = extract(&tr);
        assert_eq!(x.per_source, interarrival_by_source(&tr));
        assert_eq!(x.aggregate, interarrival_aggregate(&tr));
        assert_eq!(x.lengths, vec![8, 40, 8, 16]);
        assert_eq!(x.profile.messages, profile(&tr).messages);
        assert_eq!(x.profile.sources[0].dest_counts, vec![0, 2, 1]);
        let empty = extract(&CommTrace::new(2));
        assert!(empty.aggregate.is_empty());
        assert!(empty.lengths.is_empty());
    }
}
