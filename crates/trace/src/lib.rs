//! # commchar-trace
//!
//! Communication traces: the exchange format between the workload
//! generators (execution-driven SPASM runs, MPI-level SP2 traces, synthetic
//! generators) and the network simulator / statistical analysis.
//!
//! A [`CommTrace`] is an ordered list of [`CommEvent`]s — *(time, source,
//! destination, length, kind)* plus an optional causal dependency on an
//! earlier message, which is what lets the trace-driven (static) strategy
//! avoid the classic pitfalls of naive trace replay: a message that the
//! original execution only sent after receiving another message is never
//! injected before that message's (simulated) delivery. See
//! [`replay::CausalReplayer`].
//!
//! The [`profile`] module computes per-source workload summaries (message
//! counts, think times, destination histograms) used by the report tables.
//!
//! # Example
//!
//! ```
//! use commchar_trace::{CommEvent, CommTrace, EventKind};
//!
//! let mut trace = CommTrace::new(4);
//! trace.push(CommEvent::new(0, 100, 0, 1, 32, EventKind::Data));
//! trace.push(CommEvent::new(1, 250, 1, 2, 8, EventKind::Control));
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.events()[0].bytes, 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod replay;

/// Classification of a communication event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Protocol control traffic (requests, invalidations, acks) — small.
    Control,
    /// Data transfer (cache blocks, MPI payloads).
    Data,
    /// Synchronization traffic (locks, barriers).
    Sync,
}

impl EventKind {
    /// Lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Control => "control",
            EventKind::Data => "data",
            EventKind::Sync => "sync",
        }
    }
}

/// One communication event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommEvent {
    /// Unique message id within the trace.
    pub id: u64,
    /// Generation time in ticks (cycles for dynamic traces, µs-scale ticks
    /// for SP2 traces).
    pub t: u64,
    /// Source processor.
    pub src: u16,
    /// Destination processor.
    pub dst: u16,
    /// Message length in bytes.
    pub bytes: u32,
    /// Traffic class.
    pub kind: EventKind,
    /// Id of a message that causally precedes this one (it had to be
    /// *received* by `src` before this send could happen).
    pub depends_on: Option<u64>,
}

impl CommEvent {
    /// Creates an event without a causal dependency.
    pub fn new(id: u64, t: u64, src: u16, dst: u16, bytes: u32, kind: EventKind) -> Self {
        CommEvent { id, t, src, dst, bytes, kind, depends_on: None }
    }

    /// Sets the causal dependency (builder style).
    #[must_use]
    pub fn after(mut self, dep: u64) -> Self {
        self.depends_on = Some(dep);
        self
    }
}

/// An ordered communication trace over `nodes` processors.
#[derive(Clone, Debug)]
pub struct CommTrace {
    nodes: usize,
    events: Vec<CommEvent>,
}

impl CommTrace {
    /// Creates an empty trace for `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "trace needs at least one node");
        CommTrace { nodes, events: Vec::new() }
    }

    /// Number of processors.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination is out of range, or if source
    /// equals destination (self-messages never reach the network).
    pub fn push(&mut self, ev: CommEvent) {
        assert!((ev.src as usize) < self.nodes, "source {} out of range", ev.src);
        assert!((ev.dst as usize) < self.nodes, "destination {} out of range", ev.dst);
        assert_ne!(ev.src, ev.dst, "self-message in trace");
        self.events.push(ev);
    }

    /// The events, in insertion order.
    pub fn events(&self) -> &[CommEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts events by `(t, id)` — canonical order for replay.
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.t, e.id));
    }

    /// Events from one source, in trace order.
    pub fn from_source(&self, src: u16) -> impl Iterator<Item = &CommEvent> + '_ {
        self.events.iter().filter(move |e| e.src == src)
    }

    /// Serializes to JSON-lines (one event per line, header first).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!("{{\"nodes\":{}}}\n", self.nodes);
        for e in &self.events {
            out.push_str(&serde_json::ser_event(e));
            out.push('\n');
        }
        out
    }

    /// Parses the JSON-lines format produced by [`CommTrace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, naming its
    /// 1-based line number and quoting a truncated excerpt of the payload
    /// — so a single corrupt line in a gigabyte trace is locatable, and
    /// distinguishable from a format bug.
    pub fn from_jsonl(s: &str) -> Result<CommTrace, String> {
        // Line numbers count every physical line; blank lines are
        // skipped for parsing but still advance the count.
        let mut lines = s.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (header_no, header) = lines.next().ok_or("empty input: no header line")?;
        let nodes = serde_json::field_u64(header, "nodes").ok_or_else(|| {
            format!(
                "line {}: bad header, expected {{\"nodes\":N}} ({})",
                header_no + 1,
                excerpt(header)
            )
        })? as usize;
        if nodes == 0 {
            return Err(format!("line {}: header declares zero nodes", header_no + 1));
        }
        let mut trace = CommTrace::new(nodes);
        for (i, line) in lines {
            let ev = serde_json::parse_event(line)
                .ok_or_else(|| format!("line {}: unparseable event ({})", i + 1, excerpt(line)))?;
            if (ev.src as usize) >= nodes || (ev.dst as usize) >= nodes || ev.src == ev.dst {
                return Err(format!(
                    "line {}: endpoints invalid for {nodes} nodes ({})",
                    i + 1,
                    excerpt(line)
                ));
            }
            trace.push(ev);
        }
        trace.check()?;
        Ok(trace)
    }

    /// Validates trace invariants: ids unique, and every dependency
    /// references a known message that strictly precedes the dependent
    /// event in `(t, id)` order. The ordering rule is what a real
    /// execution guarantees (a message must be *sent* before it can be
    /// received, and only then can a dependent send happen), and it is
    /// exactly the acyclicity condition the causal replayer needs to make
    /// progress.
    pub fn check(&self) -> Result<(), String> {
        let mut times = std::collections::HashMap::with_capacity(self.events.len());
        for e in &self.events {
            if times.insert(e.id, e.t).is_some() {
                return Err(format!("duplicate event id {}", e.id));
            }
        }
        for e in &self.events {
            if let Some(dep) = e.depends_on {
                match times.get(&dep) {
                    None => return Err(format!("event {} depends on unknown id {dep}", e.id)),
                    Some(&dep_t) => {
                        if (dep_t, dep) >= (e.t, e.id) {
                            return Err(format!(
                                "event {} at t={} depends on id {dep} at t={dep_t}, which does \
                                 not precede it",
                                e.id, e.t
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Extend<CommEvent> for CommTrace {
    fn extend<I: IntoIterator<Item = CommEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

/// Truncated, quoted payload excerpt for error messages: at most 60
/// characters of the offending line, with an ellipsis when cut.
fn excerpt(line: &str) -> String {
    const MAX: usize = 60;
    let mut cut = line.len().min(MAX);
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    if cut < line.len() {
        format!("{:?}…", &line[..cut])
    } else {
        format!("{line:?}")
    }
}

// A tiny hand-rolled JSON codec: the trace format is a flat object per
// line, simple enough that pulling in serde_json (unavailable in the
// offline build environment) is unnecessary.
mod serde_json {
    use super::{CommEvent, EventKind};

    pub(crate) fn ser_event(e: &CommEvent) -> String {
        match e.depends_on {
            Some(d) => format!(
                "{{\"id\":{},\"t\":{},\"src\":{},\"dst\":{},\"bytes\":{},\"kind\":\"{}\",\"dep\":{}}}",
                e.id, e.t, e.src, e.dst, e.bytes, e.kind.name(), d
            ),
            None => format!(
                "{{\"id\":{},\"t\":{},\"src\":{},\"dst\":{},\"bytes\":{},\"kind\":\"{}\"}}",
                e.id, e.t, e.src, e.dst, e.bytes, e.kind.name()
            ),
        }
    }

    /// Extracts a numeric field `"name":123` from a flat JSON object line.
    pub(crate) fn field_u64(line: &str, name: &str) -> Option<u64> {
        let key = format!("\"{name}\":");
        let start = line.find(&key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        rest[..end].trim().parse().ok()
    }

    fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
        let key = format!("\"{name}\":\"");
        let start = line.find(&key)? + key.len();
        let rest = &line[start..];
        let end = rest.find('"')?;
        Some(&rest[..end])
    }

    pub(crate) fn parse_event(line: &str) -> Option<CommEvent> {
        let kind = match field_str(line, "kind")? {
            "control" => EventKind::Control,
            "data" => EventKind::Data,
            "sync" => EventKind::Sync,
            _ => return None,
        };
        let mut ev = CommEvent::new(
            field_u64(line, "id")?,
            field_u64(line, "t")?,
            field_u64(line, "src")? as u16,
            field_u64(line, "dst")? as u16,
            field_u64(line, "bytes")? as u32,
            kind,
        );
        if line.contains("\"dep\":") {
            ev = ev.after(field_u64(line, "dep")?);
        }
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, t: u64, src: u16, dst: u16) -> CommEvent {
        CommEvent::new(id, t, src, dst, 8, EventKind::Control)
    }

    #[test]
    fn push_and_query() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 10, 0, 1));
        tr.push(ev(1, 5, 1, 2));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.from_source(1).count(), 1);
        tr.sort();
        assert_eq!(tr.events()[0].id, 1);
    }

    #[test]
    #[should_panic(expected = "self-message")]
    fn self_message_rejected() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 2, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut tr = CommTrace::new(2);
        tr.push(ev(0, 0, 0, 5));
    }

    #[test]
    fn check_catches_bad_deps() {
        let mut tr = CommTrace::new(4);
        tr.push(ev(0, 0, 0, 1));
        tr.push(ev(1, 5, 1, 2).after(0));
        assert!(tr.check().is_ok());
        tr.push(ev(2, 6, 1, 2).after(99));
        assert!(tr.check().is_err());
        let mut dup = CommTrace::new(4);
        dup.push(ev(7, 0, 0, 1));
        dup.push(ev(7, 1, 1, 0));
        assert!(dup.check().is_err());
    }

    #[test]
    fn jsonl_roundtrip_shape() {
        let mut tr = CommTrace::new(3);
        tr.push(ev(0, 1, 0, 1));
        tr.push(ev(1, 2, 1, 2).after(0));
        let s = tr.to_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"nodes\":3"));
        assert!(lines[2].contains("\"dep\":0"));
    }

    #[test]
    fn jsonl_roundtrip_parses_back() {
        let mut tr = CommTrace::new(5);
        tr.push(CommEvent::new(0, 10, 0, 1, 64, EventKind::Data));
        tr.push(CommEvent::new(1, 20, 1, 4, 8, EventKind::Control).after(0));
        tr.push(CommEvent::new(2, 30, 2, 3, 8, EventKind::Sync));
        let parsed = CommTrace::from_jsonl(&tr.to_jsonl()).unwrap();
        assert_eq!(parsed.nodes(), 5);
        assert_eq!(parsed.events(), tr.events());
    }

    #[test]
    fn jsonl_errors_name_line_and_excerpt() {
        // A long corrupt line in the middle: the error must carry the
        // 1-based physical line number and a truncated excerpt.
        let long = format!("{{\"id\":2,\"t\":3,{}}}", "x".repeat(500));
        let input = format!(
            "{{\"nodes\":4}}\n{{\"id\":0,\"t\":1,\"src\":0,\"dst\":1,\"bytes\":8,\"kind\":\"data\"}}\n\n{long}\n"
        );
        let err = CommTrace::from_jsonl(&input).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        assert!(err.contains('…'), "excerpt not truncated: {err}");
        assert!(err.len() < 160, "error should not embed the whole payload: {err}");
        // Bad header errors carry the line number too.
        let err = CommTrace::from_jsonl("{\"sodes\":4}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        // Out-of-range endpoints name the line and the node bound.
        let bad =
            "{\"nodes\":2}\n{\"id\":0,\"t\":1,\"src\":0,\"dst\":7,\"bytes\":8,\"kind\":\"data\"}\n";
        let err = CommTrace::from_jsonl(bad).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("2 nodes"), "{err}");
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(CommTrace::from_jsonl("").is_err());
        assert!(CommTrace::from_jsonl("{\"nodes\":0}\n").is_err());
        assert!(CommTrace::from_jsonl("{\"nodes\":2}\nnot-json\n").is_err());
        // Bad endpoints.
        let bad =
            "{\"nodes\":2}\n{\"id\":0,\"t\":1,\"src\":0,\"dst\":7,\"bytes\":8,\"kind\":\"data\"}\n";
        assert!(CommTrace::from_jsonl(bad).is_err());
        // Dependency ordering violation caught by check().
        let cyc = "{\"nodes\":2}\n{\"id\":0,\"t\":5,\"src\":0,\"dst\":1,\"bytes\":8,\"kind\":\"data\",\"dep\":1}\n{\"id\":1,\"t\":9,\"src\":1,\"dst\":0,\"bytes\":8,\"kind\":\"data\"}\n";
        assert!(CommTrace::from_jsonl(cyc).is_err());
    }
}
