//! Trace-only analysis drivers: one shared fit path behind both the
//! in-memory (batch) and block-streaming (out-of-core) forms of
//! `characterize`.
//!
//! Both drivers funnel into the same [`StreamExtract`]-consuming core, so
//! a streamed analysis is **byte-identical** to the batch analysis of the
//! same events:
//!
//! - [`try_analyze_trace`] — wraps an in-memory [`CommTrace`] as one
//!   segment (sorting a copy of the events first if the trace is not in
//!   time order).
//! - [`try_analyze_blocks`] — walks any [`BlockSource`] (an in-memory
//!   [`TraceReader`](commchar_tracestore::TraceReader) or an on-disk
//!   [`FileReader`](commchar_tracestore::FileReader)), decoding and
//!   condensing blocks into [`SegmentExtract`] partials on a worker pool
//!   and folding them in file order. Memory stays bounded by
//!   `block_jobs × block size`, never by trace length.
//!
//! The result carries the paper's three trace attributes (temporal,
//! spatial, volume) but no network-behaviour section: computing network
//! latencies requires a causal replay, which is inherently O(events) in
//! memory, so the streaming path reports what one pass can know.

use commchar_mesh::MeshShape;
use commchar_stats::fit::{FitContext, FitResult};
use commchar_stats::spatial::{classify_with_count, normalize};
use commchar_trace::profile::{SegmentExtract, StreamAccum, StreamExtract};
use commchar_trace::CommTrace;
use commchar_tracestore::BlockSource;
use commchar_traffic::LengthDist;

use crate::{CharError, SpatialSig, TemporalSig, VolumeSig, MIN_SAMPLES};

/// The trace-derived portion of a communication signature: the paper's
/// temporal, spatial and volume attributes, without the network-behaviour
/// summary (which needs a replay, not a trace pass).
#[derive(Debug)]
pub struct TraceAnalysis {
    /// Processor count the trace was recorded over.
    pub nodes: usize,
    /// Temporal attribute (aggregate + per-source fits, burstiness).
    pub temporal: TemporalSig,
    /// Spatial attribute, per source (None when the source sent nothing).
    pub spatial: Vec<Option<SpatialSig>>,
    /// Volume attribute.
    pub volume: VolumeSig,
}

/// Analyzes an in-memory trace. Events are viewed as a single segment
/// (sorted by time first, copying, if the trace is out of order) and fed
/// through exactly the code path [`try_analyze_blocks`] uses — which is
/// what makes streamed-equals-batch hold to the byte.
///
/// # Errors
///
/// [`CharError`] on an empty or temporally degenerate trace.
pub fn try_analyze_trace(
    trace: &CommTrace,
    shape: MeshShape,
    jobs: usize,
) -> Result<TraceAnalysis, CharError> {
    if trace.is_empty() {
        return Err(CharError::EmptyTrace);
    }
    let events = trace.events();
    let sorted_copy;
    let events = if events.windows(2).all(|w| w[0].t <= w[1].t) {
        events
    } else {
        sorted_copy = {
            let mut v = events.to_vec();
            v.sort_by_key(|e| e.t);
            v
        };
        &sorted_copy
    };
    let seg = SegmentExtract::from_events(trace.nodes(), events).expect("events are sorted");
    let mut accum = StreamAccum::new(trace.nodes());
    accum.absorb(&seg).expect("a single segment is in order");
    try_analyze_extract(accum.finish(), shape, jobs)
}

/// Blocks condensed to partials per worker-pool round; the sequential
/// fold then consumes them in order. Bounds live partials (and therefore
/// memory) to a small multiple of the worker count — one `run_indexed`
/// over *all* blocks would hold every partial at once, O(trace) again.
const CHUNK_PER_JOB: usize = 4;

/// Analyzes a packed event stream block by block in constant memory.
///
/// Per round, up to `CHUNK_PER_JOB ×`
/// [`resolve_jobs`](commchar_pool::resolve_jobs)`(block_jobs)`
/// blocks are decoded and condensed to [`SegmentExtract`]s in parallel
/// (`block_jobs` workers; `0` = one per hardware thread), then folded in
/// file order. After the single pass, the distribution fits fan out
/// across `jobs` workers exactly as in [`try_analyze_trace`].
///
/// # Errors
///
/// - [`CharError::EmptyTrace`] / [`CharError::DegenerateTemporal`] as in
///   the batch path.
/// - [`CharError::Unsorted`] if the stream is not in time order (the
///   boundary-gap stitching requires it; packed traces written by this
///   workspace are sorted).
/// - [`CharError::Store`] for any decode/IO failure inside a block.
pub fn try_analyze_blocks<R: BlockSource>(
    source: &R,
    shape: MeshShape,
    jobs: usize,
    block_jobs: usize,
) -> Result<TraceAnalysis, CharError> {
    if source.is_empty() {
        return Err(CharError::EmptyTrace);
    }
    let nodes = source.nodes();
    let chunk = commchar_pool::resolve_jobs(block_jobs).saturating_mul(CHUNK_PER_JOB).max(1);
    let mut accum = StreamAccum::new(nodes);
    let mut base = 0;
    while base < source.block_count() {
        let n = chunk.min(source.block_count() - base);
        let partials = commchar_pool::run_indexed(block_jobs, n, |i| {
            let events =
                source.decode_events(base + i).map_err(|e| CharError::Store(e.to_string()))?;
            SegmentExtract::from_events(nodes, &events)
                .map_err(|e| CharError::Unsorted { prev: e.prev, at: e.at })
        });
        for seg in partials {
            accum.absorb(&seg?).map_err(|e| CharError::Unsorted { prev: e.prev, at: e.at })?;
        }
        base += n;
    }
    try_analyze_extract(accum.finish(), shape, jobs)
}

/// The shared back half: grouped gap runs → parallel fits → spatial
/// classification → volume attribute.
///
/// Public because it is also the **online** funnel: a live producer that
/// owns a [`StreamAccum`] (the `commchar-serve` session state, an engine
/// feeding characterization mid-run) snapshots its accumulator, finishes
/// it, and calls this — landing in exactly the fit path both offline
/// drivers use, which is what makes a polled live report byte-identical
/// to the offline analysis of the same events.
///
/// # Errors
///
/// [`CharError::DegenerateTemporal`] when fewer than two aggregate
/// inter-arrival gaps have been observed.
pub fn try_analyze_extract(
    x: StreamExtract,
    shape: MeshShape,
    jobs: usize,
) -> Result<TraceAnalysis, CharError> {
    let gaps = x.aggregate.total();
    if gaps < 2 {
        return Err(CharError::DegenerateTemporal { gaps: gaps as usize });
    }

    // Temporal: independent fits — task 0 is the aggregate, the rest one
    // per source with enough samples — claimed by whichever worker is
    // free, scattered back in deterministic source order.
    let fit_sources: Vec<usize> = (0..x.per_source.len())
        .filter(|&s| x.per_source[s].total() >= MIN_SAMPLES as u64)
        .collect();
    let mut fits = commchar_pool::run_indexed(jobs, fit_sources.len() + 1, |i| match i {
        0 => FitContext::from_grouped(&x.aggregate).fit_best(),
        _ => FitContext::from_grouped(&x.per_source[fit_sources[i - 1]]).fit_best(),
    });
    let aggregate = fits[0].take().expect("≥ 2 samples always admit a fit");
    let mut per_source: Vec<Option<FitResult>> = vec![None; x.per_source.len()];
    for (slot, fit) in fit_sources.iter().zip(fits.drain(1..)) {
        per_source[*slot] = fit;
    }

    // Spatial: per-source destination histograms (the profile's
    // destination-count rows), classified by regression against
    // uniform / bimodal-uniform / locality-decay.
    let dist_fn = move |a: usize, b: usize| {
        shape.hop_distance(commchar_mesh::NodeId(a as u16), commchar_mesh::NodeId(b as u16)) as f64
    };
    let profile = &x.profile;
    let nodes = profile.sources.len();
    let spatial: Vec<Option<SpatialSig>> = (0..nodes)
        .map(|s| {
            let counts = &profile.sources.get(s)?.dest_counts;
            let observed = normalize(counts, s)?;
            let sent: u64 = counts.iter().sum();
            let fit = classify_with_count(&observed, s, &dist_fn, Some(sent));
            Some(SpatialSig { observed, fit })
        })
        .collect();

    // Volume.
    let volume = VolumeSig {
        messages: profile.messages,
        bytes: profile.bytes,
        mean_bytes: profile.mean_bytes,
        lengths: LengthDist::from_counts(&x.length_counts),
        per_source_msgs: profile.sources.iter().map(|s| s.messages).collect(),
        per_source_bytes: profile.sources.iter().map(|s| s.bytes).collect(),
    };

    Ok(TraceAnalysis {
        nodes,
        temporal: TemporalSig { aggregate, per_source, burstiness: x.burstiness },
        spatial,
        volume,
    })
}
