//! # commchar-core
//!
//! The end-to-end communication characterization pipeline — the paper's
//! methodology as a library:
//!
//! 1. **Acquire** a communication workload ([`run_workload`]): shared-memory
//!    applications execute on the execution-driven CC-NUMA simulator with
//!    the mesh in the loop (*dynamic strategy*); message-passing
//!    applications execute on the SP2-modelled runtime and their traces are
//!    causally replayed through the same mesh (*static strategy*).
//! 2. **Analyze** the network log ([`characterize`]): fit the message
//!    inter-arrival time distribution (per source and aggregate), classify
//!    each source's spatial distribution, and summarize the volume
//!    attribute — producing a [`CommSignature`]. [`characterize_jobs`] fans
//!    the per-source fits across worker threads (the CLI's `--jobs` knob)
//!    with results identical to the serial path; [`try_characterize`]
//!    surfaces degenerate inputs (an empty log) as a typed [`CharError`]
//!    instead of panicking.
//! 3. **Synthesize** ([`synthesize`]): turn the signature back into an
//!    open-loop [`commchar_traffic::TrafficModel`], usable to drive network
//!    studies with realistic workloads (and to validate the fits against
//!    the original trace).
//!
//! The whole matrix of (application × configuration × seed) cells runs in
//! parallel through [`suite::SuiteRunner`], which fans cells across scoped
//! worker threads and returns results in deterministic input order.
//!
//! Both strategies drive the mesh through a pluggable closed-loop engine
//! ([`commchar_mesh::NetEngine`]): the default channel-recurrence wormhole
//! model, or the cycle-accurate flit-level router run incrementally.
//! [`run_workload_engine`] and [`suite::SuiteRunner::with_engine`] select
//! it (the CLI's `--engine` flag); [`run_workload`] keeps the recurrence
//! default. [`run_workload_sim`] and [`suite::SuiteRunner::with_sim_jobs`]
//! additionally shard the execution-driven simulator itself (the CLI's
//! `--sim-jobs` flag) — event-identical to serial, so no output depends
//! on it. [`run_workload_net`] also selects the network itself — a torus
//! with wraparound links and/or the minimal-adaptive routing policy (the
//! CLI's `--topology` / `--routing` flags) — raising the virtual-channel
//! budget to the escape-channel minimum the pair needs.
//!
//! # Example
//!
//! ```no_run
//! use commchar_apps::{AppId, Scale};
//! use commchar_core::{characterize, run_workload};
//!
//! let w = run_workload(AppId::Is, 8, Scale::Tiny);
//! let sig = characterize(&w);
//! println!("{}", sig.temporal.aggregate.dist);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod phases;
pub mod report;
pub mod suite;

use commchar_apps::{AppClass, AppId, Scale};
use commchar_mesh::{EngineKind, MeshConfig, NetLog, NetSummary, Routing, Topology};
use commchar_stats::fit::{fit_best, FitResult};
use commchar_stats::spatial::SpatialFit;
use commchar_stats::Dist;
use commchar_trace::replay::CausalReplayer;
use commchar_trace::CommTrace;
use commchar_traffic::{LengthDist, SourceModel, TrafficModel};

/// An acquired communication workload: the trace plus its network log.
#[derive(Debug)]
pub struct Workload {
    /// Application name.
    pub name: String,
    /// Acquisition strategy.
    pub class: AppClass,
    /// Processors.
    pub nprocs: usize,
    /// Mesh the log was produced on.
    pub mesh: MeshConfig,
    /// The communication trace.
    pub trace: CommTrace,
    /// The network activity log.
    pub netlog: NetLog,
    /// Simulated execution time.
    pub exec_ticks: u64,
}

/// Runs an application end-to-end and produces its workload, driving the
/// 2-D mesh by the strategy appropriate to its class.
///
/// # Panics
///
/// Panics on invalid processor counts for the chosen kernel.
pub fn run_workload(app: AppId, nprocs: usize, scale: Scale) -> Workload {
    run_workload_engine(app, nprocs, scale, EngineKind::Recurrence)
}

/// Like [`run_workload`] but with an explicit closed-loop network engine.
///
/// Dynamic-strategy applications run with the chosen engine *in the loop*
/// (its delivery times steer the simulated processors); static-strategy
/// applications acquire their trace engine-free and the choice applies at
/// causal replay. [`EngineKind::Recurrence`] reproduces [`run_workload`]
/// exactly.
///
/// # Panics
///
/// Panics on invalid processor counts for the chosen kernel.
pub fn run_workload_engine(
    app: AppId,
    nprocs: usize,
    scale: Scale,
    engine: EngineKind,
) -> Workload {
    run_workload_sim(app, nprocs, scale, engine, 1)
}

/// Like [`run_workload_engine`] with an explicit shard count for the
/// execution-driven simulator's conservative-window parallel engine
/// (the CLI's `--sim-jobs`; 1 = serial, 0 = one shard per hardware
/// thread). Sharding never changes the acquired workload — the trace and
/// log are bit-identical for any value — only the wall-clock time of
/// dynamic-strategy acquisition. Static-strategy applications ignore it.
///
/// # Panics
///
/// Panics on invalid processor counts for the chosen kernel.
pub fn run_workload_sim(
    app: AppId,
    nprocs: usize,
    scale: Scale,
    engine: EngineKind,
    sim_jobs: usize,
) -> Workload {
    run_workload_net(app, nprocs, scale, engine, sim_jobs, Topology::Mesh, Routing::Dimension)
}

/// Like [`run_workload_sim`] with an explicit network: the `topology`
/// (mesh, or torus with wraparound links) and the `routing` policy
/// (dimension-order, or minimal-adaptive). The network is built by
/// [`MeshConfig::for_nodes_net`], which raises the virtual-channel budget
/// to the escape-channel minimum the chosen (topology × routing) pair
/// needs for deadlock freedom. Dynamic-strategy applications execute with
/// that network in the closed loop; static-strategy traces are causally
/// replayed through it. Mesh + dimension-order reproduces
/// [`run_workload_sim`] exactly.
///
/// # Panics
///
/// Panics on invalid processor counts for the chosen kernel.
pub fn run_workload_net(
    app: AppId,
    nprocs: usize,
    scale: Scale,
    engine: EngineKind,
    sim_jobs: usize,
    topology: Topology,
    routing: Routing,
) -> Workload {
    let mesh = MeshConfig::for_nodes_net(nprocs, topology, routing);
    let out = app.run_net(nprocs, scale, engine, sim_jobs, mesh);
    let netlog = match out.netlog {
        Some(log) => log, // dynamic strategy: closed-loop co-simulation
        None => CausalReplayer::new(mesh) // static strategy
            .try_replay(&out.trace, engine)
            .unwrap_or_else(|e| panic!("{e}")),
    };
    Workload {
        name: out.name.to_string(),
        class: out.class,
        nprocs,
        mesh,
        trace: out.trace,
        netlog,
        exec_ticks: out.exec_ticks,
    }
}

/// The temporal attribute: fitted inter-arrival distributions plus
/// burstiness (correlation) measures a marginal fit cannot express.
#[derive(Debug)]
pub struct TemporalSig {
    /// Best fit over all messages entering the network.
    pub aggregate: FitResult,
    /// Best fit per source (None when the source sent < 8 messages).
    pub per_source: Vec<Option<FitResult>>,
    /// Burstiness of the aggregate arrival process (CV², IDI(8), ρ₁).
    pub burstiness: commchar_stats::burstiness::Burstiness,
}

/// The spatial attribute for one source.
#[derive(Debug)]
pub struct SpatialSig {
    /// Observed destination probabilities.
    pub observed: Vec<f64>,
    /// The fitted model classification.
    pub fit: SpatialFit,
}

/// The volume attribute.
#[derive(Debug)]
pub struct VolumeSig {
    /// Total messages.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Mean message length.
    pub mean_bytes: f64,
    /// Empirical message-length distribution.
    pub lengths: LengthDist,
    /// Per-source message counts.
    pub per_source_msgs: Vec<u64>,
    /// Per-source byte counts.
    pub per_source_bytes: Vec<u64>,
}

/// The complete communication signature of a workload — the paper's three
/// attributes plus the network-level summary.
#[derive(Debug)]
pub struct CommSignature {
    /// Application name.
    pub name: String,
    /// Acquisition strategy.
    pub class: AppClass,
    /// Processors.
    pub nprocs: usize,
    /// Temporal attribute.
    pub temporal: TemporalSig,
    /// Spatial attribute, per source (None when the source sent nothing).
    pub spatial: Vec<Option<SpatialSig>>,
    /// Volume attribute.
    pub volume: VolumeSig,
    /// Network behaviour summary (latency, contention, throughput).
    pub network: NetSummary,
    /// Simulated execution time of the acquisition run.
    pub exec_ticks: u64,
}

/// Minimum messages from a source before its temporal fit is attempted.
pub(crate) const MIN_SAMPLES: usize = 8;

/// Why a workload cannot be characterized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CharError {
    /// The trace holds no events at all.
    EmptyTrace,
    /// The trace is temporally degenerate: fewer than two aggregate
    /// inter-arrival gaps (at most two messages), so no distribution can
    /// meaningfully be fitted. Carries the gap count observed.
    DegenerateTemporal {
        /// Aggregate inter-arrival gaps available (0 or 1).
        gaps: usize,
    },
    /// A streamed source delivered events out of time order, which the
    /// constant-memory boundary-gap stitching cannot absorb (see
    /// [`analyze::try_analyze_blocks`]).
    Unsorted {
        /// The later timestamp seen first.
        prev: u64,
        /// The earlier timestamp that arrived after it.
        at: u64,
    },
    /// A block of a packed trace failed to decode (I/O error, checksum
    /// mismatch, corrupt payload) during streamed analysis.
    Store(String),
}

impl std::fmt::Display for CharError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharError::EmptyTrace => write!(f, "cannot characterize an empty trace"),
            CharError::DegenerateTemporal { gaps } => write!(
                f,
                "degenerate trace: {gaps} inter-arrival gap(s), need at least 2 to fit a \
                 distribution"
            ),
            CharError::Unsorted { prev, at } => write!(
                f,
                "streamed trace is out of time order (t={at} after t={prev}); streaming \
                 characterization needs a time-sorted trace"
            ),
            CharError::Store(msg) => write!(f, "packed trace unreadable: {msg}"),
        }
    }
}

impl std::error::Error for CharError {}

/// Analyzes a workload into its communication signature.
///
/// Equivalent to [`try_characterize`] but panicking on degenerate input —
/// the convenient form for workloads produced by [`run_workload`], which
/// are never degenerate.
///
/// # Panics
///
/// Panics if the workload's trace is empty or has fewer than two
/// inter-arrival gaps (see [`CharError`]).
pub fn characterize(w: &Workload) -> CommSignature {
    try_characterize(w).unwrap_or_else(|e| panic!("{e}"))
}

/// Analyzes a workload into its communication signature, fanning the
/// per-source distribution fits across `jobs` worker threads — see
/// [`try_characterize_jobs`].
///
/// # Panics
///
/// Panics on degenerate input (see [`CharError`]).
pub fn characterize_jobs(w: &Workload, jobs: usize) -> CommSignature {
    try_characterize_jobs(w, jobs).unwrap_or_else(|e| panic!("{e}"))
}

/// Analyzes a workload into its communication signature, sequentially.
///
/// # Errors
///
/// [`CharError`] on an empty or temporally degenerate trace.
pub fn try_characterize(w: &Workload) -> Result<CommSignature, CharError> {
    try_characterize_jobs(w, 1)
}

/// Analyzes a workload into its communication signature.
///
/// The trace attributes come from [`analyze::try_analyze_trace`] — the
/// same grouped-run fit path the out-of-core driver
/// [`analyze::try_analyze_blocks`] uses, so streamed and batch analyses
/// of the same events agree to the byte. The independent distribution
/// fits (the aggregate fit plus one per active source) fan out across at
/// most `jobs` worker threads (`0` = one per hardware thread); results
/// are scattered back by source index, so the signature — and any report
/// rendered from it — is byte-identical for every `jobs` value.
///
/// # Errors
///
/// [`CharError`] on an empty or temporally degenerate trace.
pub fn try_characterize_jobs(w: &Workload, jobs: usize) -> Result<CommSignature, CharError> {
    let a = analyze::try_analyze_trace(&w.trace, w.mesh.shape, jobs)?;
    Ok(CommSignature {
        name: w.name.clone(),
        class: w.class,
        nprocs: w.nprocs,
        temporal: a.temporal,
        spatial: a.spatial,
        volume: a.volume,
        network: w.netlog.summary(),
        exec_ticks: w.exec_ticks,
    })
}

/// Characterizes one traffic class in isolation (control / data / sync),
/// by filtering the trace before analysis — the paper's protocol-level
/// decomposition of shared-memory traffic. Returns `None` if the class
/// has no messages (or too few to fit).
pub fn characterize_kind(w: &Workload, kind: commchar_trace::EventKind) -> Option<KindSig> {
    let events: Vec<&commchar_trace::CommEvent> =
        w.trace.events().iter().filter(|e| e.kind == kind).collect();
    if events.len() < MIN_SAMPLES {
        return None;
    }
    let mut times: Vec<u64> = events.iter().map(|e| e.t).collect();
    times.sort_unstable();
    let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let fit = fit_best(&gaps)?;
    let bytes: u64 = events.iter().map(|e| e.bytes as u64).sum();
    Some(KindSig {
        kind,
        messages: events.len() as u64,
        bytes,
        mean_bytes: bytes as f64 / events.len() as f64,
        interarrival: fit,
    })
}

/// The signature of one traffic class (see [`characterize_kind`]).
#[derive(Debug)]
pub struct KindSig {
    /// The traffic class.
    pub kind: commchar_trace::EventKind,
    /// Messages of this class.
    pub messages: u64,
    /// Total payload bytes of this class.
    pub bytes: u64,
    /// Mean message length.
    pub mean_bytes: f64,
    /// Fitted inter-arrival distribution within the class.
    pub interarrival: FitResult,
}

/// Turns a signature into an open-loop traffic model: per source, the
/// fitted inter-arrival distribution, the *fitted* spatial model's
/// predicted destination vector, and the empirical length distribution —
/// exactly the "realistic performance model" input the paper advocates.
///
/// Sources without a temporal fit reuse the aggregate distribution scaled
/// to the source's observed rate; sources that never sent are `None`.
pub fn synthesize(sig: &CommSignature, mesh: MeshConfig) -> TrafficModel {
    let n = sig.nprocs;
    let shape = mesh.shape;
    let dist_fn = move |a: usize, b: usize| {
        shape.hop_distance(commchar_mesh::NodeId(a as u16), commchar_mesh::NodeId(b as u16)) as f64
    };
    let sources = (0..n)
        .map(|s| {
            let spatial_sig = sig.spatial[s].as_ref()?;
            let interarrival = match &sig.temporal.per_source[s] {
                Some(fit) => fit.dist,
                None => {
                    // Rescale the aggregate fit to this source's share.
                    let share =
                        sig.volume.per_source_msgs[s] as f64 / sig.volume.messages.max(1) as f64;
                    if share <= 0.0 {
                        return None;
                    }
                    let mean = sig.temporal.aggregate.dist.mean() / share;
                    Dist::exponential(1.0 / mean.max(1.0))
                }
            };
            let spatial = spatial_sig.fit.model.predict(s, n, &dist_fn);
            Some(SourceModel { interarrival, spatial, length: sig.volume.lengths.clone() })
        })
        .collect();
    TrafficModel::new(sources)
}

/// Phase-aware synthesis: one traffic model per execution window, so the
/// generated stream reproduces the application's burst structure that a
/// single whole-run renewal model averages away (the paper's caveat, and
/// the reason barrier-heavy codes like Nbody defeat single-distribution
/// models). Returns the generated trace directly.
///
/// Each window reuses the signature's spatial and length models but fits
/// its own inter-arrival distribution; windows with no traffic stay
/// silent.
///
/// # Panics
///
/// Panics if the workload's trace is empty or `windows == 0`.
pub fn synthesize_phased(
    w: &Workload,
    sig: &CommSignature,
    windows: usize,
    seed: u64,
) -> CommTrace {
    let analysis = phases::phase_analysis(&w.trace, windows);
    let base = synthesize(sig, w.mesh);

    // Per-window, per-source message counts from the original trace: the
    // rate envelope that carries the burst structure.
    let mut counts = vec![vec![0u64; w.nprocs]; analysis.windows.len()];
    for e in w.trace.events() {
        let wi = analysis
            .windows
            .iter()
            .position(|pw| e.t >= pw.start && e.t < pw.end)
            .unwrap_or(analysis.windows.len() - 1);
        counts[wi][e.src as usize] += 1;
    }

    let mut out = CommTrace::new(w.nprocs);
    let mut id = 0u64;
    for (wi, pw) in analysis.windows.iter().enumerate() {
        let span = pw.end - pw.start;
        if span == 0 || pw.messages == 0 {
            continue;
        }
        // Within a window the process is near-stationary: each source
        // sends at its observed window rate; the spatial and length models
        // come from the whole-run signature.
        let sources: Vec<Option<commchar_traffic::SourceModel>> = base
            .sources()
            .iter()
            .enumerate()
            .map(|(s, m)| {
                let c = counts[wi][s];
                let m = m.as_ref()?;
                if c == 0 {
                    return None;
                }
                Some(commchar_traffic::SourceModel {
                    interarrival: Dist::exponential(c as f64 / span as f64),
                    spatial: m.spatial.clone(),
                    length: m.length.clone(),
                })
            })
            .collect();
        if sources.iter().all(Option::is_none) {
            continue;
        }
        let model = TrafficModel::new(sources);
        for e in model.generate(span, seed ^ pw.start).events() {
            let mut ev = *e;
            ev.id = id;
            ev.t += pw.start;
            out.push(ev);
            id += 1;
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_synthesis_tracks_the_burst_structure() {
        let w = run_workload(AppId::Nbody, 4, Scale::Tiny);
        let sig = characterize(&w);
        let synth = synthesize_phased(&w, &sig, 8, 5);
        assert!(!synth.is_empty());
        synth.check().unwrap();
        // The phased synthetic trace should reproduce the original's
        // burst envelope — the share of traffic in each of the original's
        // execution windows — where a flat renewal model spreads it
        // uniformly. Compare all three traces on the *original's* window
        // grid: re-deriving windows per trace would measure span drift
        // (a single stray event near a window edge), not burstiness.
        let grid = phases::phase_analysis(&w.trace, 8);
        let envelope = |tr: &CommTrace| -> Vec<f64> {
            let mut c = vec![0f64; grid.windows.len()];
            for e in tr.events() {
                let wi = grid
                    .windows
                    .iter()
                    .position(|pw| e.t >= pw.start && e.t < pw.end)
                    .unwrap_or(grid.windows.len() - 1);
                c[wi] += 1.0;
            }
            let total: f64 = c.iter().sum();
            c.iter().map(|x| x / total).collect()
        };
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let orig = envelope(&w.trace);
        let flat_trace = synthesize(&sig, w.mesh).generate(w.netlog.summary().span, 5);
        let phased = l1(&envelope(&synth), &orig);
        let flat = l1(&envelope(&flat_trace), &orig);
        assert!(phased < 0.2 && 2.0 * phased < flat, "phased L1 {phased:.3} vs flat L1 {flat:.3}");
    }

    #[test]
    fn pipeline_end_to_end_shared_memory() {
        let w = run_workload(AppId::Is, 4, Scale::Tiny);
        assert_eq!(w.class, AppClass::SharedMemory);
        assert_eq!(w.trace.len(), w.netlog.records().len());
        let sig = characterize(&w);
        assert_eq!(sig.nprocs, 4);
        assert!(sig.temporal.aggregate.r2 > 0.5, "aggregate fit too poor");
        assert!(sig.volume.messages > 0);
        assert!(sig.spatial.iter().any(|s| s.is_some()));
    }

    #[test]
    fn pipeline_end_to_end_message_passing() {
        let w = run_workload(AppId::Fft3d, 4, Scale::Tiny);
        assert_eq!(w.class, AppClass::MessagePassing);
        // Static strategy: trace replayed through the mesh.
        assert_eq!(w.trace.len(), w.netlog.records().len());
        let sig = characterize(&w);
        assert!(sig.network.mean_latency > 0.0);
    }

    #[test]
    fn synthesized_model_generates_comparable_traffic() {
        let w = run_workload(AppId::Nbody, 4, Scale::Tiny);
        let sig = characterize(&w);
        let model = synthesize(&sig, w.mesh);
        let span = w.netlog.summary().span;
        let synth = model.generate(span, 11);
        assert!(!synth.is_empty(), "synthetic trace empty");
        // Message rate within a factor of 3 of the original.
        let ratio = synth.len() as f64 / w.trace.len() as f64;
        assert!(ratio > 0.33 && ratio < 3.0, "rate ratio {ratio}");
    }

    #[test]
    fn per_kind_characterization_partitions_the_trace() {
        let w = run_workload(AppId::Is, 4, Scale::Tiny);
        let kinds = [
            commchar_trace::EventKind::Control,
            commchar_trace::EventKind::Data,
            commchar_trace::EventKind::Sync,
        ];
        let sigs: Vec<_> = kinds.iter().filter_map(|&k| characterize_kind(&w, k)).collect();
        assert!(sigs.len() >= 2, "IS should have control, data and sync traffic");
        let total: u64 = sigs.iter().map(|s| s.messages).sum();
        // Classes with < MIN_SAMPLES messages are dropped, so total ≤ len.
        assert!(total <= w.trace.len() as u64);
        assert!(total > w.trace.len() as u64 / 2);
        for s in &sigs {
            assert!(s.mean_bytes > 0.0);
            assert!(s.interarrival.r2 > 0.0, "{:?}: r2 = {}", s.kind, s.interarrival.r2);
        }
    }

    fn degenerate_workload(events: usize) -> Workload {
        let mesh = MeshConfig::for_nodes(4);
        let mut trace = CommTrace::new(4);
        for i in 0..events {
            trace.push(commchar_trace::CommEvent::new(
                i as u64,
                100 * i as u64,
                0,
                1,
                8,
                commchar_trace::EventKind::Data,
            ));
        }
        let netlog = CausalReplayer::new(mesh).replay(&trace);
        Workload {
            name: "degenerate".into(),
            class: AppClass::MessagePassing,
            nprocs: 4,
            mesh,
            trace,
            netlog,
            exec_ticks: 0,
        }
    }

    #[test]
    fn degenerate_traces_yield_typed_errors_not_panics() {
        assert_eq!(try_characterize(&degenerate_workload(0)).err(), Some(CharError::EmptyTrace));
        // One message: zero gaps. Two messages: one gap. Both degenerate.
        assert_eq!(
            try_characterize(&degenerate_workload(1)).err(),
            Some(CharError::DegenerateTemporal { gaps: 0 })
        );
        assert_eq!(
            try_characterize(&degenerate_workload(2)).err(),
            Some(CharError::DegenerateTemporal { gaps: 1 })
        );
        // Three messages is the smallest characterizable trace.
        let sig = try_characterize(&degenerate_workload(3)).unwrap();
        assert_eq!(sig.volume.messages, 3);
        let msg = CharError::DegenerateTemporal { gaps: 1 }.to_string();
        assert!(msg.contains("degenerate"), "unhelpful message: {msg}");
    }

    #[test]
    #[should_panic(expected = "degenerate trace")]
    fn characterize_panic_message_names_the_problem() {
        let _ = characterize(&degenerate_workload(1));
    }

    #[test]
    fn net_default_reproduces_run_workload_sim() {
        // Mesh + dimension-order is the historical configuration; the
        // net-aware entry point must reproduce it to the byte.
        let a = run_workload(AppId::Is, 4, Scale::Tiny);
        let b = run_workload_net(
            AppId::Is,
            4,
            Scale::Tiny,
            EngineKind::Recurrence,
            1,
            Topology::Mesh,
            Routing::Dimension,
        );
        assert_eq!(a.mesh, b.mesh);
        assert_eq!(a.trace.to_jsonl(), b.trace.to_jsonl());
        assert_eq!(a.netlog.records(), b.netlog.records());
    }

    #[test]
    fn torus_pipeline_end_to_end_both_strategies() {
        // Dynamic (IS, closed-loop flit router in the execution loop) and
        // static (halo, causal replay) acquisition both run on a torus
        // with minimal-adaptive routing, and the full characterization
        // pipeline follows through.
        for app in [AppId::Is, AppId::Halo] {
            let w = run_workload_net(
                app,
                4,
                Scale::Tiny,
                EngineKind::flit(),
                1,
                Topology::Torus,
                Routing::Adaptive,
            );
            assert_eq!(w.mesh.shape.topology(), Topology::Torus);
            assert!(w.mesh.virtual_channels >= w.mesh.vc_classes());
            let sig = characterize(&w);
            assert!(sig.volume.messages > 0);
            assert!(sig.network.mean_latency > 0.0);
        }
    }

    #[test]
    fn torus_wrap_links_shorten_ring_collectives() {
        // The ring allreduce's rank-(p−1) → rank-0 message crosses the
        // whole mesh but a single wrap link on the torus: same trace
        // (static acquisition is network-free), strictly fewer mean hops.
        let run = |topology| {
            run_workload_net(
                AppId::Allreduce,
                8,
                Scale::Tiny,
                EngineKind::Recurrence,
                1,
                topology,
                Routing::Dimension,
            )
        };
        let mesh = run(Topology::Mesh);
        let torus = run(Topology::Torus);
        assert_eq!(mesh.trace.to_jsonl(), torus.trace.to_jsonl());
        let (mh, th) = (mesh.netlog.summary().mean_hops, torus.netlog.summary().mean_hops);
        assert!(th < mh, "torus mean hops {th} should beat mesh {mh}");
    }

    #[test]
    fn burstiness_is_computed() {
        let w = run_workload(AppId::Nbody, 4, Scale::Tiny);
        let sig = characterize(&w);
        let b = sig.temporal.burstiness;
        assert!(b.cv2 > 0.0, "nbody traffic must have variance");
        assert!(b.cv2.is_finite());
    }

    #[test]
    fn mp_collectives_make_p0_the_favorite() {
        let w = run_workload(AppId::Fft3d, 4, Scale::Tiny);
        let sig = characterize(&w);
        // At least one non-zero source classifies p0 as favorite or shows
        // p0-dominated observed traffic.
        let mut favored = 0;
        for (s, sp) in sig.spatial.iter().enumerate() {
            if s == 0 {
                continue;
            }
            if let Some(sp) = sp {
                let max_j = (0..sig.nprocs)
                    .filter(|&j| j != s)
                    .max_by(|&a, &b| sp.observed[a].partial_cmp(&sp.observed[b]).unwrap())
                    .unwrap();
                if max_j == 0 {
                    favored += 1;
                }
            }
        }
        assert!(favored >= 2, "p0 should dominate destination histograms, favored={favored}");
    }
}
