//! Windowed (phase) analysis of a communication trace.
//!
//! The applications the paper characterizes are phase-structured (1D-FFT's
//! local/exchange/local phases, Nbody's per-step phases, MG's V-cycle
//! levels). A single whole-run distribution averages over those phases;
//! slicing the run into time windows exposes them: message rate and the
//! fitted family per window, plus a scalar *rate variation* summarizing
//! how non-stationary the workload is.

use commchar_stats::fit::{fit_best, FitResult};
use commchar_trace::CommTrace;

/// One time window of the analysis.
#[derive(Debug)]
pub struct PhaseWindow {
    /// Window start (ticks, inclusive).
    pub start: u64,
    /// Window end (ticks, exclusive).
    pub end: u64,
    /// Messages generated in the window.
    pub messages: u64,
    /// Generation rate (messages per tick).
    pub rate: f64,
    /// Inter-arrival fit within the window (None if < 8 gaps).
    pub fit: Option<FitResult>,
}

/// The result of a windowed analysis.
#[derive(Debug)]
pub struct PhaseAnalysis {
    /// Equal-width windows spanning the trace.
    pub windows: Vec<PhaseWindow>,
    /// max/min non-zero window rate — 1.0 means stationary.
    pub rate_variation: f64,
}

/// Slices the trace into `k` equal-width windows and analyzes each.
///
/// # Panics
///
/// Panics if the trace is empty or `k == 0`.
pub fn phase_analysis(trace: &CommTrace, k: usize) -> PhaseAnalysis {
    assert!(!trace.is_empty(), "cannot phase-analyze an empty trace");
    assert!(k > 0, "need at least one window");
    let mut times: Vec<u64> = trace.events().iter().map(|e| e.t).collect();
    times.sort_unstable();
    let first = times[0];
    let last = *times.last().expect("non-empty");
    let span = (last - first).max(1);
    let width = span.div_ceil(k as u64).max(1);

    let mut windows = Vec::with_capacity(k);
    for w in 0..k as u64 {
        let start = first + w * width;
        let end = start + width;
        let lo = times.partition_point(|&t| t < start);
        // The final window is inclusive so the last event is not dropped.
        let hi = if w == k as u64 - 1 { times.len() } else { times.partition_point(|&t| t < end) };
        let in_window = &times[lo..hi];
        let gaps: Vec<f64> = in_window.windows(2).map(|p| (p[1] - p[0]) as f64).collect();
        windows.push(PhaseWindow {
            start,
            end,
            messages: in_window.len() as u64,
            rate: in_window.len() as f64 / width as f64,
            fit: if gaps.len() >= 8 { fit_best(&gaps) } else { None },
        });
    }
    let rates: Vec<f64> = windows.iter().map(|w| w.rate).filter(|&r| r > 0.0).collect();
    let rate_variation = match (
        rates.iter().cloned().fold(f64::INFINITY, f64::min),
        rates.iter().cloned().fold(0.0f64, f64::max),
    ) {
        (min, max) if min.is_finite() && min > 0.0 => max / min,
        _ => 1.0,
    };
    PhaseAnalysis { windows, rate_variation }
}

#[cfg(test)]
mod tests {
    use commchar_trace::{CommEvent, EventKind};

    use super::*;

    fn trace_with_times(times: &[u64]) -> CommTrace {
        let mut tr = CommTrace::new(2);
        for (i, &t) in times.iter().enumerate() {
            tr.push(CommEvent::new(i as u64, t, 0, 1, 8, EventKind::Data));
        }
        tr
    }

    #[test]
    fn windows_partition_the_messages() {
        let times: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let tr = trace_with_times(&times);
        let pa = phase_analysis(&tr, 4);
        assert_eq!(pa.windows.len(), 4);
        let total: u64 = pa.windows.iter().map(|w| w.messages).sum();
        assert_eq!(total, 100);
        // Uniform rate: variation near 1.
        assert!(pa.rate_variation < 1.3, "variation = {}", pa.rate_variation);
    }

    #[test]
    fn bursty_trace_has_high_variation() {
        // All messages in the first tenth of the span.
        let mut times: Vec<u64> = (0..200).collect();
        times.push(10_000); // a single straggler stretching the span
        let tr = trace_with_times(&times);
        let pa = phase_analysis(&tr, 10);
        assert!(pa.rate_variation > 10.0, "variation = {}", pa.rate_variation);
        assert!(pa.windows[0].messages > 100);
        assert_eq!(pa.windows[5].messages, 0);
    }

    #[test]
    fn window_fits_where_data_allows() {
        let times: Vec<u64> = (0..400).map(|i| i * 7).collect();
        let tr = trace_with_times(&times);
        let pa = phase_analysis(&tr, 2);
        for w in &pa.windows {
            let fit = w.fit.as_ref().expect("plenty of gaps per window");
            assert_eq!(fit.dist.family_name(), "deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_rejected() {
        phase_analysis(&CommTrace::new(2), 4);
    }
}
