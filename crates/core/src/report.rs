//! Plain-text table rendering for the experiment regenerators.

use crate::analyze::TraceAnalysis;
use crate::suite::SuiteReport;
use crate::{CommSignature, SpatialSig, TemporalSig, VolumeSig};

/// Renders a fixed-width table: header row plus data rows.
///
/// # Example
///
/// ```
/// use commchar_core::report::table;
/// let s = table(
///     &["app", "msgs"],
///     &[vec!["is".into(), "35143".into()]],
/// );
/// assert!(s.contains("app"));
/// assert!(s.contains("is"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:<width$}  ", width = w));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One-line temporal summary for a signature: family, parameters, R², KS.
pub fn temporal_row(sig: &CommSignature) -> Vec<String> {
    let fit = &sig.temporal.aggregate;
    vec![
        sig.name.clone(),
        sig.class.name().to_string(),
        sig.nprocs.to_string(),
        fit.dist.family_name().to_string(),
        fit.dist.describe(),
        format!("{:.4}", fit.r2),
        format!("{:.4}", fit.ks),
    ]
}

/// Majority spatial classification across sources, e.g. `bimodal-uniform
/// (6/8 sources)` — pass a signature's or analysis's `spatial` field.
pub fn spatial_consensus(spatial: &[Option<SpatialSig>]) -> String {
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let mut total = 0;
    for sp in spatial.iter().flatten() {
        *counts.entry(sp.fit.model.name()).or_insert(0) += 1;
        total += 1;
    }
    match counts.iter().max_by_key(|&(_, &c)| c) {
        Some((name, c)) => format!("{name} ({c}/{total} sources)"),
        None => "no traffic".to_string(),
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// The deterministic suite table: one row per cell, in input order, with
/// no timing columns — byte-identical however many workers ran the suite.
pub fn suite_table(report: &SuiteReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|r| {
            let sig = &r.signature;
            vec![
                sig.name.clone(),
                sig.class.name().to_string(),
                r.cell.procs.to_string(),
                r.cell.scale.name().to_string(),
                r.cell.topology.name().to_string(),
                r.cell.routing.name().to_string(),
                r.messages.to_string(),
                format!("{}", sig.temporal.aggregate.dist),
                spatial_consensus(&sig.spatial),
                format!("{:.2}", r.synth_ratio),
            ]
        })
        .collect();
    table(
        &[
            "application",
            "class",
            "procs",
            "scale",
            "topology",
            "routing",
            "msgs",
            "inter-arrival fit",
            "spatial model",
            "synth ratio",
        ],
        &rows,
    )
}

/// Per-cell and aggregate timing for a suite run. Wall-clock figures vary
/// run to run, so this is kept out of [`suite_table`] (the CLI sends it
/// to stderr).
pub fn suite_timing(report: &SuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in &report.cells {
        let _ = writeln!(
            out,
            "{:>10} p{:<3} {:>6}: {:>8.3} s wall, {:>12.0} msgs/sec",
            r.signature.name,
            r.cell.procs,
            r.cell.scale.name(),
            r.wall.as_secs_f64(),
            r.msgs_per_sec,
        );
    }
    let _ = writeln!(
        out,
        "suite: {} cells on {} worker(s) in {:.3} s ({:.0} msgs/sec aggregate)",
        report.cells.len(),
        report.jobs,
        report.wall.as_secs_f64(),
        report.msgs_per_sec(),
    );
    out
}

/// Writes the temporal-attribute section shared by [`signature_report`]
/// and [`analysis_report`].
fn temporal_section(out: &mut String, temporal: &TemporalSig) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "temporal attribute");
    let _ = writeln!(
        out,
        "  inter-arrival ~ {}   (R² = {:.4}, KS = {:.4})",
        temporal.aggregate.dist, temporal.aggregate.r2, temporal.aggregate.ks
    );
    let b = temporal.burstiness;
    let _ = writeln!(
        out,
        "  burstiness: CV² = {:.2}, IDI(8) = {:.2}, ρ₁ = {:.2}",
        b.cv2, b.idi8, b.rho1
    );
}

/// Writes the spatial-attribute section shared by [`signature_report`]
/// and [`analysis_report`].
fn spatial_section(out: &mut String, spatial: &[Option<SpatialSig>]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "spatial attribute");
    let _ = writeln!(out, "  consensus: {}", spatial_consensus(spatial));
    let mut rows = Vec::new();
    for (s, sp) in spatial.iter().enumerate() {
        if let Some(sp) = sp {
            rows.push(vec![
                format!("p{s}"),
                sp.fit.model.to_string(),
                format!("{:.5}", sp.fit.sse),
            ]);
        }
    }
    let _ = writeln!(out, "{}", table(&["source", "model", "SSE"], &rows));
}

/// Writes the volume-attribute section shared by [`signature_report`]
/// and [`analysis_report`].
fn volume_section(out: &mut String, volume: &VolumeSig) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "volume attribute");
    let _ = writeln!(
        out,
        "  {} messages, {} bytes total, mean {:.1} bytes",
        volume.messages, volume.bytes, volume.mean_bytes
    );
}

/// Renders the full multi-section signature report (temporal, spatial,
/// volume, network) — the standard human-readable view used by the CLI.
pub fn signature_report(sig: &CommSignature) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "application : {} ({})", sig.name, sig.class.name());
    let _ = writeln!(out, "processors  : {}", sig.nprocs);
    let _ = writeln!(out, "exec ticks  : {}", sig.exec_ticks);
    let _ = writeln!(out);
    temporal_section(&mut out, &sig.temporal);
    let _ = writeln!(out);
    spatial_section(&mut out, &sig.spatial);
    volume_section(&mut out, &sig.volume);
    let _ = writeln!(out);
    let _ = writeln!(out, "network behaviour");
    let n = &sig.network;
    let _ = writeln!(
        out,
        "  mean latency {:.1} (median {:.0}, p95 {:.0}), blocked {:.1}, {:.2} hops, {:.4} bytes/tick",
        n.mean_latency, n.median_latency, n.p95_latency, n.mean_blocked, n.mean_hops, n.throughput
    );
    out
}

/// Renders the trace-only analysis report: the same temporal / spatial /
/// volume sections as [`signature_report`], with no network-behaviour
/// section (a trace pass cannot know latencies — that takes a replay).
/// Both characterize drivers emit this identical text for the same
/// events, which is what the streaming smoke test diffs.
pub fn analysis_report(a: &TraceAnalysis, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "trace       : {name}");
    let _ = writeln!(out, "processors  : {}", a.nodes);
    let _ = writeln!(out);
    temporal_section(&mut out, &a.temporal);
    let _ = writeln!(out);
    spatial_section(&mut out, &a.spatial);
    volume_section(&mut out, &a.volume);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s =
            table(&["a", "bbbb"], &[vec!["xxxx".into(), "y".into()], vec!["z".into(), "w".into()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}
