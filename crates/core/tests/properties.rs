//! Property-based tests for the characterization pipeline, driven by
//! synthetic traffic with known ground truth.

use commchar_apps::AppClass;
use commchar_core::analyze::{try_analyze_blocks, try_analyze_trace};
use commchar_core::report::{analysis_report, signature_report};
use commchar_core::{characterize, synthesize, try_characterize_jobs, Workload};
use commchar_mesh::MeshConfig;
use commchar_stats::spatial::SpatialModel;
use commchar_trace::replay::CausalReplayer;
use commchar_trace::{CommEvent, CommTrace, EventKind};
use commchar_tracestore::writer::pack_trace_with_block_len;
use commchar_tracestore::TraceReader;
use commchar_traffic::patterns::{hotspot, uniform_poisson};
use proptest::collection::vec;
use proptest::prelude::*;

fn workload_from(model: &commchar_traffic::TrafficModel, duration: u64, seed: u64) -> Workload {
    let n = model.nodes();
    let mesh = MeshConfig::for_nodes(n);
    let trace = model.generate(duration, seed);
    let netlog = CausalReplayer::new(mesh).replay(&trace);
    Workload {
        name: "synthetic".into(),
        class: AppClass::MessagePassing,
        nprocs: n,
        mesh,
        trace,
        netlog,
        exec_ticks: duration,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Characterizing uniform-Poisson traffic recovers: (a) an
    /// exponential-family temporal fit whose mean matches the configured
    /// rate, and (b) a uniform spatial classification.
    #[test]
    fn pipeline_recovers_uniform_poisson(seed in 0u64..200, n in 4usize..10) {
        let rate = 0.004;
        let model = uniform_poisson(n, rate, 32);
        let w = workload_from(&model, 200_000, seed);
        prop_assume!(w.trace.len() > 500);
        let sig = characterize(&w);

        // Temporal: aggregate rate = n * per-source rate.
        let mean = sig.temporal.aggregate.dist.mean();
        let expect = 1.0 / (rate * n as f64);
        prop_assert!((mean - expect).abs() / expect < 0.25, "mean {mean} vs {expect}");
        prop_assert!(sig.temporal.aggregate.r2 > 0.95);

        // Spatial: uniform everywhere.
        let uniform = sig
            .spatial
            .iter()
            .flatten()
            .filter(|s| s.fit.model == SpatialModel::Uniform)
            .count();
        prop_assert!(uniform * 3 >= n * 2, "only {uniform}/{n} classified uniform");

        // Burstiness: near-Poisson.
        prop_assert!((sig.temporal.burstiness.cv2 - 1.0).abs() < 0.4);
    }

    /// Characterizing hotspot traffic finds the favorite.
    #[test]
    fn pipeline_recovers_hotspot(seed in 0u64..200, hot in 0usize..8) {
        let n = 8;
        let hot = hot % n;
        let model = hotspot(n, hot, 0.6, 0.004, 32);
        let w = workload_from(&model, 150_000, seed);
        prop_assume!(w.trace.len() > 400);
        let sig = characterize(&w);
        let mut favored = 0;
        let mut classified = 0;
        for (s, sp) in sig.spatial.iter().enumerate() {
            if s == hot {
                continue;
            }
            if let Some(sp) = sp {
                classified += 1;
                if let SpatialModel::BimodalUniform { favorite, .. } = sp.fit.model {
                    if favorite == hot {
                        favored += 1;
                    }
                }
            }
        }
        prop_assert!(favored * 3 >= classified * 2, "{favored}/{classified} found the hotspot");
    }

    /// The parallel fit fan-out must be invisible: characterizing an
    /// arbitrary small trace with any worker count yields a signature
    /// identical to the sequential one field-for-field (Debug renders
    /// floats shortest-roundtrip, so the comparison is bitwise on every
    /// score and parameter) and an identical rendered report.
    #[test]
    fn parallel_characterize_is_identical_to_sequential(
        n in 3usize..8,
        jobs in 2usize..9,
        evs in vec((0u64..20_000, 0usize..64, 0usize..64, 1u32..512, 0u8..3), 3..150),
    ) {
        let mut trace = CommTrace::new(n);
        for (i, &(t, s, d, bytes, kind)) in evs.iter().enumerate() {
            let src = s % n;
            let dst = (src + 1 + d % (n - 1)) % n;
            let kind = match kind {
                0 => EventKind::Control,
                1 => EventKind::Data,
                _ => EventKind::Sync,
            };
            trace.push(CommEvent::new(i as u64, t, src as u16, dst as u16, bytes, kind));
        }
        trace.sort();
        let mesh = MeshConfig::for_nodes(n);
        let netlog = CausalReplayer::new(mesh).replay(&trace);
        let w = Workload {
            name: "prop".into(),
            class: AppClass::MessagePassing,
            nprocs: n,
            mesh,
            trace,
            netlog,
            exec_ticks: 20_000,
        };
        let seq = try_characterize_jobs(&w, 1).unwrap();
        let par = try_characterize_jobs(&w, jobs).unwrap();
        prop_assert_eq!(signature_report(&seq), signature_report(&par));
        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    /// The out-of-core promise: analyzing a packed trace block by block —
    /// for *any* block length and any worker count on either pool — must
    /// render the exact same report, byte for byte, as analyzing the
    /// in-memory events in one piece, and the structured results must be
    /// bitwise identical (Debug prints floats shortest-roundtrip).
    #[test]
    fn streamed_analysis_is_byte_identical_to_batch(
        n in 3usize..8,
        jobs in 1usize..7,
        block_jobs in 0usize..5,
        block_len in 1usize..48,
        evs in vec((0u64..20_000, 0usize..64, 0usize..64, 1u32..512, 0u8..3), 8..150),
    ) {
        let mut trace = CommTrace::new(n);
        for (i, &(t, s, d, bytes, kind)) in evs.iter().enumerate() {
            let src = s % n;
            let dst = (src + 1 + d % (n - 1)) % n;
            let kind = match kind {
                0 => EventKind::Control,
                1 => EventKind::Data,
                _ => EventKind::Sync,
            };
            trace.push(CommEvent::new(i as u64, t, src as u16, dst as u16, bytes, kind));
        }
        trace.sort();
        let shape = MeshConfig::for_nodes(n).shape;

        let batch = try_analyze_trace(&trace, shape, 1).unwrap();
        let packed = pack_trace_with_block_len(&trace, block_len);
        let reader = TraceReader::open(&packed).unwrap();
        let streamed = try_analyze_blocks(&reader, shape, jobs, block_jobs).unwrap();

        prop_assert_eq!(analysis_report(&batch, "t"), analysis_report(&streamed, "t"));
        prop_assert_eq!(format!("{batch:?}"), format!("{streamed:?}"));
    }

    /// Synthesis round-trip: fitting the synthetic traffic of a fitted
    /// model yields approximately the same aggregate rate (fixed point).
    #[test]
    fn synthesis_is_a_fixed_point_on_rate(seed in 0u64..100) {
        let model = uniform_poisson(6, 0.005, 16);
        let w = workload_from(&model, 120_000, seed);
        prop_assume!(w.trace.len() > 400);
        let sig = characterize(&w);
        let again = synthesize(&sig, w.mesh);
        let regen = again.generate(120_000, seed + 1);
        let r1 = w.trace.len() as f64;
        let r2 = regen.len() as f64;
        prop_assert!((r2 - r1).abs() / r1 < 0.3, "rates diverge: {r1} vs {r2}");
    }
}
