//! Property-based tests for the characterization pipeline, driven by
//! synthetic traffic with known ground truth.

use commchar_apps::AppClass;
use commchar_core::{characterize, synthesize, Workload};
use commchar_mesh::MeshConfig;
use commchar_stats::spatial::SpatialModel;
use commchar_trace::replay::CausalReplayer;
use commchar_traffic::patterns::{hotspot, uniform_poisson};
use proptest::prelude::*;

fn workload_from(model: &commchar_traffic::TrafficModel, duration: u64, seed: u64) -> Workload {
    let n = model.nodes();
    let mesh = MeshConfig::for_nodes(n);
    let trace = model.generate(duration, seed);
    let netlog = CausalReplayer::new(mesh).replay(&trace);
    Workload {
        name: "synthetic".into(),
        class: AppClass::MessagePassing,
        nprocs: n,
        mesh,
        trace,
        netlog,
        exec_ticks: duration,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Characterizing uniform-Poisson traffic recovers: (a) an
    /// exponential-family temporal fit whose mean matches the configured
    /// rate, and (b) a uniform spatial classification.
    #[test]
    fn pipeline_recovers_uniform_poisson(seed in 0u64..200, n in 4usize..10) {
        let rate = 0.004;
        let model = uniform_poisson(n, rate, 32);
        let w = workload_from(&model, 200_000, seed);
        prop_assume!(w.trace.len() > 500);
        let sig = characterize(&w);

        // Temporal: aggregate rate = n * per-source rate.
        let mean = sig.temporal.aggregate.dist.mean();
        let expect = 1.0 / (rate * n as f64);
        prop_assert!((mean - expect).abs() / expect < 0.25, "mean {mean} vs {expect}");
        prop_assert!(sig.temporal.aggregate.r2 > 0.95);

        // Spatial: uniform everywhere.
        let uniform = sig
            .spatial
            .iter()
            .flatten()
            .filter(|s| s.fit.model == SpatialModel::Uniform)
            .count();
        prop_assert!(uniform * 3 >= n * 2, "only {uniform}/{n} classified uniform");

        // Burstiness: near-Poisson.
        prop_assert!((sig.temporal.burstiness.cv2 - 1.0).abs() < 0.4);
    }

    /// Characterizing hotspot traffic finds the favorite.
    #[test]
    fn pipeline_recovers_hotspot(seed in 0u64..200, hot in 0usize..8) {
        let n = 8;
        let hot = hot % n;
        let model = hotspot(n, hot, 0.6, 0.004, 32);
        let w = workload_from(&model, 150_000, seed);
        prop_assume!(w.trace.len() > 400);
        let sig = characterize(&w);
        let mut favored = 0;
        let mut classified = 0;
        for (s, sp) in sig.spatial.iter().enumerate() {
            if s == hot {
                continue;
            }
            if let Some(sp) = sp {
                classified += 1;
                if let SpatialModel::BimodalUniform { favorite, .. } = sp.fit.model {
                    if favorite == hot {
                        favored += 1;
                    }
                }
            }
        }
        prop_assert!(favored * 3 >= classified * 2, "{favored}/{classified} found the hotspot");
    }

    /// Synthesis round-trip: fitting the synthetic traffic of a fitted
    /// model yields approximately the same aggregate rate (fixed point).
    #[test]
    fn synthesis_is_a_fixed_point_on_rate(seed in 0u64..100) {
        let model = uniform_poisson(6, 0.005, 16);
        let w = workload_from(&model, 120_000, seed);
        prop_assume!(w.trace.len() > 400);
        let sig = characterize(&w);
        let again = synthesize(&sig, w.mesh);
        let regen = again.generate(120_000, seed + 1);
        let r1 = w.trace.len() as f64;
        let r2 = regen.len() as f64;
        prop_assert!((r2 - r1).abs() / r1 < 0.3, "rates diverge: {r1} vs {r2}");
    }
}
