//! [`StreamBlockReader`]: sequential block iteration over a non-seekable
//! CCTRACE1 stream must yield exactly the blocks the footer-indexed
//! reader sees, end cleanly at the footer, and surface corruption as
//! typed errors — the contract `serve-feed --trace -` leans on.

use commchar_trace::{CommEvent, CommTrace, EventKind};
use commchar_tracestore::writer::pack_trace_with_block_len;
use commchar_tracestore::{
    decode_event_block, pack_trace, StreamBlockReader, StreamKind, TraceReader, TraceStoreError,
};

fn sample_trace(events: u64) -> CommTrace {
    let mut tr = CommTrace::new(6);
    for t in 0..events {
        let src = (t % 6) as u16;
        let dst = ((t * 5 + 1) % 6) as u16;
        if src != dst {
            let kind = match t % 3 {
                0 => EventKind::Control,
                1 => EventKind::Data,
                _ => EventKind::Sync,
            };
            tr.push(CommEvent::new(t, t * 7, src, dst, 16 + (t % 50) as u32, kind));
        }
    }
    tr
}

#[test]
fn stream_blocks_match_the_indexed_reader() {
    let tr = sample_trace(500);
    let packed = pack_trace_with_block_len(&tr, 37);
    let indexed = TraceReader::open(&packed).unwrap();
    let mut stream = StreamBlockReader::new(&packed[..]).unwrap();
    assert_eq!(stream.kind(), StreamKind::Events);
    assert_eq!(stream.nodes(), 6);
    let mut all = Vec::new();
    let mut blocks = 0usize;
    while let Some(payload) = stream.next_block().unwrap() {
        all.extend(decode_event_block(&payload, stream.nodes()).unwrap());
        blocks += 1;
    }
    assert_eq!(blocks, indexed.block_count());
    assert_eq!(stream.blocks_read(), blocks);
    assert_eq!(all, tr.events());
    // Once the footer is reached, further calls keep returning None.
    assert!(stream.next_block().unwrap().is_none());
}

#[test]
fn empty_trace_streams_zero_blocks() {
    let packed = pack_trace(&CommTrace::new(4));
    let mut stream = StreamBlockReader::new(&packed[..]).unwrap();
    assert_eq!(stream.nodes(), 4);
    assert!(stream.next_block().unwrap().is_none());
    assert_eq!(stream.blocks_read(), 0);
}

#[test]
fn header_errors_are_typed() {
    assert!(matches!(
        StreamBlockReader::new(&b"NOTATRC1"[..]).unwrap_err(),
        TraceStoreError::BadMagic { .. }
    ));
    assert!(matches!(
        StreamBlockReader::new(&b"CC"[..]).unwrap_err(),
        TraceStoreError::BadMagic { .. }
    ));
    // Valid magic, unknown stream-kind code.
    let mut bytes = b"CCTRACE1".to_vec();
    bytes.push(9);
    bytes.push(4);
    assert!(matches!(
        StreamBlockReader::new(&bytes[..]).unwrap_err(),
        TraceStoreError::BadStreamKind(9)
    ));
}

#[test]
fn truncation_without_a_footer_is_typed() {
    let packed = pack_trace_with_block_len(&sample_trace(200), 16);
    // Cut mid-way through the block run: the stream ends with no valid
    // footer region, so the reader reports truncation, not a clean end.
    let cut = &packed[..packed.len() / 2];
    let mut stream = StreamBlockReader::new(cut).unwrap();
    let err = loop {
        match stream.next_block() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("truncated stream ended cleanly"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, TraceStoreError::Truncated { .. }), "{err}");
}

#[test]
fn midstream_corruption_is_a_checksum_mismatch_not_an_early_end() {
    let tr = sample_trace(400);
    let mut packed = pack_trace_with_block_len(&tr, 25);
    // Flip one payload byte in the second block: frame 1 starts after the
    // header (8 magic + 1 kind + 1 nodes varint) and frame 0.
    let header_end = 10;
    let b0_len =
        u32::from_le_bytes(packed[header_end..header_end + 4].try_into().unwrap()) as usize;
    let corrupt_at = header_end + 8 + b0_len + 8 + 3;
    packed[corrupt_at] ^= 0xff;
    let mut stream = StreamBlockReader::new(&packed[..]).unwrap();
    assert!(stream.next_block().unwrap().is_some(), "block 0 is intact");
    // The trailing *real* footer must not let the corrupt block pass as a
    // clean end-of-stream: the footer-length consistency check fails.
    let err = stream.next_block().unwrap_err();
    assert!(matches!(err, TraceStoreError::ChecksumMismatch { block: 1, .. }), "{err}");
}
