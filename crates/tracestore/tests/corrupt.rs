//! Corrupt-input hardening: every malformed-file shape must surface as a
//! typed [`TraceStoreError`] — never a panic.

use commchar_mesh::{MeshConfig, MeshModel, NetMessage, NodeId, OnlineWormhole};
use commchar_trace::{CommEvent, CommTrace, EventKind};
use commchar_tracestore::{
    load_trace, pack_netlog, pack_trace, unpack_netlog, unpack_trace, unpack_trace_parallel,
    TraceReader, TraceStoreError, FOOTER_MAGIC, MAGIC,
};

fn sample_trace() -> CommTrace {
    let mut tr = CommTrace::new(8);
    let mut id = 0u64;
    for t in 0..300u64 {
        let src = (t % 8) as u16;
        let dst = ((t * 3 + 1) % 8) as u16;
        if src != dst {
            let kind = match t % 3 {
                0 => EventKind::Control,
                1 => EventKind::Data,
                _ => EventKind::Sync,
            };
            let mut e = CommEvent::new(id, t * 11, src, dst, 8 + (t % 120) as u32, kind);
            if id > 8 && t % 4 == 0 {
                e = e.after(id - 8);
            }
            tr.push(e);
            id += 1;
        }
    }
    tr
}

#[test]
fn truncated_file_at_every_prefix_is_a_typed_error() {
    let packed = pack_trace(&sample_trace());
    for cut in 0..packed.len() {
        match unpack_trace(&packed[..cut]) {
            Err(
                TraceStoreError::Truncated { .. }
                | TraceStoreError::BadMagic { .. }
                | TraceStoreError::VarintOverflow { .. }
                | TraceStoreError::ChecksumMismatch { .. }
                | TraceStoreError::Corrupt(_),
            ) => {}
            Err(other) => panic!("cut at {cut}: unexpected error class {other}"),
            Ok(_) => panic!("cut at {cut}: truncated file decoded successfully"),
        }
    }
}

#[test]
fn bad_magic_is_reported_with_the_found_bytes() {
    let mut packed = pack_trace(&sample_trace());
    packed[0] = b'X';
    match unpack_trace(&packed) {
        Err(TraceStoreError::BadMagic { found }) => assert_eq!(found[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // A damaged trailing magic is also a BadMagic, not a silent misparse.
    let mut packed = pack_trace(&sample_trace());
    let last = packed.len() - 1;
    packed[last] ^= 0xff;
    assert!(matches!(unpack_trace(&packed), Err(TraceStoreError::BadMagic { .. })));
}

#[test]
fn checksum_mismatch_names_the_block() {
    let trace = sample_trace();
    let packed = commchar_tracestore::writer::pack_trace_with_block_len(&trace, 64);
    let reader = TraceReader::open(&packed).unwrap();
    assert!(reader.block_count() > 2, "need several blocks for this test");
    // Flip one payload byte in the middle of the file: the block headers
    // start right after the file header, so pick a byte inside block 1's
    // payload by corrupting past the first block.
    let mut corrupt = packed.clone();
    let mid = packed.len() / 2;
    corrupt[mid] ^= 0x55;
    match unpack_trace(&corrupt) {
        Err(TraceStoreError::ChecksumMismatch { block, stored, computed }) => {
            assert!(block < reader.block_count());
            assert_ne!(stored, computed);
        }
        // Flipping a byte inside a varint column can also trip the
        // structural validators first if it lands in a block header.
        Err(TraceStoreError::Corrupt(_)) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn out_of_range_varint_is_typed() {
    // Hand-build a file whose node-count varint never terminates: magic,
    // kind byte, then 11 continuation bytes.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(1);
    bytes.extend_from_slice(&[0x80; 10]);
    bytes.push(0x01);
    // Enough trailer that the header parse is what fails.
    bytes.extend_from_slice(&[0u8; 4]);
    bytes.extend_from_slice(&FOOTER_MAGIC);
    match unpack_trace(&bytes) {
        Err(TraceStoreError::VarintOverflow { context }) => assert_eq!(context, "node count"),
        other => panic!("expected VarintOverflow, got {other:?}"),
    }
}

#[test]
fn footer_lies_are_structural_errors() {
    let packed = commchar_tracestore::writer::pack_trace_with_block_len(&sample_trace(), 50);
    // Corrupt the footer length field (4 bytes before the footer magic).
    let mut corrupt = packed.clone();
    let len_at = packed.len() - FOOTER_MAGIC.len() - 4;
    corrupt[len_at] = corrupt[len_at].wrapping_add(1);
    assert!(unpack_trace(&corrupt).is_err());
    // An absurd footer length cannot panic either.
    let mut corrupt = packed.clone();
    corrupt[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(unpack_trace(&corrupt).is_err());
}

#[test]
fn parallel_decode_reports_corruption_too() {
    let packed = commchar_tracestore::writer::pack_trace_with_block_len(&sample_trace(), 32);
    let mut corrupt = packed.clone();
    let mid = packed.len() / 2;
    corrupt[mid] ^= 0xff;
    assert!(unpack_trace_parallel(&corrupt, 4).is_err());
    assert!(unpack_trace_parallel(&packed, 4).is_ok());
}

#[test]
fn wrong_stream_kind_is_rejected() {
    let trace = sample_trace();
    let msgs: Vec<NetMessage> = trace
        .events()
        .iter()
        .map(|e| NetMessage {
            id: e.id,
            src: NodeId(e.src),
            dst: NodeId(e.dst),
            bytes: e.bytes,
            inject: commchar_des::SimTime::from_ticks(e.t),
        })
        .collect();
    let log = OnlineWormhole::new(MeshConfig::for_nodes(8)).simulate(&msgs);
    let packed_log = pack_netlog(&log);
    // Events API over a netlog stream (and vice versa) errors cleanly.
    assert!(matches!(unpack_trace(&packed_log), Err(TraceStoreError::Corrupt(_))));
    let packed_trace = pack_trace(&trace);
    assert!(matches!(unpack_netlog(&packed_trace), Err(TraceStoreError::Corrupt(_))));
    // And the netlog round-trips faithfully through its own API.
    let back = unpack_netlog(&packed_log).unwrap();
    assert_eq!(back.records(), log.records());
    assert_eq!(back.utilization(), log.utilization());
}

#[test]
fn semantic_corruption_is_caught_by_trace_check() {
    // A packed file can be structurally perfect yet describe an invalid
    // trace (duplicate ids). Build one through the writer directly.
    let mut w = commchar_tracestore::TraceWriter::new(Vec::new(), 4).unwrap();
    w.push(CommEvent::new(7, 0, 0, 1, 8, EventKind::Data)).unwrap();
    w.push(CommEvent::new(7, 5, 1, 2, 8, EventKind::Data)).unwrap();
    let bytes = w.finish().unwrap();
    match load_trace(&bytes) {
        Err(TraceStoreError::Corrupt(msg)) => assert!(msg.contains("duplicate"), "{msg}"),
        other => panic!("expected Corrupt(duplicate id), got {other:?}"),
    }
}
