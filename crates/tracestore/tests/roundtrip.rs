//! Property-based round-trip suite: random event streams pack → unpack
//! identically (for any block size and worker count), and causal replay
//! of a packed trace is record-identical to replaying the source
//! JSON-lines trace.

use commchar_mesh::MeshConfig;
use commchar_trace::replay::CausalReplayer;
use commchar_trace::{CommEvent, CommTrace, EventKind};
use commchar_tracestore::writer::pack_trace_with_block_len;
use commchar_tracestore::{
    load_trace, pack_trace, profile_packed, unpack_trace, unpack_trace_parallel, BlockSource,
    FileReader, TraceReader,
};
use proptest::prelude::*;

/// Random trace with random kinds, lengths and a valid dependency
/// structure (dependencies strictly precede their dependents in `(t, id)`
/// order, as `CommTrace::check` requires).
fn arb_trace(nodes: usize, max: usize) -> impl Strategy<Value = CommTrace> {
    prop::collection::vec(
        (
            0..nodes as u16,
            0..nodes as u16,
            1u32..100_000,
            0u64..1_000_000,
            0u8..3,
            prop::option::of(0usize..max),
        ),
        1..max,
    )
    .prop_map(move |raw| {
        let mut trace = CommTrace::new(nodes);
        let mut id = 0u64;
        let mut times: Vec<(u64, u64)> = Vec::new();
        for (s, d, bytes, t, kind, dep) in raw {
            if s == d {
                continue;
            }
            let kind = match kind {
                0 => EventKind::Control,
                1 => EventKind::Data,
                _ => EventKind::Sync,
            };
            // Sparse ids exercise the delta coder's sign handling.
            let sparse_id = id * 3 + (t % 2);
            let mut e = CommEvent::new(sparse_id, t, s, d, bytes, kind);
            if let Some(dep) = dep {
                if let Some(&(dep_t, dep_id)) = times.get(dep % times.len().max(1)) {
                    if (dep_t, dep_id) < (t, sparse_id) {
                        e = e.after(dep_id);
                    }
                }
            }
            trace.push(e);
            times.push((t, sparse_id));
            id += 1;
        }
        trace
    })
}

proptest! {
    /// Pack → unpack returns exactly the input events, nodes and order.
    #[test]
    fn pack_unpack_is_identity(trace in arb_trace(16, 200)) {
        let packed = pack_trace(&trace);
        let back = unpack_trace(&packed).unwrap();
        prop_assert_eq!(back.nodes(), trace.nodes());
        prop_assert_eq!(back.events(), trace.events());
        // And packing the unpacked trace reproduces the same bytes.
        prop_assert_eq!(pack_trace(&back), packed);
    }

    /// Block size never changes the decoded stream, only the framing.
    #[test]
    fn block_size_is_invisible(trace in arb_trace(8, 120), block_len in 1usize..64) {
        let packed = pack_trace_with_block_len(&trace, block_len);
        let reader = TraceReader::open(&packed).unwrap();
        prop_assert_eq!(reader.len(), trace.len() as u64);
        prop_assert_eq!(reader.block_count(), trace.len().div_ceil(block_len));
        let back = reader.read_trace().unwrap();
        prop_assert_eq!(back.events(), trace.events());
    }

    /// Parallel decode equals sequential decode for any worker count.
    #[test]
    fn parallel_decode_matches_sequential(trace in arb_trace(8, 150), jobs in 1usize..6) {
        let packed = pack_trace_with_block_len(&trace, 16);
        let seq = unpack_trace(&packed).unwrap();
        let par = unpack_trace_parallel(&packed, jobs).unwrap();
        prop_assert_eq!(seq.events(), par.events());
    }

    /// Causal replay over the packed trace produces a `NetLog` identical
    /// to replaying the source JSON-lines trace — the packed store is a
    /// drop-in substrate for the static strategy.
    #[test]
    fn replay_packed_equals_replay_jsonl(trace in arb_trace(8, 80)) {
        prop_assume!(!trace.is_empty());
        let from_jsonl = load_trace(trace.to_jsonl().as_bytes()).unwrap();
        let from_packed = load_trace(&pack_trace(&trace)).unwrap();
        let cfg = MeshConfig::for_nodes(8);
        let rep = CausalReplayer::new(cfg);
        let log_jsonl = rep.replay(&from_jsonl);
        let log_packed = rep.replay(&from_packed);
        prop_assert_eq!(log_jsonl.records(), log_packed.records());
    }

    /// The file-backed reader agrees with the in-memory reader block by
    /// block: same index, same per-block decode, through both inherent
    /// methods and the `BlockSource` trait.
    #[test]
    fn file_reader_matches_slice_reader(trace in arb_trace(8, 120), block_len in 1usize..48, seed in 0u64..u64::MAX) {
        let packed = pack_trace_with_block_len(&trace, block_len);
        let path = std::env::temp_dir().join(format!("commchar-filereader-{seed:x}.cct"));
        std::fs::write(&path, &packed).unwrap();
        let mem = TraceReader::open(&packed).unwrap();
        let file = FileReader::open(&path).unwrap();
        prop_assert_eq!(file.nodes(), mem.nodes());
        prop_assert_eq!(file.len(), mem.len());
        prop_assert_eq!(file.block_count(), mem.block_count());
        for b in 0..mem.block_count() {
            prop_assert_eq!(file.block_records(b), mem.block_records(b));
            prop_assert_eq!(file.block_payload_len(b), mem.block_payload_len(b));
            prop_assert_eq!(file.decode_events(b).unwrap(), mem.decode_events(b).unwrap());
            let f = BlockSource::decode_events(&file, b).unwrap();
            let m = BlockSource::decode_events(&mem, b).unwrap();
            prop_assert_eq!(f, m);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Streaming profile over packed bytes equals the in-memory profile.
    #[test]
    fn packed_profile_matches_in_memory(trace in arb_trace(6, 100)) {
        let packed = pack_trace_with_block_len(&trace, 32);
        let streamed = profile_packed(&packed).unwrap();
        let direct = commchar_trace::profile::profile(&trace);
        prop_assert_eq!(streamed.messages, direct.messages);
        prop_assert_eq!(streamed.bytes, direct.bytes);
        prop_assert_eq!(streamed.span, direct.span);
        prop_assert_eq!(streamed.kind_counts, direct.kind_counts);
        for (a, b) in streamed.sources.iter().zip(&direct.sources) {
            prop_assert_eq!(a.messages, b.messages);
            prop_assert_eq!(&a.dest_counts, &b.dest_counts);
            prop_assert_eq!(&a.dest_bytes, &b.dest_bytes);
            prop_assert!((a.mean_gap - b.mean_gap).abs() < 1e-12);
        }
    }
}
