//! Blocked streaming writers and the one-shot `pack_*` helpers.

use std::io::Write;

use commchar_mesh::{MsgRecord, NetLog};
use commchar_trace::{CommEvent, CommTrace};

use crate::{columns, fnv1a, varint, StreamKind, TraceStoreError, FOOTER_MAGIC, MAGIC};

/// Records per block unless overridden: large enough that per-block
/// framing (8 bytes + footer entry) is noise, small enough that dozens of
/// blocks exist to decode in parallel and block-at-a-time streaming stays
/// cheap on memory.
pub const DEFAULT_BLOCK_LEN: usize = 4096;

/// Shared framing logic: magic + header up front, `(payload len, count)`
/// accounting per block, footer + trailer at the end.
#[derive(Debug)]
struct Framer<W: Write> {
    out: W,
    index: Vec<(u64, u64)>, // (payload bytes, record count) per block
}

impl<W: Write> Framer<W> {
    fn new(mut out: W, kind: StreamKind, nodes: usize) -> Result<Self, TraceStoreError> {
        out.write_all(&MAGIC)?;
        out.write_all(&[kind.code()])?;
        let mut header = Vec::new();
        varint::put(&mut header, nodes as u64);
        out.write_all(&header)?;
        Ok(Framer { out, index: Vec::new() })
    }

    fn write_block(&mut self, payload: &[u8], count: usize) -> Result<(), TraceStoreError> {
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&fnv1a(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.index.push((payload.len() as u64, count as u64));
        Ok(())
    }

    /// Writes the footer (block index + `extra` trailer bytes), its
    /// length, and the trailing magic, then hands back the sink.
    fn finish(mut self, extra: &[u8]) -> Result<W, TraceStoreError> {
        let mut footer = Vec::new();
        varint::put(&mut footer, self.index.len() as u64);
        for &(len, count) in &self.index {
            varint::put(&mut footer, len);
            varint::put(&mut footer, count);
        }
        footer.extend_from_slice(extra);
        self.out.write_all(&footer)?;
        self.out.write_all(&(footer.len() as u32).to_le_bytes())?;
        self.out.write_all(&FOOTER_MAGIC)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming writer for [`CommEvent`] streams: push events as they are
/// generated (a profiler sink), blocks are encoded and written every
/// [`DEFAULT_BLOCK_LEN`] events, and [`finish`](TraceWriter::finish)
/// seals the file with the block-index footer.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    framer: Framer<W>,
    nodes: usize,
    block_len: usize,
    pending: Vec<CommEvent>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a packed event stream over `nodes` processors on `out`.
    ///
    /// # Errors
    ///
    /// Fails if `nodes == 0` or on an I/O error writing the header.
    pub fn new(out: W, nodes: usize) -> Result<Self, TraceStoreError> {
        Self::with_block_len(out, nodes, DEFAULT_BLOCK_LEN)
    }

    /// Like [`new`](Self::new) with an explicit block size (records per
    /// block; mainly for tests and benchmarks).
    ///
    /// # Errors
    ///
    /// Fails if `nodes == 0`, `block_len == 0`, or on an I/O error.
    pub fn with_block_len(out: W, nodes: usize, block_len: usize) -> Result<Self, TraceStoreError> {
        if nodes == 0 {
            return Err(TraceStoreError::Corrupt("trace needs at least one node".into()));
        }
        if block_len == 0 {
            return Err(TraceStoreError::Corrupt("block length must be positive".into()));
        }
        let framer = Framer::new(out, StreamKind::Events, nodes)?;
        Ok(TraceWriter { framer, nodes, block_len, pending: Vec::with_capacity(block_len) })
    }

    /// Appends one event, flushing a full block if due.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints and self-messages (the same
    /// invariants [`CommTrace::push`] asserts, as typed errors), and
    /// propagates I/O failures.
    pub fn push(&mut self, ev: CommEvent) -> Result<(), TraceStoreError> {
        if ev.src as usize >= self.nodes || ev.dst as usize >= self.nodes {
            return Err(TraceStoreError::Corrupt(format!(
                "event {} endpoint out of range for {} nodes",
                ev.id, self.nodes
            )));
        }
        if ev.src == ev.dst {
            return Err(TraceStoreError::Corrupt(format!("event {} is a self-message", ev.id)));
        }
        self.pending.push(ev);
        if self.pending.len() >= self.block_len {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceStoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let payload = columns::encode_events(&self.pending);
        self.framer.write_block(&payload, self.pending.len())?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial block and writes the footer, returning
    /// the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> Result<W, TraceStoreError> {
        self.flush_block()?;
        self.framer.finish(&[])
    }
}

/// Streaming writer for [`MsgRecord`] streams (a packed [`NetLog`]).
#[derive(Debug)]
pub struct NetLogWriter<W: Write> {
    framer: Framer<W>,
    block_len: usize,
    pending: Vec<MsgRecord>,
    utilization: Vec<(u32, f64)>,
}

impl<W: Write> NetLogWriter<W> {
    /// Starts a packed record stream on `out`. `nodes` is advisory (the
    /// node count of the mesh that produced the log; 0 if unknown).
    ///
    /// # Errors
    ///
    /// Fails on an I/O error writing the header.
    pub fn new(out: W, nodes: usize) -> Result<Self, TraceStoreError> {
        let framer = Framer::new(out, StreamKind::NetLog, nodes)?;
        Ok(NetLogWriter {
            framer,
            block_len: DEFAULT_BLOCK_LEN,
            pending: Vec::new(),
            utilization: Vec::new(),
        })
    }

    /// Appends one record, flushing a full block if due.
    ///
    /// # Errors
    ///
    /// Rejects records delivered before injection; propagates I/O errors.
    pub fn push(&mut self, rec: MsgRecord) -> Result<(), TraceStoreError> {
        if rec.delivered < rec.inject {
            return Err(TraceStoreError::Corrupt(format!(
                "record {} delivered before injection",
                rec.id
            )));
        }
        self.pending.push(rec);
        if self.pending.len() >= self.block_len {
            let payload = columns::encode_records(&self.pending);
            self.framer.write_block(&payload, self.pending.len())?;
            self.pending.clear();
        }
        Ok(())
    }

    /// Attaches per-channel utilization figures, stored in the footer.
    pub fn set_utilization(&mut self, util: Vec<(u32, f64)>) {
        self.utilization = util;
    }

    /// Flushes the final partial block and writes the footer (including
    /// the utilization trailer), returning the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn finish(mut self) -> Result<W, TraceStoreError> {
        if !self.pending.is_empty() {
            let payload = columns::encode_records(&self.pending);
            self.framer.write_block(&payload, self.pending.len())?;
            self.pending.clear();
        }
        let mut extra = Vec::new();
        varint::put(&mut extra, self.utilization.len() as u64);
        for &(chan, frac) in &self.utilization {
            varint::put(&mut extra, chan as u64);
            extra.extend_from_slice(&frac.to_bits().to_le_bytes());
        }
        self.framer.finish(&extra)
    }
}

/// Packs a whole [`CommTrace`] into bytes.
pub fn pack_trace(trace: &CommTrace) -> Vec<u8> {
    pack_trace_with_block_len(trace, DEFAULT_BLOCK_LEN)
}

/// [`pack_trace`] with an explicit block size (tests and benchmarks).
pub fn pack_trace_with_block_len(trace: &CommTrace, block_len: usize) -> Vec<u8> {
    let mut w = TraceWriter::with_block_len(Vec::new(), trace.nodes(), block_len)
        .expect("Vec sink cannot fail");
    for &e in trace.events() {
        w.push(e).expect("trace invariants already hold");
    }
    w.finish().expect("Vec sink cannot fail")
}

/// Packs a whole [`NetLog`] into bytes. The mesh node count is inferred
/// as one past the largest endpoint (0 for an empty log).
pub fn pack_netlog(log: &NetLog) -> Vec<u8> {
    let nodes =
        log.records().iter().map(|r| r.src.index().max(r.dst.index()) + 1).max().unwrap_or(0);
    let mut w = NetLogWriter::new(Vec::new(), nodes).expect("Vec sink cannot fail");
    for &r in log.records() {
        w.push(r).expect("log invariants already hold");
    }
    w.set_utilization(log.utilization().to_vec());
    w.finish().expect("Vec sink cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use commchar_trace::EventKind;

    #[test]
    fn writer_rejects_invalid_events_without_panicking() {
        let mut w = TraceWriter::new(Vec::new(), 4).unwrap();
        let bad_dst = CommEvent::new(0, 0, 0, 9, 8, EventKind::Data);
        assert!(matches!(w.push(bad_dst), Err(TraceStoreError::Corrupt(_))));
        let self_msg = CommEvent::new(0, 0, 2, 2, 8, EventKind::Data);
        assert!(matches!(w.push(self_msg), Err(TraceStoreError::Corrupt(_))));
        assert!(TraceWriter::new(Vec::new(), 0).is_err());
        assert!(TraceWriter::with_block_len(Vec::new(), 4, 0).is_err());
    }

    #[test]
    fn io_errors_surface() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = TraceWriter::new(Broken, 2).err().expect("header write must fail");
        assert!(matches!(err, TraceStoreError::Io(_)), "{err}");
    }

    #[test]
    fn empty_trace_packs_to_header_and_footer_only() {
        let packed = pack_trace(&CommTrace::new(3));
        // magic + kind + nodes varint + footer("0 blocks") + len + magic.
        assert!(packed.len() < 32, "unexpected size {}", packed.len());
    }
}
