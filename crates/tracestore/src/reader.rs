//! Seekable block reader: footer index, checksum verification, and
//! sequential / streaming / parallel decode.

use commchar_mesh::{MsgRecord, NetLog};
use commchar_trace::profile::{ProfileAccum, TraceProfile};
use commchar_trace::{CommEvent, CommTrace};

use crate::varint::Cursor;
use crate::{columns, fnv1a, StreamKind, TraceStoreError, FOOTER_MAGIC, MAGIC};

/// One block's location, from the footer index.
#[derive(Clone, Copy, Debug)]
struct BlockMeta {
    /// Absolute offset of the block's 8-byte header.
    offset: usize,
    /// Payload bytes (excluding the 8-byte header).
    payload_len: usize,
    /// Records in the block.
    count: usize,
}

/// A packed trace file opened for reading.
///
/// Opening parses the magic, header and footer index only; block payloads
/// are decoded on demand, so a reader over a memory-mapped or fully-read
/// file can seek to any block without touching the others.
#[derive(Debug)]
pub struct TraceReader<'a> {
    bytes: &'a [u8],
    kind: StreamKind,
    nodes: usize,
    blocks: Vec<BlockMeta>,
    records: u64,
    utilization: Vec<(u32, f64)>,
}

impl<'a> TraceReader<'a> {
    /// Parses the file structure (header + footer index) without decoding
    /// any block.
    ///
    /// # Errors
    ///
    /// Any structural problem — short file, bad magic at either end, a
    /// footer that does not tile the block region — yields a typed
    /// [`TraceStoreError`].
    pub fn open(bytes: &'a [u8]) -> Result<Self, TraceStoreError> {
        if bytes.len() < MAGIC.len() {
            return Err(TraceStoreError::BadMagic { found: bytes.to_vec() });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(TraceStoreError::BadMagic { found: bytes[..MAGIC.len()].to_vec() });
        }
        let mut header = Cursor::new(&bytes[MAGIC.len()..]);
        let kind = StreamKind::from_code(header.byte("stream kind")?)?;
        let nodes = header.varint("node count")? as usize;
        let header_end = MAGIC.len() + header.pos();
        if kind == StreamKind::Events && nodes == 0 {
            return Err(TraceStoreError::Corrupt("header declares zero nodes".into()));
        }

        // Trailer: ... [footer payload][u32le footer len][footer magic].
        let tail = FOOTER_MAGIC.len() + 4;
        if bytes.len() < header_end + tail {
            return Err(TraceStoreError::Truncated {
                context: "footer trailer",
                needed: header_end + tail,
                have: bytes.len(),
            });
        }
        let magic_at = bytes.len() - FOOTER_MAGIC.len();
        if bytes[magic_at..] != FOOTER_MAGIC {
            return Err(TraceStoreError::BadMagic { found: bytes[magic_at..].to_vec() });
        }
        let len_at = magic_at - 4;
        let footer_len =
            u32::from_le_bytes(bytes[len_at..magic_at].try_into().expect("4 bytes")) as usize;
        let footer_start = len_at.checked_sub(footer_len).ok_or(TraceStoreError::Truncated {
            context: "footer payload",
            needed: footer_len + tail,
            have: bytes.len(),
        })?;
        if footer_start < header_end {
            return Err(TraceStoreError::Corrupt(format!(
                "footer length {footer_len} overlaps the header"
            )));
        }

        let mut footer = Cursor::new(&bytes[footer_start..len_at]);
        let block_count = footer.varint("footer block count")? as usize;
        if block_count > footer_start {
            // Each block needs ≥8 bytes of file, so this count is a lie.
            return Err(TraceStoreError::Corrupt(format!(
                "footer claims {block_count} blocks in a {footer_start}-byte file"
            )));
        }
        let mut blocks = Vec::with_capacity(block_count);
        let mut offset = header_end;
        let mut records = 0u64;
        for i in 0..block_count {
            let payload_len = footer.varint("footer block length")? as usize;
            let count = footer.varint("footer block record count")? as usize;
            let end =
                offset.checked_add(8 + payload_len).filter(|&e| e <= footer_start).ok_or_else(
                    || TraceStoreError::Corrupt(format!("block {i} extends past the footer")),
                )?;
            blocks.push(BlockMeta { offset, payload_len, count });
            records += count as u64;
            offset = end;
        }
        if offset != footer_start {
            return Err(TraceStoreError::Corrupt(format!(
                "{} unindexed bytes between the last block and the footer",
                footer_start - offset
            )));
        }

        // NetLog streams carry a utilization trailer after the index.
        let utilization = if kind == StreamKind::NetLog {
            let n = footer.varint("utilization count")? as usize;
            if n > footer.remaining() {
                return Err(TraceStoreError::Corrupt(format!(
                    "utilization trailer claims {n} entries in {} bytes",
                    footer.remaining()
                )));
            }
            let mut util = Vec::with_capacity(n);
            for _ in 0..n {
                let chan = footer.varint("utilization channel")?;
                if chan > u32::MAX as u64 {
                    return Err(TraceStoreError::Corrupt(format!("channel id {chan} exceeds u32")));
                }
                let bits = footer.bytes(8, "utilization fraction")?;
                util.push((
                    chan as u32,
                    f64::from_bits(u64::from_le_bytes(bits.try_into().expect("8 bytes"))),
                ));
            }
            util
        } else {
            Vec::new()
        };
        if footer.remaining() != 0 {
            return Err(TraceStoreError::Corrupt(format!(
                "{} trailing bytes in the footer",
                footer.remaining()
            )));
        }

        Ok(TraceReader { bytes, kind, nodes, blocks, records, utilization })
    }

    /// What the stream contains.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// Processor count from the header (0 for a netlog of unknown mesh).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total records across all blocks, from the index alone.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Per-channel utilization from a netlog stream's footer.
    pub fn utilization(&self) -> &[(u32, f64)] {
        &self.utilization
    }

    /// Verifies one block's checksum and returns its payload.
    fn payload(&self, block: usize) -> Result<&'a [u8], TraceStoreError> {
        let meta = self.blocks[block];
        let head = &self.bytes[meta.offset..meta.offset + 8];
        let stored_len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        if stored_len != meta.payload_len {
            return Err(TraceStoreError::Corrupt(format!(
                "block {block} header length {stored_len} disagrees with the footer index \
                 ({} bytes)",
                meta.payload_len
            )));
        }
        let stored = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        let payload = &self.bytes[meta.offset + 8..meta.offset + 8 + meta.payload_len];
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(TraceStoreError::ChecksumMismatch { block, stored, computed });
        }
        Ok(payload)
    }

    fn expect_kind(&self, kind: StreamKind) -> Result<(), TraceStoreError> {
        if self.kind != kind {
            return Err(TraceStoreError::Corrupt(format!(
                "stream holds {} records, expected {}",
                self.kind.name(),
                kind.name()
            )));
        }
        Ok(())
    }

    /// Decodes one block of events (checksum-verified).
    ///
    /// # Errors
    ///
    /// Fails on a checksum mismatch, a non-event stream, or any decode
    /// error inside the block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn decode_events(&self, block: usize) -> Result<Vec<CommEvent>, TraceStoreError> {
        self.expect_kind(StreamKind::Events)?;
        let events = columns::decode_events(self.payload(block)?, self.nodes)?;
        if events.len() != self.blocks[block].count {
            return Err(TraceStoreError::Corrupt(format!(
                "block {block} decoded {} events but the index promised {}",
                events.len(),
                self.blocks[block].count
            )));
        }
        Ok(events)
    }

    /// Decodes one block of netlog records (checksum-verified).
    ///
    /// # Errors
    ///
    /// Fails on a checksum mismatch, a non-netlog stream, or any decode
    /// error inside the block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn decode_records(&self, block: usize) -> Result<Vec<MsgRecord>, TraceStoreError> {
        self.expect_kind(StreamKind::NetLog)?;
        let records = columns::decode_records(self.payload(block)?)?;
        if records.len() != self.blocks[block].count {
            return Err(TraceStoreError::Corrupt(format!(
                "block {block} decoded {} records but the index promised {}",
                records.len(),
                self.blocks[block].count
            )));
        }
        Ok(records)
    }

    /// Streams every event in file order with one-block memory.
    ///
    /// # Errors
    ///
    /// Stops at the first decode error.
    pub fn for_each_event(&self, mut f: impl FnMut(CommEvent)) -> Result<(), TraceStoreError> {
        for block in 0..self.blocks.len() {
            for e in self.decode_events(block)? {
                f(e);
            }
        }
        Ok(())
    }

    /// Decodes the whole stream into a validated [`CommTrace`]
    /// sequentially.
    ///
    /// # Errors
    ///
    /// Fails on any block decode error, or if the assembled trace
    /// violates [`CommTrace::check`] (duplicate ids, dangling or
    /// non-causal dependencies).
    pub fn read_trace(&self) -> Result<CommTrace, TraceStoreError> {
        self.expect_kind(StreamKind::Events)?;
        let mut trace = CommTrace::new(self.nodes);
        self.for_each_event(|e| trace.push(e))?;
        trace.check().map_err(TraceStoreError::Corrupt)?;
        Ok(trace)
    }

    /// Decodes the whole stream into a validated [`CommTrace`], fanning
    /// blocks out over `jobs` worker threads (`0` = one per hardware
    /// thread) via [`commchar_pool::run_indexed`]. Decoded blocks come
    /// back in file order regardless of worker count, so the assembled
    /// trace is identical to [`read_trace`](Self::read_trace).
    ///
    /// # Errors
    ///
    /// The first failing block (in file order) determines the error.
    pub fn read_trace_parallel(&self, jobs: usize) -> Result<CommTrace, TraceStoreError> {
        self.expect_kind(StreamKind::Events)?;
        if commchar_pool::resolve_jobs(jobs).min(self.blocks.len()) <= 1 {
            return self.read_trace();
        }
        let decoded =
            commchar_pool::run_indexed(jobs, self.blocks.len(), |i| self.decode_events(i));
        let mut trace = CommTrace::new(self.nodes);
        for block in decoded {
            for e in block? {
                trace.push(e);
            }
        }
        trace.check().map_err(TraceStoreError::Corrupt)?;
        Ok(trace)
    }

    /// Decodes the whole stream into a [`NetLog`] (records in file order,
    /// utilization restored from the footer).
    ///
    /// # Errors
    ///
    /// Fails on any block decode error or a non-netlog stream.
    pub fn read_netlog(&self) -> Result<NetLog, TraceStoreError> {
        self.expect_kind(StreamKind::NetLog)?;
        let mut log = NetLog::new();
        for block in 0..self.blocks.len() {
            for r in self.decode_records(block)? {
                log.push(r);
            }
        }
        log.set_utilization(self.utilization.clone());
        Ok(log)
    }
}

/// One-shot sequential unpack of a packed [`CommTrace`].
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn unpack_trace(bytes: &[u8]) -> Result<CommTrace, TraceStoreError> {
    TraceReader::open(bytes)?.read_trace()
}

/// One-shot parallel unpack of a packed [`CommTrace`] (`jobs` worker
/// threads, `0` = one per hardware thread).
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn unpack_trace_parallel(bytes: &[u8], jobs: usize) -> Result<CommTrace, TraceStoreError> {
    TraceReader::open(bytes)?.read_trace_parallel(jobs)
}

/// One-shot unpack of a packed [`NetLog`].
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn unpack_netlog(bytes: &[u8]) -> Result<NetLog, TraceStoreError> {
    TraceReader::open(bytes)?.read_netlog()
}

/// Profiles a packed event stream block-at-a-time — the whole-trace
/// [`TraceProfile`] without ever materializing the event list.
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn profile_packed(bytes: &[u8]) -> Result<TraceProfile, TraceStoreError> {
    let reader = TraceReader::open(bytes)?;
    reader.expect_kind(StreamKind::Events)?;
    let mut accum = ProfileAccum::new(reader.nodes());
    reader.for_each_event(|e| accum.push(&e))?;
    Ok(accum.finish())
}
