//! Seekable block readers: footer index, checksum verification, and
//! sequential / streaming / parallel decode — over in-memory bytes
//! ([`TraceReader`]) or directly against a file ([`FileReader`]), unified
//! by the [`BlockSource`] trait for out-of-core consumers.

use commchar_mesh::{MsgRecord, NetLog};
use commchar_trace::profile::{ProfileAccum, TraceProfile};
use commchar_trace::{CommEvent, CommTrace};

use crate::varint::Cursor;
use crate::{columns, fnv1a, StreamKind, TraceStoreError, FOOTER_MAGIC, MAGIC};

/// One block's location, from the footer index.
#[derive(Clone, Copy, Debug)]
struct BlockMeta {
    /// Absolute offset of the block's 8-byte header.
    offset: usize,
    /// Payload bytes (excluding the 8-byte header).
    payload_len: usize,
    /// Records in the block.
    count: usize,
}

/// Parses the leading magic + header from the file's first bytes (the
/// whole file, or any prefix of at least [`HEADER_PREFIX`] bytes).
/// Returns `(kind, nodes, header_end)`.
fn parse_header(head: &[u8]) -> Result<(StreamKind, usize, usize), TraceStoreError> {
    if head.len() < MAGIC.len() {
        return Err(TraceStoreError::BadMagic { found: head.to_vec() });
    }
    if head[..MAGIC.len()] != MAGIC {
        return Err(TraceStoreError::BadMagic { found: head[..MAGIC.len()].to_vec() });
    }
    let mut header = Cursor::new(&head[MAGIC.len()..]);
    let kind = StreamKind::from_code(header.byte("stream kind")?)?;
    let nodes = header.varint("node count")? as usize;
    let header_end = MAGIC.len() + header.pos();
    if kind == StreamKind::Events && nodes == 0 {
        return Err(TraceStoreError::Corrupt("header declares zero nodes".into()));
    }
    Ok((kind, nodes, header_end))
}

/// Longest possible header: magic + kind byte + 10-byte varint.
const HEADER_PREFIX: usize = MAGIC.len() + 1 + 10;

/// Validates the footer trailer (`trailer` = the last
/// `min(file_len, 12)` bytes: `[u32le len][footer magic]`) and returns
/// the footer payload's byte range `footer_start..len_at`.
fn locate_footer(
    file_len: usize,
    header_end: usize,
    trailer: &[u8],
) -> Result<(usize, usize), TraceStoreError> {
    let tail = FOOTER_MAGIC.len() + 4;
    if file_len < header_end + tail {
        return Err(TraceStoreError::Truncated {
            context: "footer trailer",
            needed: header_end + tail,
            have: file_len,
        });
    }
    let magic = &trailer[trailer.len() - FOOTER_MAGIC.len()..];
    if magic != FOOTER_MAGIC {
        return Err(TraceStoreError::BadMagic { found: magic.to_vec() });
    }
    let len_bytes = &trailer[trailer.len() - tail..trailer.len() - FOOTER_MAGIC.len()];
    let footer_len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let len_at = file_len - tail;
    let footer_start = len_at.checked_sub(footer_len).ok_or(TraceStoreError::Truncated {
        context: "footer payload",
        needed: footer_len + tail,
        have: file_len,
    })?;
    if footer_start < header_end {
        return Err(TraceStoreError::Corrupt(format!(
            "footer length {footer_len} overlaps the header"
        )));
    }
    Ok((footer_start, len_at))
}

/// What the footer decodes to: the block index, total record count, and
/// any netlog utilization trailer (`(channel, fraction)` pairs).
type ParsedFooter = (Vec<BlockMeta>, u64, Vec<(u32, f64)>);

/// Parses the footer payload (`bytes[footer_start..len_at]`) into the
/// block index, total record count, and any netlog utilization trailer.
fn parse_footer(
    kind: StreamKind,
    footer_bytes: &[u8],
    header_end: usize,
    footer_start: usize,
) -> Result<ParsedFooter, TraceStoreError> {
    let mut footer = Cursor::new(footer_bytes);
    let block_count = footer.varint("footer block count")? as usize;
    if block_count > footer_start {
        // Each block needs ≥8 bytes of file, so this count is a lie.
        return Err(TraceStoreError::Corrupt(format!(
            "footer claims {block_count} blocks in a {footer_start}-byte file"
        )));
    }
    let mut blocks = Vec::with_capacity(block_count);
    let mut offset = header_end;
    let mut records = 0u64;
    for i in 0..block_count {
        let payload_len = footer.varint("footer block length")? as usize;
        let count = footer.varint("footer block record count")? as usize;
        let end = offset.checked_add(8 + payload_len).filter(|&e| e <= footer_start).ok_or_else(
            || TraceStoreError::Corrupt(format!("block {i} extends past the footer")),
        )?;
        blocks.push(BlockMeta { offset, payload_len, count });
        records += count as u64;
        offset = end;
    }
    if offset != footer_start {
        return Err(TraceStoreError::Corrupt(format!(
            "{} unindexed bytes between the last block and the footer",
            footer_start - offset
        )));
    }

    // NetLog streams carry a utilization trailer after the index.
    let utilization = if kind == StreamKind::NetLog {
        let n = footer.varint("utilization count")? as usize;
        if n > footer.remaining() {
            return Err(TraceStoreError::Corrupt(format!(
                "utilization trailer claims {n} entries in {} bytes",
                footer.remaining()
            )));
        }
        let mut util = Vec::with_capacity(n);
        for _ in 0..n {
            let chan = footer.varint("utilization channel")?;
            if chan > u32::MAX as u64 {
                return Err(TraceStoreError::Corrupt(format!("channel id {chan} exceeds u32")));
            }
            let bits = footer.bytes(8, "utilization fraction")?;
            util.push((
                chan as u32,
                f64::from_bits(u64::from_le_bytes(bits.try_into().expect("8 bytes"))),
            ));
        }
        util
    } else {
        Vec::new()
    };
    if footer.remaining() != 0 {
        return Err(TraceStoreError::Corrupt(format!(
            "{} trailing bytes in the footer",
            footer.remaining()
        )));
    }
    Ok((blocks, records, utilization))
}

/// Verifies one block frame (`[u32le len][u32le fnv][payload]`) against
/// the footer index and its checksum, returning the payload slice.
fn verify_block(frame: &[u8], block: usize, payload_len: usize) -> Result<&[u8], TraceStoreError> {
    let stored_len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
    if stored_len != payload_len {
        return Err(TraceStoreError::Corrupt(format!(
            "block {block} header length {stored_len} disagrees with the footer index \
             ({payload_len} bytes)"
        )));
    }
    let stored = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    let payload = &frame[8..8 + payload_len];
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(TraceStoreError::ChecksumMismatch { block, stored, computed });
    }
    Ok(payload)
}

/// A packed trace file opened for reading.
///
/// Opening parses the magic, header and footer index only; block payloads
/// are decoded on demand, so a reader over a memory-mapped or fully-read
/// file can seek to any block without touching the others.
#[derive(Debug)]
pub struct TraceReader<'a> {
    bytes: &'a [u8],
    kind: StreamKind,
    nodes: usize,
    blocks: Vec<BlockMeta>,
    records: u64,
    utilization: Vec<(u32, f64)>,
}

impl<'a> TraceReader<'a> {
    /// Parses the file structure (header + footer index) without decoding
    /// any block.
    ///
    /// # Errors
    ///
    /// Any structural problem — short file, bad magic at either end, a
    /// footer that does not tile the block region — yields a typed
    /// [`TraceStoreError`].
    pub fn open(bytes: &'a [u8]) -> Result<Self, TraceStoreError> {
        let (kind, nodes, header_end) = parse_header(bytes)?;
        let trailer_at = bytes.len().saturating_sub(FOOTER_MAGIC.len() + 4);
        let (footer_start, len_at) = locate_footer(bytes.len(), header_end, &bytes[trailer_at..])?;
        let (blocks, records, utilization) =
            parse_footer(kind, &bytes[footer_start..len_at], header_end, footer_start)?;
        Ok(TraceReader { bytes, kind, nodes, blocks, records, utilization })
    }

    /// What the stream contains.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// Processor count from the header (0 for a netlog of unknown mesh).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total records across all blocks, from the index alone.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Per-channel utilization from a netlog stream's footer.
    pub fn utilization(&self) -> &[(u32, f64)] {
        &self.utilization
    }

    /// Records in one block, from the index alone (no decode).
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn block_records(&self, block: usize) -> usize {
        self.blocks[block].count
    }

    /// One block's encoded payload size in bytes, from the index alone.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn block_payload_len(&self, block: usize) -> usize {
        self.blocks[block].payload_len
    }

    /// Verifies one block's checksum and returns its payload.
    fn payload(&self, block: usize) -> Result<&'a [u8], TraceStoreError> {
        let meta = self.blocks[block];
        verify_block(
            &self.bytes[meta.offset..meta.offset + 8 + meta.payload_len],
            block,
            meta.payload_len,
        )
    }

    fn expect_kind(&self, kind: StreamKind) -> Result<(), TraceStoreError> {
        if self.kind != kind {
            return Err(TraceStoreError::Corrupt(format!(
                "stream holds {} records, expected {}",
                self.kind.name(),
                kind.name()
            )));
        }
        Ok(())
    }

    /// Decodes one block of events (checksum-verified).
    ///
    /// # Errors
    ///
    /// Fails on a checksum mismatch, a non-event stream, or any decode
    /// error inside the block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn decode_events(&self, block: usize) -> Result<Vec<CommEvent>, TraceStoreError> {
        self.expect_kind(StreamKind::Events)?;
        let events = columns::decode_events(self.payload(block)?, self.nodes)?;
        if events.len() != self.blocks[block].count {
            return Err(TraceStoreError::Corrupt(format!(
                "block {block} decoded {} events but the index promised {}",
                events.len(),
                self.blocks[block].count
            )));
        }
        Ok(events)
    }

    /// Decodes one block of netlog records (checksum-verified).
    ///
    /// # Errors
    ///
    /// Fails on a checksum mismatch, a non-netlog stream, or any decode
    /// error inside the block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn decode_records(&self, block: usize) -> Result<Vec<MsgRecord>, TraceStoreError> {
        self.expect_kind(StreamKind::NetLog)?;
        let records = columns::decode_records(self.payload(block)?)?;
        if records.len() != self.blocks[block].count {
            return Err(TraceStoreError::Corrupt(format!(
                "block {block} decoded {} records but the index promised {}",
                records.len(),
                self.blocks[block].count
            )));
        }
        Ok(records)
    }

    /// Streams every event in file order with one-block memory.
    ///
    /// # Errors
    ///
    /// Stops at the first decode error.
    pub fn for_each_event(&self, mut f: impl FnMut(CommEvent)) -> Result<(), TraceStoreError> {
        for block in 0..self.blocks.len() {
            for e in self.decode_events(block)? {
                f(e);
            }
        }
        Ok(())
    }

    /// Decodes the whole stream into a validated [`CommTrace`]
    /// sequentially.
    ///
    /// # Errors
    ///
    /// Fails on any block decode error, or if the assembled trace
    /// violates [`CommTrace::check`] (duplicate ids, dangling or
    /// non-causal dependencies).
    pub fn read_trace(&self) -> Result<CommTrace, TraceStoreError> {
        self.expect_kind(StreamKind::Events)?;
        let mut trace = CommTrace::new(self.nodes);
        self.for_each_event(|e| trace.push(e))?;
        trace.check().map_err(TraceStoreError::Corrupt)?;
        Ok(trace)
    }

    /// Decodes the whole stream into a validated [`CommTrace`], fanning
    /// blocks out over `jobs` worker threads (`0` = one per hardware
    /// thread) via [`commchar_pool::run_indexed`]. Decoded blocks come
    /// back in file order regardless of worker count, so the assembled
    /// trace is identical to [`read_trace`](Self::read_trace).
    ///
    /// # Errors
    ///
    /// The first failing block (in file order) determines the error.
    pub fn read_trace_parallel(&self, jobs: usize) -> Result<CommTrace, TraceStoreError> {
        self.expect_kind(StreamKind::Events)?;
        if commchar_pool::resolve_jobs(jobs).min(self.blocks.len()) <= 1 {
            return self.read_trace();
        }
        let decoded =
            commchar_pool::run_indexed(jobs, self.blocks.len(), |i| self.decode_events(i));
        let mut trace = CommTrace::new(self.nodes);
        for block in decoded {
            for e in block? {
                trace.push(e);
            }
        }
        trace.check().map_err(TraceStoreError::Corrupt)?;
        Ok(trace)
    }

    /// Decodes the whole stream into a [`NetLog`] (records in file order,
    /// utilization restored from the footer).
    ///
    /// # Errors
    ///
    /// Fails on any block decode error or a non-netlog stream.
    pub fn read_netlog(&self) -> Result<NetLog, TraceStoreError> {
        self.expect_kind(StreamKind::NetLog)?;
        let mut log = NetLog::new();
        for block in 0..self.blocks.len() {
            for r in self.decode_records(block)? {
                log.push(r);
            }
        }
        log.set_utilization(self.utilization.clone());
        Ok(log)
    }
}

/// A packed trace file opened for **out-of-core** reading: only the
/// header and footer index are held in memory, and each block is read
/// from disk (and decoded) on demand.
///
/// This is what lets `characterize --stream` process a multi-GB packed
/// trace in constant memory — a [`TraceReader`] needs the whole file as
/// one in-memory slice. Reads are positioned (`pread`-style on Unix), so
/// concurrent block decodes from a worker pool need no shared cursor.
#[derive(Debug)]
pub struct FileReader {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<std::fs::File>,
    kind: StreamKind,
    nodes: usize,
    blocks: Vec<BlockMeta>,
    records: u64,
}

impl FileReader {
    /// Opens a packed file and parses its structure (header + footer
    /// index) without reading any block payload.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`TraceStoreError::Io`]; any structural
    /// problem yields the same typed errors as [`TraceReader::open`].
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, TraceStoreError> {
        let file = std::fs::File::open(path)?;
        let file_len = usize::try_from(file.metadata()?.len())
            .map_err(|_| TraceStoreError::Corrupt("file exceeds the address space".into()))?;
        let mut head = vec![0u8; HEADER_PREFIX.min(file_len)];
        read_at(&file, 0, &mut head)?;
        let (kind, nodes, header_end) = parse_header(&head)?;
        let tail = FOOTER_MAGIC.len() + 4;
        let mut trailer = vec![0u8; tail.min(file_len)];
        read_at(&file, (file_len - trailer.len()) as u64, &mut trailer)?;
        let (footer_start, len_at) = locate_footer(file_len, header_end, &trailer)?;
        let mut footer = vec![0u8; len_at - footer_start];
        read_at(&file, footer_start as u64, &mut footer)?;
        let (blocks, records, _) = parse_footer(kind, &footer, header_end, footer_start)?;
        Ok(FileReader {
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: std::sync::Mutex::new(file),
            kind,
            nodes,
            blocks,
            records,
        })
    }

    /// What the stream contains.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// Processor count from the header.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total records across all blocks, from the index alone.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Records in one block, from the index alone (no decode).
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn block_records(&self, block: usize) -> usize {
        self.blocks[block].count
    }

    /// One block's encoded payload size in bytes, from the index alone.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn block_payload_len(&self, block: usize) -> usize {
        self.blocks[block].payload_len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceStoreError> {
        #[cfg(unix)]
        {
            read_at(&self.file, offset, buf)
        }
        #[cfg(not(unix))]
        {
            read_at(&self.file.lock().expect("file lock poisoned"), offset, buf)
        }
    }

    /// Reads one block from disk, verifies its checksum, and decodes its
    /// events.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a checksum mismatch, a non-event stream, or
    /// any decode error inside the block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.block_count()`.
    pub fn decode_events(&self, block: usize) -> Result<Vec<CommEvent>, TraceStoreError> {
        if self.kind != StreamKind::Events {
            return Err(TraceStoreError::Corrupt(format!(
                "stream holds {} records, expected events",
                self.kind.name()
            )));
        }
        let meta = self.blocks[block];
        let mut frame = vec![0u8; 8 + meta.payload_len];
        self.read_at(meta.offset as u64, &mut frame)?;
        let payload = verify_block(&frame, block, meta.payload_len)?;
        let events = columns::decode_events(payload, self.nodes)?;
        if events.len() != meta.count {
            return Err(TraceStoreError::Corrupt(format!(
                "block {block} decoded {} events but the index promised {}",
                events.len(),
                meta.count
            )));
        }
        Ok(events)
    }
}

/// Positioned read that does not disturb any shared cursor (Unix `pread`).
#[cfg(unix)]
fn read_at(file: &std::fs::File, offset: u64, buf: &mut [u8]) -> Result<(), TraceStoreError> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset).map_err(TraceStoreError::Io)
}

/// Fallback positioned read via seek — callers serialize access.
#[cfg(not(unix))]
fn read_at(mut file: &std::fs::File, offset: u64, buf: &mut [u8]) -> Result<(), TraceStoreError> {
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset)).map_err(TraceStoreError::Io)?;
    file.read_exact(buf).map_err(TraceStoreError::Io)
}

/// Block-granular access to a packed **event** stream, whether the bytes
/// are all in memory ([`TraceReader`]) or read from disk on demand
/// ([`FileReader`]).
///
/// This is the feed of the streaming characterization pipeline: a generic
/// driver walks `0..block_count()`, decodes blocks (possibly in parallel —
/// implementations are [`Sync`]), and folds per-block partials without
/// ever holding the whole event list.
pub trait BlockSource: Sync {
    /// Processor count from the header.
    fn nodes(&self) -> usize;
    /// Number of blocks.
    fn block_count(&self) -> usize;
    /// Total records across all blocks, from the index alone.
    fn len(&self) -> u64;
    /// Whether the stream holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Records in one block, from the index alone (no decode).
    fn block_records(&self, block: usize) -> usize;
    /// Decodes one block of events (checksum-verified).
    ///
    /// # Errors
    ///
    /// Implementations fail on corrupt blocks, non-event streams, and —
    /// for file-backed sources — I/O errors.
    fn decode_events(&self, block: usize) -> Result<Vec<CommEvent>, TraceStoreError>;
}

impl BlockSource for TraceReader<'_> {
    fn nodes(&self) -> usize {
        TraceReader::nodes(self)
    }
    fn block_count(&self) -> usize {
        TraceReader::block_count(self)
    }
    fn len(&self) -> u64 {
        TraceReader::len(self)
    }
    fn block_records(&self, block: usize) -> usize {
        TraceReader::block_records(self, block)
    }
    fn decode_events(&self, block: usize) -> Result<Vec<CommEvent>, TraceStoreError> {
        TraceReader::decode_events(self, block)
    }
}

impl BlockSource for FileReader {
    fn nodes(&self) -> usize {
        FileReader::nodes(self)
    }
    fn block_count(&self) -> usize {
        FileReader::block_count(self)
    }
    fn len(&self) -> u64 {
        FileReader::len(self)
    }
    fn block_records(&self, block: usize) -> usize {
        FileReader::block_records(self, block)
    }
    fn decode_events(&self, block: usize) -> Result<Vec<CommEvent>, TraceStoreError> {
        FileReader::decode_events(self, block)
    }
}

/// One-shot sequential unpack of a packed [`CommTrace`].
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn unpack_trace(bytes: &[u8]) -> Result<CommTrace, TraceStoreError> {
    TraceReader::open(bytes)?.read_trace()
}

/// One-shot parallel unpack of a packed [`CommTrace`] (`jobs` worker
/// threads, `0` = one per hardware thread).
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn unpack_trace_parallel(bytes: &[u8], jobs: usize) -> Result<CommTrace, TraceStoreError> {
    TraceReader::open(bytes)?.read_trace_parallel(jobs)
}

/// One-shot unpack of a packed [`NetLog`].
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn unpack_netlog(bytes: &[u8]) -> Result<NetLog, TraceStoreError> {
    TraceReader::open(bytes)?.read_netlog()
}

/// Profiles a packed event stream block-at-a-time — the whole-trace
/// [`TraceProfile`] without ever materializing the event list.
///
/// # Errors
///
/// Any structural or per-block decode failure.
pub fn profile_packed(bytes: &[u8]) -> Result<TraceProfile, TraceStoreError> {
    let reader = TraceReader::open(bytes)?;
    reader.expect_kind(StreamKind::Events)?;
    let mut accum = ProfileAccum::new(reader.nodes());
    reader.for_each_event(|e| accum.push(&e))?;
    Ok(accum.finish())
}

/// An incremental reader over a *non-seekable* CCTRACE1 byte stream — a
/// pipe, a socket, stdin. Parses the header eagerly, then yields each
/// checksum-verified block payload as it arrives, holding one block in
/// memory at a time. This is what lets a live producer pipe a packed
/// stream into a consumer (`commchar serve-feed --trace -`) while the
/// file is still being written at the far end.
///
/// The seekable readers locate blocks through the trailing footer index,
/// which a stream cannot reach first. Block frames are self-describing
/// (`[u32le len][u32le fnv][payload]`), so this reader instead walks them
/// sequentially and detects the end of the block run structurally: when a
/// candidate frame fails its checksum or runs past end-of-stream, the
/// remaining bytes are required to be a well-formed footer region
/// (`[payload][u32le len][CCTFOOT1]` with a consistent length); if they
/// are, the stream is cleanly finished, otherwise the original error
/// stands. A corrupt mid-stream block therefore still surfaces as a
/// [`TraceStoreError::ChecksumMismatch`] — the trailing real footer makes
/// the length check fail — it is never silently swallowed as an early
/// end.
#[derive(Debug)]
pub struct StreamBlockReader<R: std::io::Read> {
    src: R,
    kind: StreamKind,
    nodes: usize,
    blocks: usize,
    done: bool,
}

impl<R: std::io::Read> StreamBlockReader<R> {
    /// Opens the stream: reads and validates the magic + header.
    ///
    /// # Errors
    ///
    /// [`TraceStoreError`] on I/O failure, a bad magic, an unknown stream
    /// kind, or a malformed node-count varint.
    pub fn new(mut src: R) -> Result<Self, TraceStoreError> {
        let mut head = [0u8; 9]; // magic + kind byte
        src.read_exact(&mut head).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceStoreError::BadMagic { found: Vec::new() },
            _ => TraceStoreError::Io(e),
        })?;
        if head[..MAGIC.len()] != MAGIC {
            return Err(TraceStoreError::BadMagic { found: head[..MAGIC.len()].to_vec() });
        }
        let kind = StreamKind::from_code(head[MAGIC.len()])?;
        // The node count is an LEB128 varint, read byte-at-a-time (the
        // stream cannot over-read and push back).
        let mut nodes: u64 = 0;
        let mut shift = 0u32;
        loop {
            let mut b = [0u8; 1];
            src.read_exact(&mut b)?;
            if shift >= 64 || (shift == 63 && b[0] > 1) {
                return Err(TraceStoreError::VarintOverflow { context: "node count" });
            }
            nodes |= ((b[0] & 0x7f) as u64) << shift;
            if b[0] & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        if kind == StreamKind::Events && nodes == 0 {
            return Err(TraceStoreError::Corrupt("header declares zero nodes".into()));
        }
        Ok(StreamBlockReader { src, kind, nodes: nodes as usize, blocks: 0, done: false })
    }

    /// Stream kind from the header.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// Processor count from the header.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Blocks yielded so far.
    pub fn blocks_read(&self) -> usize {
        self.blocks
    }

    /// Reads everything remaining on the stream.
    fn drain(&mut self, into: &mut Vec<u8>) -> Result<(), TraceStoreError> {
        self.src.read_to_end(into)?;
        Ok(())
    }

    /// Checks that `tail` is a complete footer region: payload, a `u32le`
    /// length that matches the payload, and the trailing magic.
    fn is_footer_region(tail: &[u8]) -> bool {
        let trailer = FOOTER_MAGIC.len() + 4;
        if tail.len() < trailer || tail[tail.len() - FOOTER_MAGIC.len()..] != FOOTER_MAGIC {
            return false;
        }
        let len_at = tail.len() - trailer;
        let stored = &tail[len_at..len_at + 4];
        u32::from_le_bytes(stored.try_into().expect("4 bytes")) as usize == len_at
    }

    /// Resolves an end-of-blocks candidate: `consumed` holds every byte
    /// read past the last good block. Returns `Ok(None)` if the remainder
    /// of the stream forms a valid footer region, otherwise `err`.
    fn finish_or(
        &mut self,
        mut consumed: Vec<u8>,
        err: TraceStoreError,
    ) -> Result<Option<Vec<u8>>, TraceStoreError> {
        self.drain(&mut consumed)?;
        if Self::is_footer_region(&consumed) {
            self.done = true;
            return Ok(None);
        }
        Err(err)
    }

    /// Yields the next checksum-verified block payload, or `Ok(None)` once
    /// the stream reaches its footer.
    ///
    /// # Errors
    ///
    /// [`TraceStoreError`] on I/O failure, a mid-stream checksum mismatch,
    /// or a stream that ends without a valid footer region.
    pub fn next_block(&mut self) -> Result<Option<Vec<u8>>, TraceStoreError> {
        if self.done {
            return Ok(None);
        }
        let block = self.blocks;
        let mut frame = [0u8; 8];
        let mut got = 0;
        while got < frame.len() {
            match self.src.read(&mut frame[got..]) {
                Ok(0) => {
                    return self.finish_or(
                        frame[..got].to_vec(),
                        TraceStoreError::Truncated {
                            context: "block frame header",
                            needed: 8,
                            have: got,
                        },
                    );
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TraceStoreError::Io(e)),
            }
        }
        let payload_len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let stored = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let mut payload = vec![0u8; payload_len];
        let mut have = 0;
        while have < payload_len {
            match self.src.read(&mut payload[have..]) {
                Ok(0) => {
                    let mut consumed = frame.to_vec();
                    consumed.extend_from_slice(&payload[..have]);
                    return self.finish_or(
                        consumed,
                        TraceStoreError::Truncated {
                            context: "block payload",
                            needed: payload_len,
                            have,
                        },
                    );
                }
                Ok(n) => have += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TraceStoreError::Io(e)),
            }
        }
        let computed = fnv1a(&payload);
        if computed != stored {
            let mut consumed = frame.to_vec();
            consumed.extend_from_slice(&payload);
            return self.finish_or(
                consumed,
                TraceStoreError::ChecksumMismatch { block, stored, computed },
            );
        }
        self.blocks += 1;
        Ok(Some(payload))
    }
}
