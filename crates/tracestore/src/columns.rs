//! Columnar block payload encodings.
//!
//! Within one block, record fields are laid out as separate columns so
//! that each column's regularity (monotone ids, clustered timestamps, a
//! tiny kind alphabet, mostly-absent dependencies) is visible to its
//! encoder:
//!
//! **Event blocks** (`varint n` first, then columns in this order):
//!
//! | column | encoding |
//! |---|---|
//! | `id` | zigzag varint of the delta from the previous id (first from 0) |
//! | `t` | zigzag varint of the delta from the previous time |
//! | `src`, `dst` | plain varint |
//! | `bytes` | plain varint |
//! | `kind` | dictionary: `u8` size, the distinct kind codes, then — only if the dictionary has >1 entry — bit-packed per-record indices (1 or 2 bits, LSB-first) |
//! | `depends_on` | presence bitmap (1 bit per record, LSB-first), then one zigzag varint `id − dep` per present record |
//!
//! **NetLog blocks** store [`MsgRecord`] columns: delta ids, varint
//! `src`/`dst`/`bytes`, delta `inject`, varint latency (`delivered −
//! inject`, never negative), varint `hops` and `zero_load`.

use commchar_mesh::{MsgRecord, NodeId};
use commchar_trace::{CommEvent, EventKind};

use crate::varint::{self, Cursor};
use crate::TraceStoreError;

fn kind_code(kind: EventKind) -> u8 {
    match kind {
        EventKind::Control => 0,
        EventKind::Data => 1,
        EventKind::Sync => 2,
    }
}

fn kind_from_code(code: u8) -> Result<EventKind, TraceStoreError> {
    match code {
        0 => Ok(EventKind::Control),
        1 => Ok(EventKind::Data),
        2 => Ok(EventKind::Sync),
        other => Err(TraceStoreError::Corrupt(format!("unknown event kind code {other}"))),
    }
}

fn delta_column(out: &mut Vec<u8>, values: impl Iterator<Item = u64>) {
    let mut prev = 0i64;
    for v in values {
        let v = v as i64;
        varint::put(out, varint::zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
}

fn read_delta(
    cur: &mut Cursor<'_>,
    prev: &mut i64,
    ctx: &'static str,
) -> Result<u64, TraceStoreError> {
    let delta = cur.svarint(ctx)?;
    *prev = prev.wrapping_add(delta);
    Ok(*prev as u64)
}

/// Encodes one block of events as a column payload.
pub(crate) fn encode_events(events: &[CommEvent]) -> Vec<u8> {
    let n = events.len();
    // ~4 bytes/field is a comfortable upper-bound starting capacity.
    let mut out = Vec::with_capacity(8 + n * 8);
    varint::put(&mut out, n as u64);
    delta_column(&mut out, events.iter().map(|e| e.id));
    delta_column(&mut out, events.iter().map(|e| e.t));
    for e in events {
        varint::put(&mut out, e.src as u64);
    }
    for e in events {
        varint::put(&mut out, e.dst as u64);
    }
    for e in events {
        varint::put(&mut out, e.bytes as u64);
    }
    // Kind dictionary: the distinct codes present, in first-seen order.
    let mut dict: Vec<u8> = Vec::with_capacity(3);
    for e in events {
        let c = kind_code(e.kind);
        if !dict.contains(&c) {
            dict.push(c);
        }
    }
    out.push(dict.len() as u8);
    out.extend_from_slice(&dict);
    if dict.len() > 1 {
        let bits = if dict.len() == 2 { 1 } else { 2 };
        let mut packed = vec![0u8; (n * bits).div_ceil(8)];
        for (i, e) in events.iter().enumerate() {
            let idx = dict.iter().position(|&c| c == kind_code(e.kind)).expect("code in dict");
            let bit = i * bits;
            // 1- and 2-bit indices never straddle a byte boundary.
            packed[bit / 8] |= (idx as u8) << (bit % 8);
        }
        out.extend_from_slice(&packed);
    }
    // Dependency presence bitmap + deltas from the event's own id.
    let mut bitmap = vec![0u8; n.div_ceil(8)];
    for (i, e) in events.iter().enumerate() {
        if e.depends_on.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for e in events {
        if let Some(dep) = e.depends_on {
            varint::put(&mut out, varint::zigzag((e.id as i64).wrapping_sub(dep as i64)));
        }
    }
    out
}

/// Decodes one event-block payload. `nodes` bounds endpoint validation.
pub(crate) fn decode_events(
    payload: &[u8],
    nodes: usize,
) -> Result<Vec<CommEvent>, TraceStoreError> {
    let mut cur = Cursor::new(payload);
    let n = cur.varint("event count")? as usize;
    // A record needs ≥7 payload bytes even when every column is one byte,
    // so an absurd count is caught before any allocation.
    if n > payload.len() {
        return Err(TraceStoreError::Corrupt(format!(
            "block claims {n} events in a {}-byte payload",
            payload.len()
        )));
    }
    let mut ids = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        ids.push(read_delta(&mut cur, &mut prev, "event id")?);
    }
    let mut times = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        times.push(read_delta(&mut cur, &mut prev, "event time")?);
    }
    let endpoint = |v: u64, what: &str| -> Result<u16, TraceStoreError> {
        if v as usize >= nodes || v > u16::MAX as u64 {
            return Err(TraceStoreError::Corrupt(format!(
                "{what} {v} out of range for {nodes} nodes"
            )));
        }
        Ok(v as u16)
    };
    let mut srcs = Vec::with_capacity(n);
    for _ in 0..n {
        srcs.push(endpoint(cur.varint("event source")?, "source")?);
    }
    let mut dsts = Vec::with_capacity(n);
    for _ in 0..n {
        dsts.push(endpoint(cur.varint("event destination")?, "destination")?);
    }
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        let b = cur.varint("event bytes")?;
        if b > u32::MAX as u64 {
            return Err(TraceStoreError::Corrupt(format!("event length {b} exceeds u32")));
        }
        bytes.push(b as u32);
    }
    let dict_len = cur.byte("kind dictionary size")? as usize;
    if dict_len > 3 || (dict_len == 0 && n > 0) {
        return Err(TraceStoreError::Corrupt(format!("kind dictionary of size {dict_len}")));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for &code in cur.bytes(dict_len, "kind dictionary")? {
        dict.push(kind_from_code(code)?);
    }
    let kinds: Vec<EventKind> = if dict_len == 1 {
        vec![dict[0]; n]
    } else {
        let bits = if dict_len == 2 { 1 } else { 2 };
        let packed = cur.bytes((n * bits).div_ceil(8), "kind indices")?;
        let mask = (1u8 << bits) - 1;
        (0..n)
            .map(|i| {
                let bit = i * bits;
                let idx = ((packed[bit / 8] >> (bit % 8)) & mask) as usize;
                dict.get(idx).copied().ok_or_else(|| {
                    TraceStoreError::Corrupt(format!("kind index {idx} outside dictionary"))
                })
            })
            .collect::<Result<_, _>>()?
    };
    let bitmap = cur.bytes(n.div_ceil(8), "dependency bitmap")?.to_vec();
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let dep = if bitmap[i / 8] >> (i % 8) & 1 == 1 {
            let delta = cur.svarint("dependency delta")?;
            let dep = (ids[i] as i64).wrapping_sub(delta);
            if dep < 0 {
                return Err(TraceStoreError::Corrupt(format!(
                    "event {} depends on negative id {dep}",
                    ids[i]
                )));
            }
            Some(dep as u64)
        } else {
            None
        };
        if srcs[i] == dsts[i] {
            return Err(TraceStoreError::Corrupt(format!(
                "event {} is a self-message at node {}",
                ids[i], srcs[i]
            )));
        }
        let mut e = CommEvent::new(ids[i], times[i], srcs[i], dsts[i], bytes[i], kinds[i]);
        e.depends_on = dep;
        events.push(e);
    }
    if cur.remaining() != 0 {
        return Err(TraceStoreError::Corrupt(format!(
            "{} trailing bytes after the last column",
            cur.remaining()
        )));
    }
    Ok(events)
}

/// Encodes one block of [`MsgRecord`]s as a column payload.
pub(crate) fn encode_records(records: &[MsgRecord]) -> Vec<u8> {
    let n = records.len();
    let mut out = Vec::with_capacity(8 + n * 10);
    varint::put(&mut out, n as u64);
    delta_column(&mut out, records.iter().map(|r| r.id));
    for r in records {
        varint::put(&mut out, r.src.0 as u64);
    }
    for r in records {
        varint::put(&mut out, r.dst.0 as u64);
    }
    for r in records {
        varint::put(&mut out, r.bytes as u64);
    }
    delta_column(&mut out, records.iter().map(|r| r.inject));
    for r in records {
        varint::put(&mut out, r.delivered - r.inject);
    }
    for r in records {
        varint::put(&mut out, r.hops as u64);
    }
    for r in records {
        varint::put(&mut out, r.zero_load);
    }
    out
}

/// Decodes one netlog-block payload.
pub(crate) fn decode_records(payload: &[u8]) -> Result<Vec<MsgRecord>, TraceStoreError> {
    let mut cur = Cursor::new(payload);
    let n = cur.varint("record count")? as usize;
    if n > payload.len() {
        return Err(TraceStoreError::Corrupt(format!(
            "block claims {n} records in a {}-byte payload",
            payload.len()
        )));
    }
    let mut ids = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        ids.push(read_delta(&mut cur, &mut prev, "record id")?);
    }
    let node = |v: u64| -> Result<NodeId, TraceStoreError> {
        if v > u16::MAX as u64 {
            return Err(TraceStoreError::Corrupt(format!("node id {v} exceeds u16")));
        }
        Ok(NodeId(v as u16))
    };
    let mut srcs = Vec::with_capacity(n);
    for _ in 0..n {
        srcs.push(node(cur.varint("record source")?)?);
    }
    let mut dsts = Vec::with_capacity(n);
    for _ in 0..n {
        dsts.push(node(cur.varint("record destination")?)?);
    }
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        let b = cur.varint("record bytes")?;
        if b > u32::MAX as u64 {
            return Err(TraceStoreError::Corrupt(format!("record length {b} exceeds u32")));
        }
        bytes.push(b as u32);
    }
    let mut injects = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        injects.push(read_delta(&mut cur, &mut prev, "record inject")?);
    }
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        latencies.push(cur.varint("record latency")?);
    }
    let mut hops = Vec::with_capacity(n);
    for _ in 0..n {
        let h = cur.varint("record hops")?;
        if h > u32::MAX as u64 {
            return Err(TraceStoreError::Corrupt(format!("hop count {h} exceeds u32")));
        }
        hops.push(h as u32);
    }
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let zero_load = cur.varint("record zero-load")?;
        let delivered = injects[i].checked_add(latencies[i]).ok_or_else(|| {
            TraceStoreError::Corrupt(format!("record {} delivery time overflows", ids[i]))
        })?;
        records.push(MsgRecord {
            id: ids[i],
            src: srcs[i],
            dst: dsts[i],
            bytes: bytes[i],
            inject: injects[i],
            delivered,
            hops: hops[i],
            zero_load,
        });
    }
    if cur.remaining() != 0 {
        return Err(TraceStoreError::Corrupt(format!(
            "{} trailing bytes after the last column",
            cur.remaining()
        )));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, t: u64, src: u16, dst: u16, kind: EventKind) -> CommEvent {
        CommEvent::new(id, t, src, dst, 8 + id as u32, kind)
    }

    #[test]
    fn event_block_roundtrip_mixed_kinds() {
        let events = vec![
            ev(0, 100, 0, 1, EventKind::Control),
            ev(1, 90, 1, 2, EventKind::Data).after(0),
            ev(5, 4000, 2, 0, EventKind::Sync),
            ev(6, 4001, 0, 2, EventKind::Data).after(5),
        ];
        let payload = encode_events(&events);
        assert_eq!(decode_events(&payload, 4).unwrap(), events);
    }

    #[test]
    fn event_block_roundtrip_single_kind_has_no_index_column() {
        let many: Vec<CommEvent> = (0..100).map(|i| ev(i, i * 3, 0, 1, EventKind::Data)).collect();
        let mono = encode_events(&many);
        let mixed: Vec<CommEvent> = (0..100)
            .map(|i| ev(i, i * 3, 0, 1, if i % 2 == 0 { EventKind::Data } else { EventKind::Sync }))
            .collect();
        let duo = encode_events(&mixed);
        assert_eq!(decode_events(&mono, 2).unwrap(), many);
        assert_eq!(decode_events(&duo, 2).unwrap(), mixed);
        // One kind ⇒ no per-record kind storage: only the extra dict byte
        // and the 1-bit-per-record index column separate the two.
        assert!(duo.len() > mono.len());
        assert!(duo.len() <= mono.len() + 1 + 100 / 8 + 1);
    }

    #[test]
    fn decode_validates_endpoints() {
        let events = vec![ev(0, 1, 3, 1, EventKind::Data)];
        let payload = encode_events(&events);
        assert!(decode_events(&payload, 4).is_ok());
        let err = decode_events(&payload, 3).unwrap_err();
        assert!(matches!(err, TraceStoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn empty_block_roundtrips() {
        assert_eq!(decode_events(&encode_events(&[]), 2).unwrap(), vec![]);
        assert_eq!(decode_records(&encode_records(&[])).unwrap(), vec![]);
    }

    #[test]
    fn record_block_roundtrip() {
        let records: Vec<MsgRecord> = (0..50)
            .map(|i| MsgRecord {
                id: i,
                src: NodeId((i % 7) as u16),
                dst: NodeId((i % 5 + 7) as u16),
                bytes: 8 * (i as u32 + 1),
                inject: i * 13,
                delivered: i * 13 + 40 + i,
                hops: (i % 6) as u32,
                zero_load: 30 + i % 9,
            })
            .collect();
        let payload = encode_records(&records);
        assert_eq!(decode_records(&payload).unwrap(), records);
    }

    #[test]
    fn truncated_payload_is_typed() {
        let events = vec![ev(0, 1, 0, 1, EventKind::Data), ev(1, 2, 1, 0, EventKind::Data)];
        let payload = encode_events(&events);
        for cut in 1..payload.len() {
            let err = decode_events(&payload[..cut], 2).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceStoreError::Truncated { .. }
                        | TraceStoreError::Corrupt(_)
                        | TraceStoreError::VarintOverflow { .. }
                ),
                "cut at {cut}: unexpected {err}"
            );
        }
    }
}
