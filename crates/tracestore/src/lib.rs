//! # commchar-tracestore
//!
//! A blocked, columnar, binary on-disk format for [`CommTrace`] events and
//! [`NetLog`](commchar_mesh::NetLog) records — the data-loading layer of
//! the characterization methodology once traces reach the "millions of
//! messages" scale where JSON-lines parse time and file size dominate the
//! whole pipeline.
//!
//! ## File layout
//!
//! ```text
//! [ magic "CCTRACE1" ][ u8 stream kind ][ varint nodes ]
//! [ block ]*
//! [ footer payload ][ u32le footer length ][ magic "CCTFOOT1" ]
//! ```
//!
//! Each block is `[u32le payload length][u32le FNV-1a checksum][payload]`;
//! the payload stores up to `block_len` records as *columns* (all ids,
//! then all times, …), each column delta- and/or LEB128-varint encoded,
//! with a small dictionary + bit-packed indices for event kinds and a
//! presence bitmap for causal dependencies (see [`columns`] for the exact
//! encodings). The footer lists every block's payload length and record
//! count, so a reader can locate all blocks without scanning the file,
//! decode them **in parallel** across worker threads
//! ([`TraceReader::read_trace_parallel`]), or stream records in order with
//! one-block memory ([`TraceReader::for_each_event`]).
//!
//! Corrupt input never panics: truncation, a bad magic, a checksum
//! mismatch and an over-long varint each surface as a typed
//! [`TraceStoreError`].
//!
//! ## Example
//!
//! ```
//! use commchar_trace::{CommEvent, CommTrace, EventKind};
//!
//! let mut tr = CommTrace::new(4);
//! tr.push(CommEvent::new(0, 10, 0, 1, 64, EventKind::Data));
//! tr.push(CommEvent::new(1, 25, 1, 2, 8, EventKind::Control).after(0));
//! let packed = commchar_tracestore::pack_trace(&tr);
//! assert!(commchar_tracestore::is_packed(&packed));
//! let back = commchar_tracestore::unpack_trace(&packed).unwrap();
//! assert_eq!(back.events(), tr.events());
//! // `load_trace` sniffs the format: packed bytes and JSON-lines both work.
//! let again = commchar_tracestore::load_trace(tr.to_jsonl().as_bytes()).unwrap();
//! assert_eq!(again.events(), tr.events());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod reader;
mod varint;
pub mod writer;

use commchar_trace::{CommEvent, CommTrace};

pub use reader::{
    profile_packed, unpack_netlog, unpack_trace, unpack_trace_parallel, BlockSource, FileReader,
    StreamBlockReader, TraceReader,
};
pub use writer::{pack_netlog, pack_trace, NetLogWriter, TraceWriter, DEFAULT_BLOCK_LEN};

/// Leading file magic (the trailing byte doubles as the format version).
pub const MAGIC: [u8; 8] = *b"CCTRACE1";

/// Trailing footer magic; the 4 bytes before it hold the footer length.
pub const FOOTER_MAGIC: [u8; 8] = *b"CCTFOOT1";

/// What a packed file contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// [`commchar_trace::CommEvent`] records (a `CommTrace`).
    Events,
    /// [`commchar_mesh::MsgRecord`] records (a `NetLog`).
    NetLog,
}

impl StreamKind {
    pub(crate) fn code(self) -> u8 {
        match self {
            StreamKind::Events => 1,
            StreamKind::NetLog => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> Result<Self, TraceStoreError> {
        match code {
            1 => Ok(StreamKind::Events),
            2 => Ok(StreamKind::NetLog),
            other => Err(TraceStoreError::BadStreamKind(other)),
        }
    }

    /// Lowercase label (`events` / `netlog`).
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Events => "events",
            StreamKind::NetLog => "netlog",
        }
    }
}

/// Typed decode/IO failure. Every corrupt-input shape maps to a variant —
/// the reader never panics on untrusted bytes.
#[derive(Debug)]
pub enum TraceStoreError {
    /// The input ended before `needed` bytes of `context` were available.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading or trailing magic bytes did not match.
    BadMagic {
        /// The bytes found where a magic was expected (possibly short).
        found: Vec<u8>,
    },
    /// The header declares a stream kind this version does not know.
    BadStreamKind(u8),
    /// A block's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Zero-based block number.
        block: usize,
        /// Checksum stored in the block header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A varint ran past the 10-byte limit for 64-bit values (or past the
    /// end of its column) while reading `context`.
    VarintOverflow {
        /// What was being decoded when the varint overflowed.
        context: &'static str,
    },
    /// Structurally valid bytes describing an impossible trace (footer
    /// inconsistency, out-of-range endpoint, unknown kind code, …).
    Corrupt(String),
    /// The input sniffed as JSON-lines and the JSON-lines parser rejected
    /// it (message includes the offending line number and an excerpt).
    Jsonl(String),
    /// An I/O error from the underlying writer.
    Io(std::io::Error),
}

impl std::fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStoreError::Truncated { context, needed, have } => {
                write!(f, "truncated input: {context} needs {needed} bytes, have {have}")
            }
            TraceStoreError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected {:02x?})", MAGIC)
            }
            TraceStoreError::BadStreamKind(code) => write!(f, "unknown stream kind {code}"),
            TraceStoreError::ChecksumMismatch { block, stored, computed } => write!(
                f,
                "checksum mismatch in block {block}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            TraceStoreError::VarintOverflow { context } => {
                write!(f, "varint out of range while decoding {context}")
            }
            TraceStoreError::Corrupt(msg) => write!(f, "corrupt trace store: {msg}"),
            TraceStoreError::Jsonl(msg) => write!(f, "JSON-lines trace: {msg}"),
            TraceStoreError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceStoreError {
    fn from(e: std::io::Error) -> Self {
        TraceStoreError::Io(e)
    }
}

/// Whether `bytes` begin with the packed-trace magic.
pub fn is_packed(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Loads a [`CommTrace`] from either on-disk format, sniffed by magic
/// bytes: packed input decodes through the block reader (in parallel when
/// more than one worker is available), anything else is treated as the
/// JSON-lines format of [`CommTrace::from_jsonl`].
///
/// # Errors
///
/// Returns a [`TraceStoreError`] describing the first problem found in
/// whichever format was detected.
pub fn load_trace(bytes: &[u8]) -> Result<CommTrace, TraceStoreError> {
    if is_packed(bytes) {
        return unpack_trace_parallel(bytes, 0);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|e| TraceStoreError::Jsonl(format!("input is neither packed nor UTF-8: {e}")))?;
    CommTrace::from_jsonl(text).map_err(TraceStoreError::Jsonl)
}

/// Encodes one run of events as a standalone CCTRACE1 block payload — the
/// exact bytes a [`TraceWriter`] would put inside one block frame, without
/// the file header/footer. This is the unit the `commchar-serve` protocol
/// ships in its `TraceBlocks` frames, so a served stream and a packed file
/// share one column codec.
pub fn encode_event_block(events: &[CommEvent]) -> Vec<u8> {
    columns::encode_events(events)
}

/// Decodes one standalone CCTRACE1 block payload (the inverse of
/// [`encode_event_block`]); `nodes` bounds endpoint validation exactly as
/// the file reader does.
///
/// # Errors
///
/// A typed [`TraceStoreError`] on any corrupt-payload shape — truncation,
/// varint overflow, out-of-range endpoints, bad kind codes.
pub fn decode_event_block(payload: &[u8], nodes: usize) -> Result<Vec<CommEvent>, TraceStoreError> {
    columns::decode_events(payload, nodes)
}

/// FNV-1a 32-bit checksum over a byte slice — the per-block checksum of
/// the file format, shared by the `commchar-serve` frame protocol.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use commchar_trace::{CommEvent, EventKind};

    #[test]
    fn sniffing_dispatches_on_magic() {
        let mut tr = CommTrace::new(3);
        tr.push(CommEvent::new(0, 5, 0, 2, 16, EventKind::Sync));
        let packed = pack_trace(&tr);
        assert!(is_packed(&packed));
        assert!(!is_packed(tr.to_jsonl().as_bytes()));
        assert_eq!(load_trace(&packed).unwrap().events(), tr.events());
        assert_eq!(load_trace(tr.to_jsonl().as_bytes()).unwrap().events(), tr.events());
    }

    #[test]
    fn load_rejects_garbage_with_typed_errors() {
        // Non-UTF8, non-magic bytes.
        let err = load_trace(&[0xff, 0xfe, 0x00, 0x01]).unwrap_err();
        assert!(matches!(err, TraceStoreError::Jsonl(_)), "{err}");
        // UTF-8 but not a trace.
        let err = load_trace(b"hello world\n").unwrap_err();
        assert!(matches!(err, TraceStoreError::Jsonl(_)), "{err}");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0x811c_9dc5);
        assert_eq!(fnv1a(b"a"), 0xe40c_292c);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceStoreError::ChecksumMismatch { block: 3, stored: 1, computed: 2 };
        assert!(e.to_string().contains("block 3"));
        let e = TraceStoreError::Truncated { context: "footer", needed: 12, have: 4 };
        assert!(e.to_string().contains("footer"));
        let e = TraceStoreError::VarintOverflow { context: "event time" };
        assert!(e.to_string().contains("event time"));
    }
}
