//! LEB128 varints and zigzag mapping — the scalar encoding under every
//! column.

use crate::TraceStoreError;

/// Appends `v` as an LEB128 varint (7 bits per byte, MSB = continuation).
pub(crate) fn put(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A checked cursor over a block payload.
#[derive(Debug)]
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Reads one LEB128 varint, rejecting both truncation and encodings
    /// longer than 10 bytes (which cannot fit a `u64`).
    pub(crate) fn varint(&mut self, context: &'static str) -> Result<u64, TraceStoreError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(TraceStoreError::Truncated {
                    context,
                    needed: self.pos + 1,
                    have: self.bytes.len(),
                });
            };
            self.pos += 1;
            // The 10th byte of a u64 varint may only carry the top bit
            // (shift 63); anything more is out of range.
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceStoreError::VarintOverflow { context });
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub(crate) fn svarint(&mut self, context: &'static str) -> Result<i64, TraceStoreError> {
        Ok(unzigzag(self.varint(context)?))
    }

    /// Reads `n` raw bytes.
    pub(crate) fn bytes(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<&'a [u8], TraceStoreError> {
        let end = self.pos.checked_add(n).ok_or(TraceStoreError::VarintOverflow { context })?;
        if end > self.bytes.len() {
            return Err(TraceStoreError::Truncated {
                context,
                needed: end,
                have: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one raw byte.
    pub(crate) fn byte(&mut self, context: &'static str) -> Result<u8, TraceStoreError> {
        Ok(self.bytes(1, context)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put(&mut buf, v);
            assert_eq!(Cursor::new(&buf).varint("t").unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_varint_is_typed() {
        // Continuation bit set but no next byte.
        let err = Cursor::new(&[0x80]).varint("x").unwrap_err();
        assert!(matches!(err, TraceStoreError::Truncated { .. }), "{err}");
    }

    #[test]
    fn overlong_varint_is_out_of_range() {
        // 11 continuation bytes can never encode a u64.
        let buf = [0x80u8; 10];
        let mut long = buf.to_vec();
        long.push(0x01);
        let err = Cursor::new(&long).varint("x").unwrap_err();
        assert!(matches!(err, TraceStoreError::VarintOverflow { .. }), "{err}");
        // A 10-byte encoding whose last byte exceeds one leftover bit.
        let mut big = [0xffu8; 9].to_vec();
        big.push(0x02);
        let err = Cursor::new(&big).varint("x").unwrap_err();
        assert!(matches!(err, TraceStoreError::VarintOverflow { .. }), "{err}");
    }
}
