//! Non-linear least squares by the multivariate secant method.
//!
//! The paper fit its regression models in SAS PROC NLIN using the
//! *multivariate secant* method (also known as DUD — "doesn't use
//! derivatives"). This module implements the same idea: Gauss–Newton
//! iterations where the Jacobian of the residual vector is approximated by
//! finite differences and then cheaply maintained with Broyden rank-one
//! updates, plus step halving to guarantee monotone progress.

/// Options controlling the secant solver.
#[derive(Clone, Copy, Debug)]
pub struct SecantOptions {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Convergence threshold on the relative SSE improvement.
    pub tol: f64,
    /// Relative perturbation used for the initial finite-difference Jacobian.
    pub rel_step: f64,
}

impl Default for SecantOptions {
    fn default() -> Self {
        SecantOptions { max_iter: 60, tol: 1e-10, rel_step: 1e-4 }
    }
}

/// Result of a secant minimization.
#[derive(Clone, Debug)]
pub struct SecantFit {
    /// The parameter vector reached.
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub sse: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the relative-improvement tolerance was met.
    pub converged: bool,
}

/// Minimizes `‖r(p)‖²` starting from `p0`.
///
/// `residuals` returns the residual vector at a parameter point, or `None`
/// if the point is infeasible (the solver treats it as infinitely bad).
/// The residual length must be constant across calls. A residual vector
/// containing non-finite values (NaN / ±∞) is treated exactly like an
/// infeasible point — the solver never iterates on NaNs.
///
/// Returns `None` if the starting point itself is infeasible or produces
/// non-finite residuals.
///
/// # Example
///
/// ```
/// use commchar_stats::secant::{minimize, SecantOptions};
/// // Fit y = a·x to points on y = 3x: residuals r_i = a·x_i − y_i.
/// let xs = [1.0, 2.0, 3.0];
/// let fit = minimize(
///     &[1.0],
///     |p| Some(xs.iter().map(|&x| p[0] * x - 3.0 * x).collect()),
///     SecantOptions::default(),
/// ).unwrap();
/// assert!((fit.params[0] - 3.0).abs() < 1e-6);
/// ```
pub fn minimize<F>(p0: &[f64], mut residuals: F, opts: SecantOptions) -> Option<SecantFit>
where
    F: FnMut(&[f64]) -> Option<Vec<f64>>,
{
    let n = p0.len();
    let mut p = p0.to_vec();
    let r0 = residuals(&p)?;
    if !all_finite(&r0) {
        // A NaN/∞ residual at the start would poison every SSE comparison
        // (`NaN < sse` is always false) and the solver would spin its full
        // iteration budget to report a bogus "converged" NaN fit.
        return None;
    }
    let mut r = r0;
    let m = r.len();
    let mut sse = dot(&r, &r);

    // Initial Jacobian by forward differences.
    let mut jac = vec![vec![0.0; n]; m];
    let refresh_jacobian =
        |p: &[f64], r: &[f64], jac: &mut Vec<Vec<f64>>, residuals: &mut F| -> bool {
            for j in 0..n {
                let h = (p[j].abs() * opts.rel_step).max(1e-8);
                let mut pj = p.to_vec();
                pj[j] += h;
                // Non-finite residuals are infeasible points for the
                // difference quotient, same as a `None` return.
                let Some(rj) = residuals(&pj).filter(|r| all_finite(r)) else {
                    // Try backward difference at the boundary.
                    let mut pb = p.to_vec();
                    pb[j] -= h;
                    let Some(rb) = residuals(&pb).filter(|r| all_finite(r)) else { return false };
                    for i in 0..m {
                        jac[i][j] = (r[i] - rb[i]) / h;
                    }
                    continue;
                };
                for i in 0..m {
                    jac[i][j] = (rj[i] - r[i]) / h;
                }
            }
            true
        };
    if !refresh_jacobian(&p, &r, &mut jac, &mut residuals) {
        return Some(SecantFit { params: p, sse, iterations: 0, converged: false });
    }

    let mut converged = false;
    let mut iterations = 0;
    let mut just_refreshed = true;
    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Gauss–Newton step from the secant Jacobian: (JᵀJ + λI)Δ = −Jᵀr.
        let mut jtj = vec![vec![0.0; n]; n];
        let mut jtr = vec![0.0; n];
        for i in 0..m {
            for a in 0..n {
                jtr[a] += jac[i][a] * r[i];
                for b in 0..n {
                    jtj[a][b] += jac[i][a] * jac[i][b];
                }
            }
        }
        // Levenberg damping with increase-on-failure.
        let mut lambda = 1e-8 * (0..n).map(|a| jtj[a][a]).fold(0.0f64, f64::max).max(1e-12);
        let mut improved = false;
        for _ in 0..12 {
            let mut a = jtj.clone();
            for (d, row) in a.iter_mut().enumerate() {
                row[d] += lambda;
            }
            let b: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let Some(delta) = solve(a, b) else {
                lambda *= 10.0;
                continue;
            };
            let cand: Vec<f64> = p.iter().zip(&delta).map(|(pi, di)| pi + di).collect();
            if let Some(rc) = residuals(&cand).filter(|r| all_finite(r)) {
                let sse_c = dot(&rc, &rc);
                if sse_c < sse {
                    // Broyden rank-one update: J += (Δr − JΔp)Δpᵀ / ‖Δp‖².
                    let dp2 = dot(&delta, &delta);
                    if dp2 > 0.0 {
                        for i in 0..m {
                            let jdp: f64 = (0..n).map(|j| jac[i][j] * delta[j]).sum();
                            let coeff = (rc[i] - r[i] - jdp) / dp2;
                            for j in 0..n {
                                jac[i][j] += coeff * delta[j];
                            }
                        }
                    }
                    let rel = (sse - sse_c) / sse.max(1e-300);
                    p = cand;
                    r = rc;
                    sse = sse_c;
                    improved = true;
                    if rel < opts.tol {
                        converged = true;
                    }
                    break;
                }
            }
            lambda *= 10.0;
        }
        if converged {
            break;
        }
        if improved {
            just_refreshed = false;
        } else if just_refreshed {
            // Stalled even with a freshly computed Jacobian: local optimum
            // (to the solver's resolution).
            converged = true;
            break;
        } else {
            // The Broyden updates may have drifted; re-anchor and retry.
            if !refresh_jacobian(&p, &r, &mut jac, &mut residuals) {
                break;
            }
            just_refreshed = true;
        }
    }

    Some(SecantFit { params: p, sse, iterations, converged })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for singular systems.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[piv][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            // Reads row `col` while mutating row `row`; indexing keeps the
            // borrows disjoint.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
        if !x[col].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; needs row swap.
        let a = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let x = solve(a, vec![1.0, 4.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn fits_exponential_decay() {
        // y = exp(-k x) with k = 0.7, fit k from samples.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (-0.7 * x).exp()).collect();
        let fit = minimize(
            &[0.2],
            |p| {
                if p[0] <= 0.0 {
                    return None;
                }
                Some(xs.iter().zip(&ys).map(|(&x, &y)| (-p[0] * x).exp() - y).collect())
            },
            SecantOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 0.7).abs() < 1e-4, "got {:?}", fit.params);
        assert!(fit.sse < 1e-8);
    }

    #[test]
    fn fits_two_parameter_curve() {
        // y = a e^{-b x}: recover a = 2, b = 0.4.
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * (-0.4 * x).exp()).collect();
        let fit = minimize(
            &[1.0, 1.0],
            |p| {
                if p[1] < 0.0 {
                    return None;
                }
                Some(xs.iter().zip(&ys).map(|(&x, &y)| p[0] * (-p[1] * x).exp() - y).collect())
            },
            SecantOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 2.0).abs() < 1e-3, "{:?}", fit.params);
        assert!((fit.params[1] - 0.4).abs() < 1e-3, "{:?}", fit.params);
    }

    #[test]
    fn infeasible_start_is_none() {
        let fit = minimize(&[1.0], |_| None::<Vec<f64>>, SecantOptions::default());
        assert!(fit.is_none());
    }

    #[test]
    fn nan_residuals_at_start_is_none() {
        // Pathological objective: the residuals are NaN everywhere.
        // Pre-fix, this iterated for the full budget on NaNs and came
        // back "converged" with a NaN SSE; it must bail out instead.
        let fit = minimize(
            &[1.0, 2.0],
            |p| Some(vec![f64::NAN, p[0] * f64::NAN]),
            SecantOptions::default(),
        );
        assert!(fit.is_none());
    }

    #[test]
    fn nan_residuals_off_start_do_not_poison_fit() {
        // Finite at the start, NaN one step away in every direction: the
        // Jacobian refresh must treat those points as infeasible (pre-fix
        // a NaN entered the Jacobian and the pivot search panicked on
        // `partial_cmp(NaN)`), so the solver returns the start unharmed.
        let fit = minimize(
            &[1.0],
            |p| {
                if (p[0] - 1.0).abs() < 1e-12 {
                    Some(vec![0.5])
                } else {
                    Some(vec![f64::NAN])
                }
            },
            SecantOptions::default(),
        )
        .unwrap();
        assert_eq!(fit.params, vec![1.0]);
        assert!(fit.sse.is_finite());
        assert!(!fit.converged);
    }

    #[test]
    fn infinite_residuals_near_pole_still_minimizes() {
        // A pole at p = 0 emits ±∞ residuals rather than None; the solver
        // must skirt it and still pull the parameter toward the optimum
        // at 2 from the feasible side.
        let fit = minimize(
            &[0.5],
            |p| {
                if p[0] == 0.0 {
                    Some(vec![f64::INFINITY])
                } else if p[0] < 0.0 {
                    Some(vec![f64::NEG_INFINITY])
                } else {
                    Some(vec![p[0] - 2.0, (1.0 / p[0]).min(1e6) * 1e-9])
                }
            },
            SecantOptions::default(),
        )
        .unwrap();
        assert!(fit.sse.is_finite());
        assert!((fit.params[0] - 2.0).abs() < 0.1, "got {:?}", fit.params);
    }

    #[test]
    fn perfect_start_converges_immediately() {
        let fit = minimize(&[3.0], |p| Some(vec![p[0] - 3.0]), SecantOptions::default()).unwrap();
        assert!(fit.sse < 1e-20);
    }
}
