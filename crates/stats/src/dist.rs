//! The candidate distribution families.

use rand::Rng;

use crate::special::{gamma_p, ln_gamma, phi};

/// The distribution family, without parameters — used for selection tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Exponential(rate).
    Exponential,
    /// Two-phase hyperexponential (mixture of two exponentials).
    HyperExp2,
    /// Erlang-k (sum of k exponentials).
    Erlang,
    /// Gamma(shape, rate) — the Erlang family with non-integer shape.
    Gamma,
    /// Weibull(shape, scale).
    Weibull,
    /// Lognormal(μ, σ of the underlying normal).
    Lognormal,
    /// Pareto(x_m, α) — the heavy-tailed family.
    Pareto,
    /// Normal(μ, σ).
    Normal,
    /// Continuous uniform on [a, b].
    Uniform,
    /// Point mass at v.
    Deterministic,
}

impl Family {
    /// Lowercase name used in report tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Exponential => "exponential",
            Family::HyperExp2 => "hyperexponential",
            Family::Erlang => "erlang",
            Family::Gamma => "gamma",
            Family::Weibull => "weibull",
            Family::Lognormal => "lognormal",
            Family::Pareto => "pareto",
            Family::Normal => "normal",
            Family::Uniform => "uniform",
            Family::Deterministic => "deterministic",
        }
    }

    /// All families, in fitting order.
    pub fn all() -> &'static [Family] {
        &[
            Family::Exponential,
            Family::HyperExp2,
            Family::Erlang,
            Family::Gamma,
            Family::Weibull,
            Family::Lognormal,
            Family::Pareto,
            Family::Normal,
            Family::Uniform,
            Family::Deterministic,
        ]
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A parameterized distribution from one of the candidate [`Family`]s.
///
/// Invalid parameters are rejected at construction, so every `Dist` value
/// has a well-defined pdf/cdf.
///
/// # Example
///
/// ```
/// use commchar_stats::Dist;
/// let d = Dist::exponential(0.5);
/// assert!((d.mean() - 2.0).abs() < 1e-12);
/// assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Exponential with the given rate λ.
    Exponential {
        /// Rate λ > 0.
        rate: f64,
    },
    /// Mixture: with probability `p` an Exponential(r1), else Exponential(r2).
    HyperExp2 {
        /// Mixing probability, 0 < p < 1.
        p: f64,
        /// First phase rate.
        r1: f64,
        /// Second phase rate.
        r2: f64,
    },
    /// Erlang-k: sum of `k` iid Exponential(rate) phases.
    Erlang {
        /// Number of phases, k ≥ 1.
        k: u32,
        /// Per-phase rate.
        rate: f64,
    },
    /// Gamma with non-integer shape and rate.
    Gamma {
        /// Shape parameter α > 0.
        shape: f64,
        /// Rate parameter λ > 0.
        rate: f64,
    },
    /// Weibull with the given shape and scale.
    Weibull {
        /// Shape parameter κ > 0.
        shape: f64,
        /// Scale parameter λ > 0.
        scale: f64,
    },
    /// Lognormal: exp(N(mu, sigma²)).
    Lognormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std-dev of the underlying normal, σ > 0.
        sigma: f64,
    },
    /// Pareto: support [xm, ∞), tail exponent α.
    Pareto {
        /// Scale (minimum value), x_m > 0.
        xm: f64,
        /// Tail exponent α > 0.
        alpha: f64,
    },
    /// Normal(mu, sigma²).
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation σ > 0.
        sigma: f64,
    },
    /// Uniform on [a, b].
    Uniform {
        /// Lower bound.
        a: f64,
        /// Upper bound, b > a.
        b: f64,
    },
    /// Point mass at `v`.
    Deterministic {
        /// The constant value.
        v: f64,
    },
}

impl Dist {
    /// Exponential with rate λ.
    ///
    /// # Panics
    /// Panics unless `rate > 0` and finite.
    pub fn exponential(rate: f64) -> Dist {
        assert!(rate > 0.0 && rate.is_finite(), "exponential rate must be positive");
        Dist::Exponential { rate }
    }

    /// Two-phase hyperexponential.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1` and both rates are positive.
    pub fn hyper_exp2(p: f64, r1: f64, r2: f64) -> Dist {
        assert!(p > 0.0 && p < 1.0, "mixing probability must be in (0,1)");
        assert!(r1 > 0.0 && r2 > 0.0, "phase rates must be positive");
        Dist::HyperExp2 { p, r1, r2 }
    }

    /// Erlang-k with per-phase rate.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1` and `rate > 0`.
    pub fn erlang(k: u32, rate: f64) -> Dist {
        assert!(k >= 1, "erlang needs at least one phase");
        assert!(rate > 0.0 && rate.is_finite(), "erlang rate must be positive");
        Dist::Erlang { k, rate }
    }

    /// Gamma with shape α and rate λ.
    ///
    /// # Panics
    /// Panics unless both are positive.
    pub fn gamma(shape: f64, rate: f64) -> Dist {
        assert!(shape > 0.0 && rate > 0.0, "gamma parameters must be positive");
        Dist::Gamma { shape, rate }
    }

    /// Pareto with minimum x_m and tail exponent α.
    ///
    /// # Panics
    /// Panics unless both are positive.
    pub fn pareto(xm: f64, alpha: f64) -> Dist {
        assert!(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
        Dist::Pareto { xm, alpha }
    }

    /// Weibull with shape κ and scale λ.
    ///
    /// # Panics
    /// Panics unless both are positive.
    pub fn weibull(shape: f64, scale: f64) -> Dist {
        assert!(shape > 0.0 && scale > 0.0, "weibull parameters must be positive");
        Dist::Weibull { shape, scale }
    }

    /// Lognormal with log-mean μ and log-std σ.
    ///
    /// # Panics
    /// Panics unless `sigma > 0`.
    pub fn lognormal(mu: f64, sigma: f64) -> Dist {
        assert!(sigma > 0.0, "lognormal sigma must be positive");
        Dist::Lognormal { mu, sigma }
    }

    /// Normal with mean μ and std σ.
    ///
    /// # Panics
    /// Panics unless `sigma > 0`.
    pub fn normal(mu: f64, sigma: f64) -> Dist {
        assert!(sigma > 0.0, "normal sigma must be positive");
        Dist::Normal { mu, sigma }
    }

    /// Uniform on [a, b].
    ///
    /// # Panics
    /// Panics unless `b > a`.
    pub fn uniform(a: f64, b: f64) -> Dist {
        assert!(b > a, "uniform needs b > a");
        Dist::Uniform { a, b }
    }

    /// Point mass at `v`.
    pub fn deterministic(v: f64) -> Dist {
        Dist::Deterministic { v }
    }

    /// The family this distribution belongs to.
    pub fn family(&self) -> Family {
        match self {
            Dist::Exponential { .. } => Family::Exponential,
            Dist::HyperExp2 { .. } => Family::HyperExp2,
            Dist::Erlang { .. } => Family::Erlang,
            Dist::Gamma { .. } => Family::Gamma,
            Dist::Weibull { .. } => Family::Weibull,
            Dist::Lognormal { .. } => Family::Lognormal,
            Dist::Pareto { .. } => Family::Pareto,
            Dist::Normal { .. } => Family::Normal,
            Dist::Uniform { .. } => Family::Uniform,
            Dist::Deterministic { .. } => Family::Deterministic,
        }
    }

    /// The family's lowercase name.
    pub fn family_name(&self) -> &'static str {
        self.family().name()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        match *self {
            Dist::Exponential { rate } => {
                if x < 0.0 {
                    0.0
                } else {
                    rate * (-rate * x).exp()
                }
            }
            Dist::HyperExp2 { p, r1, r2 } => {
                if x < 0.0 {
                    0.0
                } else {
                    p * r1 * (-r1 * x).exp() + (1.0 - p) * r2 * (-r2 * x).exp()
                }
            }
            Dist::Erlang { k, rate } => {
                if x < 0.0 {
                    0.0
                } else {
                    let k = k as f64;
                    (k * rate.ln() + (k - 1.0) * x.max(1e-300).ln() - rate * x - ln_gamma(k)).exp()
                }
            }
            Dist::Gamma { shape, rate } => {
                if x < 0.0 {
                    0.0
                } else if x == 0.0 && shape < 1.0 {
                    f64::INFINITY
                } else {
                    (shape * rate.ln() + (shape - 1.0) * x.max(1e-300).ln()
                        - rate * x
                        - ln_gamma(shape))
                    .exp()
                }
            }
            Dist::Weibull { shape, scale } => {
                if x < 0.0 {
                    0.0
                } else if x == 0.0 && shape < 1.0 {
                    f64::INFINITY
                } else {
                    let z = x / scale;
                    (shape / scale) * z.powf(shape - 1.0) * (-z.powf(shape)).exp()
                }
            }
            Dist::Pareto { xm, alpha } => {
                if x < xm {
                    0.0
                } else {
                    alpha * xm.powf(alpha) / x.powf(alpha + 1.0)
                }
            }
            Dist::Lognormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    let z = (x.ln() - mu) / sigma;
                    (-0.5 * z * z).exp() / (x * sigma * (2.0 * std::f64::consts::PI).sqrt())
                }
            }
            Dist::Normal { mu, sigma } => {
                let z = (x - mu) / sigma;
                (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            }
            Dist::Uniform { a, b } => {
                if x < a || x > b {
                    0.0
                } else {
                    1.0 / (b - a)
                }
            }
            Dist::Deterministic { v } => {
                if x == v {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
        }
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            Dist::Exponential { rate } => {
                if x < 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
            Dist::HyperExp2 { p, r1, r2 } => {
                if x < 0.0 {
                    0.0
                } else {
                    p * (1.0 - (-r1 * x).exp()) + (1.0 - p) * (1.0 - (-r2 * x).exp())
                }
            }
            Dist::Erlang { k, rate } => {
                if x < 0.0 {
                    0.0
                } else {
                    gamma_p(k as f64, rate * x)
                }
            }
            Dist::Gamma { shape, rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    gamma_p(shape, rate * x)
                }
            }
            Dist::Weibull { shape, scale } => {
                if x < 0.0 {
                    0.0
                } else {
                    1.0 - (-(x / scale).powf(shape)).exp()
                }
            }
            Dist::Pareto { xm, alpha } => {
                if x < xm {
                    0.0
                } else {
                    1.0 - (xm / x).powf(alpha)
                }
            }
            Dist::Lognormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    phi((x.ln() - mu) / sigma)
                }
            }
            Dist::Normal { mu, sigma } => phi((x - mu) / sigma),
            Dist::Uniform { a, b } => {
                if x < a {
                    0.0
                } else if x > b {
                    1.0
                } else {
                    (x - a) / (b - a)
                }
            }
            Dist::Deterministic { v } => {
                if x < v {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::HyperExp2 { p, r1, r2 } => p / r1 + (1.0 - p) / r2,
            Dist::Erlang { k, rate } => k as f64 / rate,
            Dist::Gamma { shape, rate } => shape / rate,
            Dist::Weibull { shape, scale } => scale * (ln_gamma(1.0 + 1.0 / shape)).exp(),
            Dist::Pareto { xm, alpha } => {
                if alpha > 1.0 {
                    alpha * xm / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Lognormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Normal { mu, .. } => mu,
            Dist::Uniform { a, b } => (a + b) / 2.0,
            Dist::Deterministic { v } => v,
        }
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        match *self {
            Dist::Exponential { rate } => 1.0 / (rate * rate),
            Dist::HyperExp2 { p, r1, r2 } => {
                let m = self.mean();
                let m2 = 2.0 * (p / (r1 * r1) + (1.0 - p) / (r2 * r2));
                m2 - m * m
            }
            Dist::Erlang { k, rate } => k as f64 / (rate * rate),
            Dist::Gamma { shape, rate } => shape / (rate * rate),
            Dist::Weibull { shape, scale } => {
                let g1 = (ln_gamma(1.0 + 1.0 / shape)).exp();
                let g2 = (ln_gamma(1.0 + 2.0 / shape)).exp();
                scale * scale * (g2 - g1 * g1)
            }
            Dist::Pareto { xm, alpha } => {
                if alpha > 2.0 {
                    xm * xm * alpha / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0))
                } else {
                    f64::INFINITY
                }
            }
            Dist::Lognormal { mu, sigma } => {
                let s2 = sigma * sigma;
                ((s2).exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Dist::Normal { sigma, .. } => sigma * sigma,
            Dist::Uniform { a, b } => (b - a) * (b - a) / 12.0,
            Dist::Deterministic { .. } => 0.0,
        }
    }

    /// Coefficient of variation σ/μ.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Exponential { rate } => -ln_u(rng) / rate,
            Dist::HyperExp2 { p, r1, r2 } => {
                let rate = if rng.gen::<f64>() < p { r1 } else { r2 };
                -ln_u(rng) / rate
            }
            Dist::Erlang { k, rate } => (0..k).map(|_| -ln_u(rng) / rate).sum(),
            Dist::Gamma { shape, rate } => sample_gamma(shape, rng) / rate,
            Dist::Weibull { shape, scale } => scale * (-ln_u(rng)).powf(1.0 / shape),
            Dist::Pareto { xm, alpha } => {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                xm / u.powf(1.0 / alpha)
            }
            Dist::Lognormal { mu, sigma } => (mu + sigma * std_normal(rng)).exp(),
            Dist::Normal { mu, sigma } => mu + sigma * std_normal(rng),
            Dist::Uniform { a, b } => a + (b - a) * rng.gen::<f64>(),
            Dist::Deterministic { v } => v,
        }
    }

    /// The parameters as a flat vector (used by the secant refiner) paired
    /// with [`Dist::with_params`].
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Dist::Exponential { rate } => vec![rate],
            Dist::HyperExp2 { p, r1, r2 } => vec![p, r1, r2],
            Dist::Erlang { rate, .. } => vec![rate],
            Dist::Gamma { shape, rate } => vec![shape, rate],
            Dist::Weibull { shape, scale } => vec![shape, scale],
            Dist::Pareto { xm, alpha } => vec![xm, alpha],
            Dist::Lognormal { mu, sigma } => vec![mu, sigma],
            Dist::Normal { mu, sigma } => vec![mu, sigma],
            Dist::Uniform { a, b } => vec![a, b],
            Dist::Deterministic { v } => vec![v],
        }
    }

    /// Rebuilds a distribution of the same family with new parameter values
    /// (the inverse of [`Dist::params`]). Returns `None` if the values are
    /// invalid for the family — the secant refiner uses this to reject
    /// steps that leave the feasible region.
    pub fn with_params(&self, p: &[f64]) -> Option<Dist> {
        let ok = |d: Dist| Some(d);
        match *self {
            Dist::Exponential { .. } => {
                let [rate] = *p else { return None };
                (rate > 0.0 && rate.is_finite()).then_some(())?;
                ok(Dist::Exponential { rate })
            }
            Dist::HyperExp2 { .. } => {
                let [q, r1, r2] = *p else { return None };
                (q > 0.0 && q < 1.0 && r1 > 0.0 && r2 > 0.0 && r1.is_finite() && r2.is_finite())
                    .then_some(Dist::HyperExp2 { p: q, r1, r2 })
            }
            Dist::Erlang { k, .. } => {
                let [rate] = *p else { return None };
                (rate > 0.0 && rate.is_finite()).then_some(Dist::Erlang { k, rate })
            }
            Dist::Gamma { .. } => {
                let [shape, rate] = *p else { return None };
                (shape > 0.0 && rate > 0.0 && shape.is_finite() && rate.is_finite())
                    .then_some(Dist::Gamma { shape, rate })
            }
            Dist::Weibull { .. } => {
                let [shape, scale] = *p else { return None };
                (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
                    .then_some(Dist::Weibull { shape, scale })
            }
            Dist::Pareto { .. } => {
                let [xm, alpha] = *p else { return None };
                (xm > 0.0 && alpha > 0.0 && xm.is_finite() && alpha.is_finite())
                    .then_some(Dist::Pareto { xm, alpha })
            }
            Dist::Lognormal { .. } => {
                let [mu, sigma] = *p else { return None };
                (sigma > 0.0 && mu.is_finite() && sigma.is_finite())
                    .then_some(Dist::Lognormal { mu, sigma })
            }
            Dist::Normal { .. } => {
                let [mu, sigma] = *p else { return None };
                (sigma > 0.0 && mu.is_finite() && sigma.is_finite())
                    .then_some(Dist::Normal { mu, sigma })
            }
            Dist::Uniform { .. } => {
                let [a, b] = *p else { return None };
                (b > a && a.is_finite() && b.is_finite()).then_some(Dist::Uniform { a, b })
            }
            Dist::Deterministic { .. } => {
                let [v] = *p else { return None };
                v.is_finite().then_some(Dist::Deterministic { v })
            }
        }
    }

    /// Human-readable parameter summary, e.g. `λ=0.0500`.
    pub fn describe(&self) -> String {
        match *self {
            Dist::Exponential { rate } => format!("λ={rate:.4}"),
            Dist::HyperExp2 { p, r1, r2 } => format!("p={p:.3}, λ1={r1:.4}, λ2={r2:.4}"),
            Dist::Erlang { k, rate } => format!("k={k}, λ={rate:.4}"),
            Dist::Gamma { shape, rate } => format!("α={shape:.3}, λ={rate:.4}"),
            Dist::Weibull { shape, scale } => format!("κ={shape:.3}, λ={scale:.2}"),
            Dist::Pareto { xm, alpha } => format!("x_m={xm:.2}, α={alpha:.3}"),
            Dist::Lognormal { mu, sigma } => format!("μ={mu:.3}, σ={sigma:.3}"),
            Dist::Normal { mu, sigma } => format!("μ={mu:.2}, σ={sigma:.2}"),
            Dist::Uniform { a, b } => format!("a={a:.2}, b={b:.2}"),
            Dist::Deterministic { v } => format!("v={v:.2}"),
        }
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.family_name(), self.describe())
    }
}

/// −ln U with U uniform in (0,1] — guards against ln(0).
fn ln_u<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>();
    (1.0 - u).max(1e-300).ln()
}

/// Unit-rate gamma via Marsaglia–Tsang (with the α < 1 boost).
fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: X_α = X_{α+1} · U^{1/α}.
        let u: f64 = rng.gen::<f64>().max(1e-300);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Standard normal via Box–Muller.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn all_samples() -> Vec<Dist> {
        vec![
            Dist::exponential(0.1),
            Dist::hyper_exp2(0.3, 0.5, 0.01),
            Dist::erlang(3, 0.2),
            Dist::gamma(2.5, 0.15),
            Dist::weibull(1.5, 40.0),
            Dist::pareto(3.0, 3.5),
            Dist::lognormal(2.0, 0.7),
            Dist::normal(10.0, 2.0),
            Dist::uniform(5.0, 15.0),
            Dist::deterministic(4.0),
        ]
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        for d in all_samples() {
            let mut prev: f64 = 0.0;
            for i in 0..400 {
                let x = i as f64 * 0.5;
                let c = d.cdf(x);
                assert!((0.0..=1.0 + 1e-12).contains(&c), "{d}: cdf({x}) = {c}");
                assert!(c + 1e-12 >= prev, "{d}: cdf not monotone at {x}");
                prev = c;
            }
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid integration over a wide range.
        for d in all_samples() {
            if matches!(d, Dist::Deterministic { .. }) {
                continue;
            }
            let (lo, hi, n) = (-50.0, 400.0, 450_000);
            let h = (hi - lo) / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let x = lo + (i as f64 + 0.5) * h;
                integral += d.pdf(x) * h;
            }
            assert!((integral - 1.0).abs() < 2e-2, "{d}: ∫pdf = {integral}");
        }
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for d in all_samples() {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            let tol = 0.06 * d.mean().abs().max(1.0) + 3.0 * (d.variance() / n as f64).sqrt();
            assert!((mean - d.mean()).abs() < tol, "{d}: sample mean {mean} vs {}", d.mean());
        }
    }

    #[test]
    fn erlang_cdf_closed_form() {
        let d = Dist::erlang(2, 0.5);
        for &x in &[0.5f64, 2.0, 6.0] {
            let lam = 0.5;
            let expect = 1.0 - (-lam * x).exp() * (1.0 + lam * x);
            assert!((d.cdf(x) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn params_roundtrip() {
        for d in all_samples() {
            let p = d.params();
            let d2 = d.with_params(&p).expect("same params are valid");
            assert_eq!(d, d2);
        }
    }

    #[test]
    fn with_params_rejects_invalid() {
        assert!(Dist::exponential(1.0).with_params(&[-1.0]).is_none());
        assert!(Dist::hyper_exp2(0.5, 1.0, 2.0).with_params(&[1.5, 1.0, 2.0]).is_none());
        assert!(Dist::uniform(0.0, 1.0).with_params(&[2.0, 1.0]).is_none());
        assert!(Dist::normal(0.0, 1.0).with_params(&[0.0, 0.0]).is_none());
        assert!(Dist::exponential(1.0).with_params(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn cv_classification() {
        assert!((Dist::exponential(2.0).cv() - 1.0).abs() < 1e-12);
        assert!(Dist::erlang(4, 1.0).cv() < 1.0);
        assert!(Dist::hyper_exp2(0.1, 10.0, 0.1).cv() > 1.0);
    }

    #[test]
    fn hyperexp_moments() {
        let d = Dist::hyper_exp2(0.4, 0.2, 0.05);
        // mean = .4/.2 + .6/.05 = 2 + 12 = 14
        assert!((d.mean() - 14.0).abs() < 1e-12);
        assert!(d.variance() > 0.0);
    }
}
