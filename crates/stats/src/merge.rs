//! Mergeable grouped samples — the sample representation that makes
//! out-of-core fitting possible.
//!
//! A [`GroupedSample`] stores a sample multiset as sorted `(value, count)`
//! runs. Two grouped samples over disjoint sub-streams merge into exactly
//! the grouped sample of the union: the runs are merged like sorted lists
//! and equal values add their counts. Counts are integers, values are
//! compared exactly, and no float arithmetic touches the data — so the
//! merge is **exact**, commutative and associative, and a
//! [`FitContext`](crate::fit::FitContext) built from the merged runs is
//! byte-identical to one built from the concatenated raw samples.
//!
//! ## The exactness boundary
//!
//! Exactness costs memory proportional to the number of *distinct* values.
//! Communication traces are tick-quantized, so the distinct-gap count
//! saturates at a few thousand runs regardless of trace length and the
//! exact representation *is* the constant-memory representation. For
//! adversarial streams where every value is distinct, an optional run
//! budget ([`GroupedSample::with_budget`]) bounds memory by folding
//! adjacent runs into count-weighted means. That is the single sketched
//! estimator in the pipeline: once a fold has happened,
//! [`is_exact`](GroupedSample::is_exact) turns false and any rank/quantile
//! read off the runs can be off by at most
//! [`rank_error_bound`](GroupedSample::rank_error_bound) — the largest
//! folded run's share of the sample. Everything else (counts, byte
//! totals, means of integer ticks) stays exact under merge.

/// A sample multiset stored as sorted, deduplicated `(value, count)` runs.
///
/// The streaming characterization pipeline builds one `GroupedSample` per
/// trace block (in parallel) and folds them together with
/// [`merge`](GroupedSample::merge); the result feeds
/// [`FitContext::from_grouped`](crate::fit::FitContext::from_grouped).
///
/// Values must not be NaN (construction asserts, as [`Ecdf`](crate::Ecdf)
/// does).
#[derive(Clone, Debug)]
pub struct GroupedSample {
    values: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    /// Maximum number of runs kept; `None` = unbounded (exact).
    budget: Option<usize>,
    /// Largest run ever produced by a compaction fold (0 = still exact).
    max_folded: u64,
}

impl Default for GroupedSample {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for GroupedSample {
    /// Equality of the represented multiset (runs and total); the memory
    /// budget is a policy, not part of the value.
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.values == other.values && self.counts == other.counts
    }
}

impl GroupedSample {
    /// An empty, exact (unbudgeted) sample.
    pub fn new() -> Self {
        GroupedSample {
            values: Vec::new(),
            counts: Vec::new(),
            total: 0,
            budget: None,
            max_folded: 0,
        }
    }

    /// An empty sample that keeps at most `budget` runs, folding adjacent
    /// runs into count-weighted means when it would exceed that — the
    /// bounded-memory sketch for streams whose distinct-value count grows
    /// without limit. See the module docs for the error bound.
    ///
    /// # Panics
    ///
    /// Panics if `budget < 2`.
    pub fn with_budget(budget: usize) -> Self {
        assert!(budget >= 2, "a run budget below 2 cannot hold a fold");
        GroupedSample { budget: Some(budget), ..Self::new() }
    }

    /// Groups a raw sample: one sort, one deduplication pass — exactly the
    /// preprocessing [`FitContext::new`](crate::fit::FitContext::new) used
    /// to do inline.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "grouped sample contains NaN");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut out = Self::new();
        for &x in &sorted {
            match out.values.last() {
                Some(&last) if last == x => *out.counts.last_mut().expect("paired") += 1,
                _ => {
                    out.values.push(x);
                    out.counts.push(1);
                }
            }
        }
        out.total = sorted.len() as u64;
        out
    }

    /// Adds `count` observations of `value` (a boundary gap between two
    /// merged blocks, typically).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn insert(&mut self, value: f64, count: u64) {
        assert!(!value.is_nan(), "grouped sample contains NaN");
        if count == 0 {
            return;
        }
        let i = self.values.partition_point(|&v| v < value);
        if self.values.get(i) == Some(&value) {
            self.counts[i] += count;
        } else {
            self.values.insert(i, value);
            self.counts.insert(i, count);
        }
        self.total += count;
        self.compact();
    }

    /// Merges another grouped sample into this one: a sorted-run union
    /// with counts added on equal values. Exact (and therefore commutative
    /// and associative, insensitive to block order and grouping) as long
    /// as no run budget forces a fold.
    pub fn merge(&mut self, other: &GroupedSample) {
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            self.values = other.values.clone();
            self.counts = other.counts.clone();
            self.total = other.total;
            self.max_folded = self.max_folded.max(other.max_folded);
            self.compact();
            return;
        }
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        let mut counts = Vec::with_capacity(values.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.values.len() && j < other.values.len() {
            let (a, b) = (self.values[i], other.values[j]);
            if a < b {
                values.push(a);
                counts.push(self.counts[i]);
                i += 1;
            } else if b < a {
                values.push(b);
                counts.push(other.counts[j]);
                j += 1;
            } else {
                values.push(a);
                counts.push(self.counts[i] + other.counts[j]);
                i += 1;
                j += 1;
            }
        }
        values.extend_from_slice(&self.values[i..]);
        counts.extend_from_slice(&self.counts[i..]);
        values.extend_from_slice(&other.values[j..]);
        counts.extend_from_slice(&other.counts[j..]);
        self.values = values;
        self.counts = counts;
        self.total += other.total;
        self.max_folded = self.max_folded.max(other.max_folded);
        self.compact();
    }

    /// Folds adjacent runs into count-weighted means until the run count
    /// fits the budget. Weighted means preserve the sort order, so the
    /// result is still a valid grouped sample — just no longer exact.
    fn compact(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.values.len() > budget {
            let mut values = Vec::with_capacity(self.values.len().div_ceil(2));
            let mut counts = Vec::with_capacity(values.capacity());
            let mut k = 0;
            while k + 1 < self.values.len() {
                let (c1, c2) = (self.counts[k], self.counts[k + 1]);
                let c = c1 + c2;
                let v = (self.values[k] * c1 as f64 + self.values[k + 1] * c2 as f64) / c as f64;
                values.push(v);
                counts.push(c);
                self.max_folded = self.max_folded.max(c);
                k += 2;
            }
            if k < self.values.len() {
                values.push(self.values[k]);
                counts.push(self.counts[k]);
            }
            self.values = values;
            self.counts = counts;
        }
    }

    /// The distinct values, sorted ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The per-value multiplicities, parallel to
    /// [`values`](GroupedSample::values).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations represented.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of runs (distinct values after any folding).
    pub fn distinct_len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample holds no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// True while no compaction fold has happened — every represented
    /// value is an actual observation and merges are exact.
    pub fn is_exact(&self) -> bool {
        self.max_folded == 0
    }

    /// Worst-case rank error of a quantile read off the runs, as a
    /// fraction of the sample: 0 when exact, otherwise the largest folded
    /// run's share (a query landing inside a folded run sees the run's
    /// weighted mean instead of the true order statistic).
    pub fn rank_error_bound(&self) -> f64 {
        if self.max_folded == 0 || self.total == 0 {
            0.0
        } else {
            self.max_folded as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_groups_and_sorts() {
        let g = GroupedSample::from_samples(&[3.0, 1.0, 3.0, 2.0, 3.0]);
        assert_eq!(g.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(g.counts(), &[1, 1, 3]);
        assert_eq!(g.total(), 5);
        assert!(g.is_exact());
        assert_eq!(g.rank_error_bound(), 0.0);
    }

    #[test]
    fn merge_is_a_multiset_union() {
        let mut a = GroupedSample::from_samples(&[1.0, 2.0, 2.0]);
        let b = GroupedSample::from_samples(&[2.0, 3.0]);
        a.merge(&b);
        assert_eq!(a, GroupedSample::from_samples(&[1.0, 2.0, 2.0, 2.0, 3.0]));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let x = GroupedSample::from_samples(&[4.0, 5.0]);
        let mut left = GroupedSample::new();
        left.merge(&x);
        assert_eq!(left, x);
        let mut right = x.clone();
        right.merge(&GroupedSample::new());
        assert_eq!(right, x);
    }

    #[test]
    fn insert_is_a_single_value_merge() {
        let mut g = GroupedSample::from_samples(&[1.0, 3.0]);
        g.insert(2.0, 2);
        g.insert(3.0, 1);
        g.insert(9.0, 0); // no-op
        assert_eq!(g, GroupedSample::from_samples(&[1.0, 2.0, 2.0, 3.0, 3.0]));
    }

    #[test]
    fn budget_folds_and_reports_the_error_bound() {
        let mut g = GroupedSample::with_budget(4);
        for i in 0..64 {
            g.insert(i as f64, 1);
        }
        assert!(g.distinct_len() <= 4);
        assert_eq!(g.total(), 64);
        assert!(!g.is_exact());
        let bound = g.rank_error_bound();
        assert!(bound > 0.0 && bound <= 1.0, "bound {bound}");
        // Counts survive folding exactly.
        assert_eq!(g.counts().iter().sum::<u64>(), 64);
        // Folded values stay sorted.
        assert!(g.values().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = GroupedSample::from_samples(&[1.0, f64::NAN]);
    }
}
