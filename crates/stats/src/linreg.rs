//! Simple linear regression.
//!
//! Used to validate the SP2 communication-software overhead model: the
//! paper measured `overhead(x) = 4.63e-2·x + 73.42 µs` for `x` bytes; the
//! reproduction regresses measured overheads and checks the recovered
//! slope and intercept.

/// Result of a least-squares line fit `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fits `y = slope·x + intercept` by ordinary least squares.
///
/// Returns `None` if fewer than two points are given or all `x` are equal.
///
/// # Example
///
/// ```
/// use commchar_stats::linreg::fit_line;
/// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
/// let fit = fit_line(&pts).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r2 - 1.0).abs() < 1e-12);
/// ```
pub fn fit_line(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - slope * p.0 - intercept).powi(2)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(LineFit { slope, intercept, r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts = [(0.0, 73.42), (1000.0, 73.42 + 46.3), (2000.0, 73.42 + 92.6)];
        let fit = fit_line(&pts).unwrap();
        assert!((fit.slope - 4.63e-2).abs() < 1e-9);
        assert!((fit.intercept - 73.42).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_high_r2() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x + 5.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let fit = fit_line(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_line(&[]).is_none());
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
        assert!(fit_line(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }
}
