//! Goodness-of-fit measures.

use crate::{Dist, Ecdf, Histogram};

/// Kolmogorov–Smirnov statistic: `sup |F_emp − F_model|`.
///
/// # Example
///
/// ```
/// use commchar_stats::{gof, Dist, Ecdf};
/// let e = Ecdf::new(vec![0.1, 0.2, 0.3, 0.4]);
/// let d = gof::ks_statistic(&e, &Dist::uniform(0.0, 0.5));
/// assert!(d < 0.3);
/// ```
pub fn ks_statistic(ecdf: &Ecdf, dist: &Dist) -> f64 {
    ks_statistic_bounded(ecdf, dist, f64::INFINITY)
}

/// [`ks_statistic`] with an early-exit bound: stops scanning as soon as
/// the running supremum reaches `bail_above` and returns it. The result
/// is exact when it is below the bound, and otherwise a lower bound on
/// the true statistic — enough for a caller that only needs to know the
/// model cannot beat a current best.
pub fn ks_statistic_bounded(ecdf: &Ecdf, dist: &Dist, bail_above: f64) -> f64 {
    let n = ecdf.len() as f64;
    let mut sup: f64 = 0.0;
    for (i, &x) in ecdf.sorted().iter().enumerate() {
        let f = dist.cdf(x);
        let above = ((i + 1) as f64 / n - f).abs();
        let below = (f - i as f64 / n).abs();
        sup = sup.max(above).max(below);
        if sup >= bail_above {
            return sup;
        }
    }
    sup
}

/// [`ks_statistic`] over a value-deduplicated sample: `xs` holds the
/// distinct sorted values and `counts` their multiplicities (`total` is
/// the sample size). The model CDF is evaluated **once per distinct
/// value** instead of once per sample — on tick-quantized inter-arrival
/// gaps, where a few hundred distinct values cover tens of thousands of
/// samples, this is the difference between O(unique) and O(n) CDF sweeps.
///
/// For a run of `c` equal samples the empirical CDF steps from `cum/n`
/// to `(cum+c)/n`; the supremum over the run is attained at one of those
/// two rank extremes, so the grouped scan returns the exact statistic
/// (bit-identical to the per-sample loop). `bail_above` early-exits as in
/// [`ks_statistic_bounded`].
///
/// # Panics
///
/// Panics if `xs` and `counts` have different lengths.
pub fn ks_statistic_grouped(
    xs: &[f64],
    counts: &[u64],
    total: u64,
    dist: &Dist,
    bail_above: f64,
) -> f64 {
    assert_eq!(xs.len(), counts.len(), "values and counts must pair up");
    let n = total as f64;
    let mut cum = 0u64;
    let mut sup: f64 = 0.0;
    for (&x, &c) in xs.iter().zip(counts) {
        let f = dist.cdf(x);
        let above = ((cum + c) as f64 / n - f).abs();
        let below = (f - cum as f64 / n).abs();
        sup = sup.max(above).max(below);
        if sup >= bail_above {
            return sup;
        }
        cum += c;
    }
    sup
}

/// Chi-square statistic of a histogram against a model, with the number of
/// (merged) cells used. Adjacent bins are pooled until each expected count
/// reaches 5, the usual validity rule.
pub fn chi_square(hist: &Histogram, dist: &Dist) -> (f64, usize) {
    let total = hist.total() as f64;
    let mut cells: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut obs_acc = 0.0;
    let mut exp_acc = 0.0;
    for i in 0..hist.bins() {
        let lo = hist.edge(i);
        let hi = hist.edge(i + 1);
        obs_acc += hist.count(i) as f64;
        exp_acc += total * (dist.cdf(hi) - dist.cdf(lo)).max(0.0);
        if exp_acc >= 5.0 {
            cells.push((obs_acc, exp_acc));
            obs_acc = 0.0;
            exp_acc = 0.0;
        }
    }
    if exp_acc > 0.0 || obs_acc > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += obs_acc;
            last.1 += exp_acc;
        } else {
            cells.push((obs_acc, exp_acc.max(1e-9)));
        }
    }
    let chi2 = cells.iter().map(|&(o, e)| if e > 0.0 { (o - e) * (o - e) / e } else { 0.0 }).sum();
    (chi2, cells.len())
}

/// [`r_squared_cdf`] over a value-deduplicated sample (`xs` distinct
/// sorted values, `counts` multiplicities, `total` the sample size),
/// evaluating the model CDF once per distinct value.
///
/// The per-sample regression targets are the ranks `k/n`; for a run of
/// `c` equal values occupying ranks `a+1 ..= a+c` the residual sum
/// collapses in closed form around the run's mean rank
/// `m = (2a + c + 1) / (2n)`:
///
/// ```text
/// Σ (k/n − f)²  =  c·(m − f)²  +  c(c² − 1) / (12 n²)
/// ```
///
/// and the total sum of squares is the constant `(n² − 1) / (12 n)`.
/// The grouped result can differ from the per-sample loop only by
/// floating-point rounding of the regrouped sums.
pub fn r_squared_cdf_grouped(xs: &[f64], counts: &[u64], total: u64, dist: &Dist) -> f64 {
    assert_eq!(xs.len(), counts.len(), "values and counts must pair up");
    let n = total as f64;
    let ss_tot = (n * n - 1.0) / (12.0 * n);
    let mut ss_res = 0.0;
    let mut cum = 0u64;
    for (&x, &c) in xs.iter().zip(counts) {
        let f = dist.cdf(x);
        let cf = c as f64;
        let m = (2.0 * cum as f64 + cf + 1.0) / (2.0 * n);
        ss_res += cf * (m - f) * (m - f) + cf * (cf * cf - 1.0) / (12.0 * n * n);
        cum += c;
    }
    if ss_tot == 0.0 {
        // n == 1: a single point, matching the per-sample degenerate branch.
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Coefficient of determination (R²) of the model CDF against the empirical
/// CDF, evaluated at every sample point — the regression quality measure
/// the paper reports for its fits. 1 is a perfect fit; can be negative for
/// models worse than a constant.
pub fn r_squared_cdf(ecdf: &Ecdf, dist: &Dist) -> f64 {
    let n = ecdf.len() as f64;
    let ys: Vec<f64> = (1..=ecdf.len()).map(|i| i as f64 / n).collect();
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in ecdf.sorted().iter().zip(&ys) {
        let f = dist.cdf(x);
        ss_res += (y - f) * (y - f);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn ks_zero_for_own_quantiles() {
        // Sample at exact quantiles of the model -> tiny KS.
        let d = Dist::exponential(1.0);
        let samples: Vec<f64> = (1..100)
            .map(|i| {
                let q = i as f64 / 100.0;
                -(1.0 - q).ln()
            })
            .collect();
        let e = Ecdf::new(samples);
        assert!(ks_statistic(&e, &d) < 0.03);
    }

    #[test]
    fn ks_large_for_wrong_model() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        // A model concentrated far away.
        let d = Dist::normal(1000.0, 1.0);
        assert!(ks_statistic(&e, &d) > 0.9);
    }

    #[test]
    fn chi_square_small_for_true_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let d = Dist::exponential(0.1);
        let samples: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let h = Histogram::from_samples(&samples, 30);
        let (chi2, cells) = chi_square(&h, &d);
        // Rough check: statistic near its dof.
        assert!(chi2 < 3.0 * cells as f64, "chi2 {chi2} over {cells} cells");
    }

    #[test]
    fn chi_square_pools_sparse_bins() {
        let samples: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let h = Histogram::from_samples(&samples, 40);
        let (_, cells) = chi_square(&h, &Dist::uniform(0.0, 4.9));
        assert!(cells < 40, "bins must be pooled to reach expected counts");
    }

    fn group(sorted: &[f64]) -> (Vec<f64>, Vec<u64>) {
        let mut xs: Vec<f64> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for &x in sorted {
            match xs.last() {
                Some(&last) if last == x => *counts.last_mut().unwrap() += 1,
                _ => {
                    xs.push(x);
                    counts.push(1);
                }
            }
        }
        (xs, counts)
    }

    #[test]
    fn grouped_ks_matches_per_sample_exactly() {
        // Integer-rounded exponential draws: heavy duplication, the case
        // the grouped scan exists for. Must be bit-identical.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let d = Dist::exponential(0.25);
        let samples: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng).round()).collect();
        let e = Ecdf::new(samples);
        let (xs, counts) = group(e.sorted());
        assert!(xs.len() < e.len() / 4, "expected heavy duplication");
        for model in [Dist::exponential(0.25), Dist::uniform(0.0, 30.0), Dist::normal(4.0, 4.0)] {
            let naive = ks_statistic(&e, &model);
            let grouped = ks_statistic_grouped(&xs, &counts, e.len() as u64, &model, f64::INFINITY);
            assert_eq!(naive, grouped, "model {model}");
        }
    }

    #[test]
    fn bounded_ks_is_exact_below_bound_and_lower_bound_above() {
        let e = Ecdf::new((1..=500).map(|i| i as f64).collect());
        let model = Dist::exponential(0.01);
        let exact = ks_statistic(&e, &model);
        assert_eq!(ks_statistic_bounded(&e, &model, exact + 0.1), exact);
        let bailed = ks_statistic_bounded(&e, &model, exact / 2.0);
        assert!(bailed >= exact / 2.0 && bailed <= exact);
    }

    #[test]
    fn grouped_r2_matches_per_sample() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let d = Dist::gamma(2.0, 0.5);
        let samples: Vec<f64> = (0..3000).map(|_| (d.sample(&mut rng) * 2.0).round()).collect();
        let e = Ecdf::new(samples);
        let (xs, counts) = group(e.sorted());
        for model in [Dist::gamma(2.0, 0.5), Dist::exponential(0.25), Dist::uniform(0.0, 20.0)] {
            let naive = r_squared_cdf(&e, &model);
            let grouped = r_squared_cdf_grouped(&xs, &counts, e.len() as u64, &model);
            assert!((naive - grouped).abs() < 1e-9, "model {model}: {naive} vs {grouped}");
        }
        // Degenerate single-point sample hits the ss_tot == 0 branch the
        // same way in both forms.
        let one = Ecdf::new(vec![4.0]);
        let (oxs, ocs) = group(one.sorted());
        let m = Dist::exponential(1.0);
        assert_eq!(r_squared_cdf(&one, &m), r_squared_cdf_grouped(&oxs, &ocs, 1, &m));
    }

    #[test]
    fn r2_ranks_models() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let truth = Dist::exponential(0.2);
        let samples: Vec<f64> = (0..3000).map(|_| truth.sample(&mut rng)).collect();
        let e = Ecdf::new(samples);
        let good = r_squared_cdf(&e, &truth);
        let bad = r_squared_cdf(&e, &Dist::normal(100.0, 1.0));
        assert!(good > 0.99, "true model R² = {good}");
        assert!(bad < good);
    }
}
