//! Goodness-of-fit measures.

use crate::{Dist, Ecdf, Histogram};

/// Kolmogorov–Smirnov statistic: `sup |F_emp − F_model|`.
///
/// # Example
///
/// ```
/// use commchar_stats::{gof, Dist, Ecdf};
/// let e = Ecdf::new(vec![0.1, 0.2, 0.3, 0.4]);
/// let d = gof::ks_statistic(&e, &Dist::uniform(0.0, 0.5));
/// assert!(d < 0.3);
/// ```
pub fn ks_statistic(ecdf: &Ecdf, dist: &Dist) -> f64 {
    let n = ecdf.len() as f64;
    let mut sup: f64 = 0.0;
    for (i, &x) in ecdf.sorted().iter().enumerate() {
        let f = dist.cdf(x);
        let above = ((i + 1) as f64 / n - f).abs();
        let below = (f - i as f64 / n).abs();
        sup = sup.max(above).max(below);
    }
    sup
}

/// Chi-square statistic of a histogram against a model, with the number of
/// (merged) cells used. Adjacent bins are pooled until each expected count
/// reaches 5, the usual validity rule.
pub fn chi_square(hist: &Histogram, dist: &Dist) -> (f64, usize) {
    let total = hist.total() as f64;
    let mut cells: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut obs_acc = 0.0;
    let mut exp_acc = 0.0;
    for i in 0..hist.bins() {
        let lo = hist.edge(i);
        let hi = hist.edge(i + 1);
        obs_acc += hist.count(i) as f64;
        exp_acc += total * (dist.cdf(hi) - dist.cdf(lo)).max(0.0);
        if exp_acc >= 5.0 {
            cells.push((obs_acc, exp_acc));
            obs_acc = 0.0;
            exp_acc = 0.0;
        }
    }
    if exp_acc > 0.0 || obs_acc > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += obs_acc;
            last.1 += exp_acc;
        } else {
            cells.push((obs_acc, exp_acc.max(1e-9)));
        }
    }
    let chi2 = cells.iter().map(|&(o, e)| if e > 0.0 { (o - e) * (o - e) / e } else { 0.0 }).sum();
    (chi2, cells.len())
}

/// Coefficient of determination (R²) of the model CDF against the empirical
/// CDF, evaluated at every sample point — the regression quality measure
/// the paper reports for its fits. 1 is a perfect fit; can be negative for
/// models worse than a constant.
pub fn r_squared_cdf(ecdf: &Ecdf, dist: &Dist) -> f64 {
    let n = ecdf.len() as f64;
    let ys: Vec<f64> = (1..=ecdf.len()).map(|i| i as f64 / n).collect();
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in ecdf.sorted().iter().zip(&ys) {
        let f = dist.cdf(x);
        ss_res += (y - f) * (y - f);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn ks_zero_for_own_quantiles() {
        // Sample at exact quantiles of the model -> tiny KS.
        let d = Dist::exponential(1.0);
        let samples: Vec<f64> = (1..100)
            .map(|i| {
                let q = i as f64 / 100.0;
                -(1.0 - q).ln()
            })
            .collect();
        let e = Ecdf::new(samples);
        assert!(ks_statistic(&e, &d) < 0.03);
    }

    #[test]
    fn ks_large_for_wrong_model() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        // A model concentrated far away.
        let d = Dist::normal(1000.0, 1.0);
        assert!(ks_statistic(&e, &d) > 0.9);
    }

    #[test]
    fn chi_square_small_for_true_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let d = Dist::exponential(0.1);
        let samples: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let h = Histogram::from_samples(&samples, 30);
        let (chi2, cells) = chi_square(&h, &d);
        // Rough check: statistic near its dof.
        assert!(chi2 < 3.0 * cells as f64, "chi2 {chi2} over {cells} cells");
    }

    #[test]
    fn chi_square_pools_sparse_bins() {
        let samples: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let h = Histogram::from_samples(&samples, 40);
        let (_, cells) = chi_square(&h, &Dist::uniform(0.0, 4.9));
        assert!(cells < 40, "bins must be pooled to reach expected counts");
    }

    #[test]
    fn r2_ranks_models() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let truth = Dist::exponential(0.2);
        let samples: Vec<f64> = (0..3000).map(|_| truth.sample(&mut rng)).collect();
        let e = Ecdf::new(samples);
        let good = r_squared_cdf(&e, &truth);
        let bad = r_squared_cdf(&e, &Dist::normal(100.0, 1.0));
        assert!(good > 0.99, "true model R² = {good}");
        assert!(bad < good);
    }
}
