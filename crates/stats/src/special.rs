//! Special functions needed by the distribution families.

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub(crate) fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub(crate) fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// ln Γ(x) with a small thread-local memo in front of the Lanczos
/// evaluation.
///
/// Distribution fitting evaluates gamma/Erlang/Weibull CDFs at hundreds
/// of sample points with the *same* shape parameter — `gamma_p(a, x)`
/// recomputes ln Γ(a) for every `x`, and the Weibull moment factor hits
/// the same handful of shapes over and over. A 4-entry direct-mapped
/// cache keyed on the argument's bit pattern turns those repeats into a
/// lookup; distinct arguments fall through to [`ln_gamma_uncached`].
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const SLOTS: usize = 4;
    // Sentinel key that no cacheable argument uses: a NaN bit pattern
    // (ln Γ(NaN) is NaN and is never stored).
    const EMPTY: u64 = u64::MAX;
    thread_local! {
        static CACHE: std::cell::Cell<[(u64, f64); SLOTS]> =
            const { std::cell::Cell::new([(EMPTY, 0.0); SLOTS]) };
    }
    let bits = x.to_bits();
    if bits == EMPTY {
        return ln_gamma_uncached(x);
    }
    CACHE.with(|cache| {
        let mut slots = cache.get();
        let idx = (bits.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 62) as usize % SLOTS;
        let (key, value) = slots[idx];
        if key == bits {
            return value;
        }
        let value = ln_gamma_uncached(x);
        slots[idx] = (bits, value);
        cache.set(slots);
        value
    })
}

/// ln Γ(x) for x > 0 (Lanczos approximation, g = 7, n = 9).
pub(crate) fn ln_gamma_uncached(x: f64) -> f64 {
    // Canonical Lanczos coefficients, kept verbatim from the reference
    // tables even where they exceed f64 precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Γ(1 + 1/shape): the mean of a unit-scale Weibull with the given shape.
pub(crate) fn gamma_mean_factor(shape: f64) -> f64 {
    ln_gamma(1.0 + 1.0 / shape).exp()
}

/// Regularized lower incomplete gamma function P(a, x), a > 0, x ≥ 0.
///
/// Series for x < a + 1, continued fraction otherwise (Numerical Recipes).
pub(crate) fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..200 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-12 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x).
        let mut b = x + 1.0 - a;
        let mut c = 1e308;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..200 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-12 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn phi_symmetry() {
        assert!((phi(0.0) - 0.5).abs() < 1e-6);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!((phi(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            assert!((ln_gamma((i + 1) as f64) - f.ln()).abs() < 1e-9, "Γ({}) mismatch", i + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-9);
        }
    }

    #[test]
    fn gamma_p_erlang2() {
        // P(2, x) = 1 - e^{-x}(1 + x)
        for &x in &[0.2f64, 1.0, 2.5, 8.0] {
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((gamma_p(2.0, x) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn ln_gamma_memo_matches_uncached() {
        // Sweep with deliberate repeats so both cache hits and evictions
        // are exercised; the memo must be invisible.
        for round in 0..3 {
            for i in 1..200 {
                let x = i as f64 * 0.173 + round as f64 * 1e-9;
                assert_eq!(ln_gamma(x), ln_gamma_uncached(x), "x = {x}");
            }
        }
        assert!(ln_gamma(f64::NAN).is_nan() || ln_gamma(f64::NAN).is_infinite());
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let v = gamma_p(3.7, i as f64 * 0.3);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        assert!(prev <= 1.0 + 1e-12);
    }
}
