//! # commchar-stats
//!
//! The statistical-analysis substrate of the characterization methodology —
//! a from-scratch substitute for the SAS/STAT package the paper used.
//!
//! Provides:
//!
//! - [`Dist`] — the candidate distribution families the paper fits message
//!   inter-arrival times to (exponential, 2-phase hyperexponential, Erlang,
//!   gamma, Weibull, lognormal, Pareto, normal, uniform, deterministic),
//!   each with pdf, cdf, moments and seeded sampling.
//! - [`Histogram`] / [`Ecdf`] — binned and empirical views of a sample.
//! - [`StreamingHistogram`] — a fixed-memory, auto-widening histogram for
//!   online accumulation over unbounded streams (the memory-independent
//!   path used by the streaming network log).
//! - Fitting: closed-form MLE / method-of-moments initializers per family
//!   ([`fit`]), refined by non-linear least squares using the
//!   **multivariate secant (Broyden) method** ([`secant`]) — the same
//!   iterative curve-fitting procedure the paper ran in SAS — and ranked
//!   model selection ([`fit::fit_best`]). Repeated fits over one sample
//!   share a [`fit::FitContext`] (one sort, one dedup, one moments pass).
//! - [`merge`] — mergeable grouped samples ([`merge::GroupedSample`]):
//!   sorted `(value, count)` runs whose multiset union is exact, so
//!   per-block partial samples built in parallel fold into the same
//!   `FitContext` the batch path builds — the substrate of out-of-core
//!   characterization.
//! - Goodness-of-fit ([`gof`]): Kolmogorov–Smirnov statistic, chi-square,
//!   and R² against the empirical CDF (the paper reports regression R²).
//! - [`spatial`] — spatial traffic models (uniform, bimodal-uniform /
//!   favorite-processor, locality decay) with classification by regression,
//!   reproducing the paper's spatial-distribution analysis.
//! - [`burstiness`] — CV², index of dispersion for intervals, and
//!   autocorrelation: the correlation structure a marginal fit cannot
//!   express (the paper's caveat about bursty applications).
//! - [`linreg`] — simple linear regression, used to validate the SP2
//!   software-overhead model `a·x + b`.
//!
//! # Example: recover an exponential from its samples
//!
//! ```
//! use commchar_stats::{fit, Dist};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let truth = Dist::exponential(0.05);
//! let samples: Vec<f64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
//! let best = fit::fit_best(&samples).expect("non-empty sample");
//! assert_eq!(best.dist.family_name(), "exponential");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod histogram;
mod special;

pub mod burstiness;
pub mod fit;
pub mod gof;
pub mod linreg;
pub mod merge;
pub mod secant;
pub mod spatial;

pub use dist::{Dist, Family};
pub use histogram::{Ecdf, Histogram, StreamingHistogram};
