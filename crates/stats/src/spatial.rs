//! Spatial traffic models and their classification.
//!
//! The paper expresses each application's *spatial distribution* — the
//! fraction of messages a processor sends to every other processor — in
//! terms of simple models found by regression: **uniform** (every
//! destination equally likely), **bimodal uniform** (one "favorite"
//! processor plus a uniform remainder; observed for IS, Cholesky and the
//! broadcast-rooted MP codes), a **locality decay** where probability
//! falls off with mesh distance, and **nearest neighbour** (ghost-exchange
//! stencils). Classification is sampling-noise aware; see
//! [`classify_with_count`].

use rand::Rng;

/// A fitted spatial model for a single source processor.
#[derive(Clone, Debug, PartialEq)]
pub enum SpatialModel {
    /// Every other processor is an equally likely destination.
    Uniform,
    /// One favorite destination with probability `p_fav`; the remaining
    /// probability is spread uniformly over the other destinations.
    BimodalUniform {
        /// The favorite destination (node index).
        favorite: usize,
        /// Probability mass sent to the favorite.
        p_fav: f64,
    },
    /// Probability decays exponentially with distance: `P(d) ∝ exp(−α·d)`.
    LocalityDecay {
        /// Decay rate α ≥ 0 (α = 0 degenerates to uniform).
        alpha: f64,
    },
    /// All traffic goes to the source's nearest neighbours (minimum
    /// distance), equally — the ghost-exchange pattern of stencil codes
    /// like MG.
    NearestNeighbor,
}

impl SpatialModel {
    /// Short name for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            SpatialModel::Uniform => "uniform",
            SpatialModel::BimodalUniform { .. } => "bimodal-uniform",
            SpatialModel::LocalityDecay { .. } => "locality-decay",
            SpatialModel::NearestNeighbor => "nearest-neighbor",
        }
    }

    /// The model's predicted probability vector for a source `src` among
    /// `n` nodes, given a distance function (`dist(src, j)`).
    ///
    /// Entry `src` is always 0; the rest sums to 1.
    pub fn predict(&self, src: usize, n: usize, dist: &dyn Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut p = vec![0.0; n];
        match *self {
            SpatialModel::Uniform => {
                let v = 1.0 / (n - 1) as f64;
                for (j, pj) in p.iter_mut().enumerate() {
                    if j != src {
                        *pj = v;
                    }
                }
            }
            SpatialModel::BimodalUniform { favorite, p_fav } => {
                let rest = if n > 2 { (1.0 - p_fav) / (n - 2) as f64 } else { 0.0 };
                for (j, pj) in p.iter_mut().enumerate() {
                    if j == src {
                        continue;
                    }
                    *pj = if j == favorite { p_fav } else { rest };
                }
            }
            SpatialModel::LocalityDecay { alpha } => {
                let mut total = 0.0;
                for (j, pj) in p.iter_mut().enumerate() {
                    if j != src {
                        *pj = (-alpha * dist(src, j)).exp();
                        total += *pj;
                    }
                }
                if total > 0.0 {
                    for pj in &mut p {
                        *pj /= total;
                    }
                }
            }
            SpatialModel::NearestNeighbor => {
                let dmin = (0..n)
                    .filter(|&j| j != src)
                    .map(|j| dist(src, j))
                    .fold(f64::INFINITY, f64::min);
                let nearest: Vec<usize> =
                    (0..n).filter(|&j| j != src && dist(src, j) <= dmin + 1e-9).collect();
                let v = 1.0 / nearest.len() as f64;
                for j in nearest {
                    p[j] = v;
                }
            }
        }
        p
    }
}

impl std::fmt::Display for SpatialModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SpatialModel::Uniform => write!(f, "uniform"),
            SpatialModel::BimodalUniform { favorite, p_fav } => {
                write!(f, "bimodal-uniform(fav=p{favorite}, p={p_fav:.3})")
            }
            SpatialModel::LocalityDecay { alpha } => write!(f, "locality-decay(α={alpha:.3})"),
            SpatialModel::NearestNeighbor => write!(f, "nearest-neighbor"),
        }
    }
}

/// The result of classifying one source's destination histogram.
#[derive(Clone, Debug)]
pub struct SpatialFit {
    /// The selected model.
    pub model: SpatialModel,
    /// Sum of squared errors of the model against the observed fractions.
    pub sse: f64,
    /// R² of the model against the observed fractions.
    pub r2: f64,
}

/// Normalizes a destination count vector into probabilities (entry `src`
/// forced to zero). Returns `None` if the source sent no messages.
pub fn normalize(counts: &[u64], src: usize) -> Option<Vec<f64>> {
    let total: u64 = counts.iter().enumerate().filter(|&(j, _)| j != src).map(|(_, &c)| c).sum();
    if total == 0 {
        return None;
    }
    Some(
        counts
            .iter()
            .enumerate()
            .map(|(j, &c)| if j == src { 0.0 } else { c as f64 / total as f64 })
            .collect(),
    )
}

fn sse(obs: &[f64], pred: &[f64]) -> f64 {
    obs.iter().zip(pred).map(|(o, p)| (o - p) * (o - p)).sum()
}

fn r2(obs: &[f64], pred: &[f64], src: usize) -> f64 {
    let n = obs.len();
    let mean: f64 = obs.iter().enumerate().filter(|&(j, _)| j != src).map(|(_, &o)| o).sum::<f64>()
        / (n - 1) as f64;
    let ss_tot: f64 = obs
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != src)
        .map(|(_, &o)| (o - mean) * (o - mean))
        .sum();
    let ss_res: f64 = obs
        .iter()
        .zip(pred)
        .enumerate()
        .filter(|&(j, _)| j != src)
        .map(|(_, (&o, &p))| (o - p) * (o - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fits the candidate spatial models to an observed probability vector and
/// returns the best by SSE, with a parsimony preference for `Uniform`
/// (chosen whenever it is within a small tolerance of the best, so a
/// bimodal model with a meaningless favorite does not win on noise).
///
/// `dist(src, j)` supplies the mesh distance used by the locality model.
/// Equivalent to [`classify_with_count`] without sampling-noise awareness.
///
/// # Panics
///
/// Panics if `probs.len() < 3` — classification needs at least two
/// candidate destinations.
pub fn classify(probs: &[f64], src: usize, dist: &dyn Fn(usize, usize) -> f64) -> SpatialFit {
    classify_with_count(probs, src, dist, None)
}

/// Like [`classify`], but `samples` (the number of messages behind the
/// observed probabilities) widens the uniform-preference tolerance to the
/// expected sampling-noise SSE — 3σ-scaled `Σ p(1−p)/m` — so finite observations of
/// genuinely uniform traffic are not misclassified as bimodal.
///
/// # Panics
///
/// Panics if `probs.len() < 3`.
pub fn classify_with_count(
    probs: &[f64],
    src: usize,
    dist: &dyn Fn(usize, usize) -> f64,
    samples: Option<u64>,
) -> SpatialFit {
    let n = probs.len();
    assert!(n >= 3, "need at least three nodes to classify spatial traffic");

    let mut candidates: Vec<SpatialModel> = vec![SpatialModel::Uniform];

    // Bimodal: favorite = argmax.
    let favorite = (0..n)
        .filter(|&j| j != src)
        .max_by(|&a, &b| probs[a].partial_cmp(&probs[b]).unwrap())
        .unwrap();
    candidates.push(SpatialModel::BimodalUniform { favorite, p_fav: probs[favorite] });

    // Locality decay: golden-section search on α ∈ [0, 8].
    let eval = |alpha: f64| {
        let m = SpatialModel::LocalityDecay { alpha };
        sse(probs, &m.predict(src, n, dist))
    };
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..60 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if eval(a) < eval(b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    let alpha = 0.5 * (lo + hi);
    candidates.push(SpatialModel::LocalityDecay { alpha });
    candidates.push(SpatialModel::NearestNeighbor);

    let mut fits: Vec<SpatialFit> = candidates
        .into_iter()
        .map(|m| {
            let pred = m.predict(src, n, dist);
            SpatialFit { sse: sse(probs, &pred), r2: r2(probs, &pred, src), model: m }
        })
        .collect();
    // Equal-SSE ties go to the more structural model: a bimodal fit with
    // its favorite at the argmax can always match a point-mass pattern,
    // but "nearest neighbour" or "locality" explains *why* that
    // destination wins.
    let rank = |m: &SpatialModel| match m {
        SpatialModel::Uniform => 0,
        SpatialModel::NearestNeighbor => 1,
        SpatialModel::LocalityDecay { .. } => 2,
        SpatialModel::BimodalUniform { .. } => 3,
    };
    fits.sort_by(|a, b| a.sse.partial_cmp(&b.sse).unwrap());
    let best_sse = fits[0].sse;
    let winner = fits
        .iter()
        .filter(|f| f.sse <= best_sse + 1e-9)
        .min_by_key(|f| rank(&f.model))
        .cloned()
        .expect("at least one fit");
    fits.retain(|f| f.model != winner.model);
    fits.insert(0, winner);
    let noise_sse = samples
        .filter(|&m| m > 0)
        .map(|m| 3.0 * probs.iter().map(|&p| p * (1.0 - p)).sum::<f64>() / m as f64)
        .unwrap_or(0.0);
    let tolerance = 5e-4 + noise_sse;
    // A genuine favorite must survive the widened tolerance: uniform is
    // rejected outright when the peak destination is both statistically
    // significant (3σ of a finite-sample binomial cell) and practically
    // meaningful (at least 1.5× the uniform share — the paper's favorites
    // are 2× and more).
    let peak_is_noise = match samples.filter(|&m| m > 0) {
        None => true,
        Some(m) => {
            let p_u = 1.0 / (n - 1) as f64;
            let sigma = (p_u * (1.0 - p_u) / m as f64).sqrt();
            let peak = probs.iter().cloned().fold(0.0, f64::max);
            (peak - p_u).abs() <= 3.0 * sigma || peak < 1.5 * p_u
        }
    };
    if peak_is_noise {
        if let Some(uniform) = fits.iter().find(|f| f.model == SpatialModel::Uniform) {
            if uniform.sse <= best_sse + tolerance {
                return uniform.clone();
            }
        }
    }
    fits.into_iter().next().unwrap()
}

/// Samples a destination from a probability vector (entry `src` is 0).
///
/// # Panics
///
/// Panics if the vector has no positive mass.
pub fn sample_destination<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "destination vector has no mass");
    let mut u = rng.gen::<f64>() * total;
    for (j, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 && p > 0.0 {
            return j;
        }
    }
    // Floating-point slack: return the last positive entry.
    probs.iter().rposition(|&p| p > 0.0).unwrap()
}

/// Shannon entropy of a destination distribution in bits — a scale-free
/// summary of spatial spread (max = log2(n−1) for uniform traffic).
pub fn entropy_bits(probs: &[f64]) -> f64 {
    probs.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.log2()).sum()
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn flat_dist(_: usize, _: usize) -> f64 {
        1.0
    }

    #[test]
    fn uniform_is_recognized() {
        let n = 8;
        let probs: Vec<f64> =
            (0..n).map(|j| if j == 2 { 0.0 } else { 1.0 / (n - 1) as f64 }).collect();
        let fit = classify(&probs, 2, &flat_dist);
        assert_eq!(fit.model, SpatialModel::Uniform);
        assert!(fit.sse < 1e-12);
    }

    #[test]
    fn favorite_processor_is_recognized() {
        let n = 8;
        let mut probs = vec![0.05; n];
        probs[0] = 0.0; // src
        probs[5] = 0.70;
        let fit = classify(&probs, 0, &flat_dist);
        match fit.model {
            SpatialModel::BimodalUniform { favorite, p_fav } => {
                assert_eq!(favorite, 5);
                assert!((p_fav - 0.70).abs() < 1e-12);
            }
            other => panic!("expected bimodal, got {other}"),
        }
    }

    #[test]
    fn locality_decay_is_recognized() {
        // 1-D line distances; α = 1 decay.
        let n = 8;
        let src = 0;
        let d = |a: usize, b: usize| (a as f64 - b as f64).abs();
        let truth = SpatialModel::LocalityDecay { alpha: 1.0 };
        let probs = truth.predict(src, n, &d);
        let fit = classify(&probs, src, &d);
        match fit.model {
            SpatialModel::LocalityDecay { alpha } => {
                assert!((alpha - 1.0).abs() < 0.05, "alpha = {alpha}");
            }
            other => panic!("expected locality decay, got {other}"),
        }
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn nearest_neighbor_is_recognized() {
        // 1-D line: source 3's nearest neighbours are 2 and 4.
        let n = 8;
        let d = |a: usize, b: usize| (a as f64 - b as f64).abs();
        let truth = SpatialModel::NearestNeighbor;
        let probs = truth.predict(3, n, &d);
        assert!((probs[2] - 0.5).abs() < 1e-12);
        assert!((probs[4] - 0.5).abs() < 1e-12);
        let fit = classify(&probs, 3, &d);
        assert_eq!(fit.model, SpatialModel::NearestNeighbor, "got {}", fit.model);
        assert!(fit.sse < 1e-9);
    }

    #[test]
    fn normalize_excludes_source() {
        let counts = vec![10, 30, 60];
        let p = normalize(&counts, 0).unwrap();
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!(normalize(&[5, 0, 0], 0).is_none());
    }

    #[test]
    fn predictions_sum_to_one() {
        let d = |a: usize, b: usize| (a as f64 - b as f64).abs();
        for model in [
            SpatialModel::Uniform,
            SpatialModel::BimodalUniform { favorite: 3, p_fav: 0.5 },
            SpatialModel::LocalityDecay { alpha: 0.7 },
            SpatialModel::NearestNeighbor,
        ] {
            let p = model.predict(1, 9, &d);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{model}");
            assert_eq!(p[1], 0.0, "{model}: src must get zero");
        }
    }

    #[test]
    fn sampling_respects_distribution() {
        let probs = vec![0.0, 0.25, 0.75];
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut hits = [0usize; 3];
        for _ in 0..20_000 {
            hits[sample_destination(&probs, &mut rng)] += 1;
        }
        assert_eq!(hits[0], 0);
        let f1 = hits[1] as f64 / 20_000.0;
        assert!((f1 - 0.25).abs() < 0.02, "f1 = {f1}");
    }

    #[test]
    fn entropy_extremes() {
        let uniform = vec![0.0, 0.25, 0.25, 0.25, 0.25];
        assert!((entropy_bits(&uniform) - 2.0).abs() < 1e-12);
        let point = vec![0.0, 1.0, 0.0];
        assert_eq!(entropy_bits(&point), 0.0);
    }
}
