//! Fitting the candidate families to a sample and selecting the best model.
//!
//! The procedure mirrors the paper's SAS analysis: start each family from a
//! closed-form (MLE / method-of-moments) estimate, refine by non-linear
//! least squares on the empirical CDF with the multivariate secant method,
//! then rank the fitted models by goodness-of-fit.
//!
//! All per-sample preprocessing is hoisted into a [`FitContext`] built
//! **once** per sample set: one sort, one value-deduplication pass, one
//! moments sweep, one anchor extraction. Every candidate family then
//! borrows those views, so fitting ten families costs one sort instead of
//! ten and the KS / R² / EM sweeps run over the distinct values (with
//! multiplicities) instead of the raw samples — a large constant-factor win
//! on tick-quantized inter-arrival gaps where duplication is heavy.
//!
//! The preprocessed form is a [`GroupedSample`], which **merges exactly**
//! across data blocks: the streaming pipeline builds one grouped sample
//! per trace block, merges them in any grouping, and
//! [`FitContext::from_grouped`] yields the identical context (same
//! anchors, same moments, same fits, bit for bit) that [`FitContext::new`]
//! computes over the whole sample in memory.

use crate::gof::{ks_statistic_grouped, r_squared_cdf_grouped};
use crate::merge::GroupedSample;
use crate::secant::{minimize, SecantOptions};
use crate::{Dist, Family};

/// One fitted model with its goodness-of-fit scores.
#[derive(Clone, Debug)]
pub struct FitResult {
    /// The fitted distribution.
    pub dist: Dist,
    /// Kolmogorov–Smirnov statistic (lower is better).
    pub ks: f64,
    /// R² of the model CDF against the empirical CDF (higher is better).
    pub r2: f64,
    /// Sum of squared CDF residuals from the secant refinement.
    pub sse: f64,
}

/// Number of CDF anchor points used for the least-squares refinement.
const ANCHORS: usize = 64;

/// Ranking score: KS with a mild parsimony bias. A model is only preferred
/// over one with fewer parameters if it improves KS by more than 0.005 per
/// extra parameter, keeping "exponential" ahead of a hyperexponential that
/// degenerates to it, as in the paper's tables.
fn penalty(r: &FitResult) -> f64 {
    r.ks + param_penalty(&r.dist)
}

fn param_penalty(dist: &Dist) -> f64 {
    0.005 * (dist.params().len() as f64 - 1.0)
}

/// Summary statistics used by the initializers.
struct Moments {
    mean: f64,
    var: f64,
    cv2: f64,
    min: f64,
    max: f64,
    log_mean: f64,
    log_var: f64,
    has_nonpositive: bool,
}

/// Moments over a deduplicated sorted sample (values + multiplicities).
fn moments_grouped(xs: &[f64], counts: &[u64], total: u64) -> Moments {
    let n = total as f64;
    let mean = xs.iter().zip(counts).map(|(&x, &c)| c as f64 * x).sum::<f64>() / n;
    let var = if total < 2 {
        0.0
    } else {
        xs.iter().zip(counts).map(|(&x, &c)| c as f64 * (x - mean) * (x - mean)).sum::<f64>()
            / (n - 1.0)
    };
    let min = xs.first().copied().unwrap_or(f64::INFINITY);
    let max = xs.last().copied().unwrap_or(f64::NEG_INFINITY);
    let has_nonpositive = min <= 0.0;
    let mut log_n = 0u64;
    let mut log_sum = 0.0;
    for (&x, &c) in xs.iter().zip(counts) {
        if x > 0.0 {
            log_n += c;
            log_sum += c as f64 * x.ln();
        }
    }
    let (log_mean, log_var) = if log_n >= 2 {
        let lm = log_sum / log_n as f64;
        let lv = xs
            .iter()
            .zip(counts)
            .filter(|&(&x, _)| x > 0.0)
            .map(|(&x, &c)| {
                let l = x.ln();
                c as f64 * (l - lm) * (l - lm)
            })
            .sum::<f64>()
            / (log_n - 1) as f64;
        (lm, lv)
    } else {
        (0.0, 0.0)
    };
    Moments {
        mean,
        var,
        cv2: if mean != 0.0 { var / (mean * mean) } else { 0.0 },
        min,
        max,
        log_mean,
        log_var,
        has_nonpositive,
    }
}

/// Closed-form initial estimate for one family, or `None` when the family
/// cannot describe the sample (e.g. lognormal with non-positive values).
fn initial(family: Family, m: &Moments) -> Option<Dist> {
    match family {
        Family::Exponential => (m.mean > 0.0).then(|| Dist::exponential(1.0 / m.mean)),
        Family::HyperExp2 => {
            if m.mean <= 0.0 {
                return None;
            }
            // Balanced-means initializer; requires CV² > 1 to be meaningful,
            // but start slightly off-balance even at CV² ≤ 1 and let the
            // secant refinement decide.
            let cv2 = m.cv2.max(1.01);
            let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt()).clamp(0.02, 0.98);
            Some(Dist::hyper_exp2(p, 2.0 * p / m.mean, 2.0 * (1.0 - p) / m.mean))
        }
        Family::Erlang => {
            if m.mean <= 0.0 {
                return None;
            }
            let k = if m.cv2 > 0.0 { (1.0 / m.cv2).round().clamp(1.0, 64.0) as u32 } else { 1 };
            Some(Dist::erlang(k, k as f64 / m.mean))
        }
        Family::Gamma => {
            if m.mean <= 0.0 || m.var <= 0.0 {
                return None;
            }
            // Method of moments: shape = mean²/var, rate = mean/var.
            let shape = (m.mean * m.mean / m.var).clamp(0.05, 500.0);
            Some(Dist::gamma(shape, (m.mean / m.var).max(1e-12)))
        }
        Family::Pareto => {
            if m.min <= 0.0 {
                return None;
            }
            // MLE: x_m = min, α = n / Σ ln(x / x_m) — approximated from
            // the log moments (Σ ln x − n ln x_m).
            let alpha = if m.log_mean > m.min.ln() {
                (1.0 / (m.log_mean - m.min.ln())).clamp(0.05, 100.0)
            } else {
                2.0
            };
            Some(Dist::pareto(m.min, alpha))
        }
        Family::Weibull => {
            if m.mean <= 0.0 || m.has_nonpositive {
                return None;
            }
            // Moment-based shape approximation: CV ≈ shape^(-0.926) is a
            // serviceable starting point; scale from the mean.
            let cv = m.cv2.sqrt().max(1e-3);
            let shape = cv.powf(-1.0 / 0.926).clamp(0.1, 20.0);
            let scale = m.mean / crate::special::gamma_mean_factor(shape);
            Some(Dist::weibull(shape, scale.max(1e-12)))
        }
        Family::Lognormal => {
            if m.has_nonpositive || m.log_var <= 0.0 {
                return None;
            }
            Some(Dist::lognormal(m.log_mean, m.log_var.sqrt()))
        }
        Family::Normal => (m.var > 0.0).then(|| Dist::normal(m.mean, m.var.sqrt())),
        Family::Uniform => (m.max > m.min).then(|| Dist::uniform(m.min, m.max)),
        Family::Deterministic => Some(Dist::deterministic(m.mean)),
    }
}

/// Expectation-maximization refinement for the 2-phase hyperexponential:
/// a handful of EM sweeps from the moment initializer land close to the MLE
/// before the least-squares polish. Runs over the deduplicated values with
/// multiplicities — each distinct gap costs one density evaluation per
/// sweep no matter how many samples share it.
fn hyperexp_em_grouped(xs: &[f64], counts: &[u64], total: u64, init: Dist, iters: usize) -> Dist {
    let Dist::HyperExp2 { mut p, mut r1, mut r2 } = init else { return init };
    let n = total as f64;
    for _ in 0..iters {
        let mut sw = 0.0; // Σ w_i
        let mut swx = 0.0; // Σ w_i x_i
        let mut sux = 0.0; // Σ (1−w_i) x_i
        for (&x, &c) in xs.iter().zip(counts) {
            let x = x.max(0.0);
            let f1 = p * r1 * (-r1 * x).exp();
            let f2 = (1.0 - p) * r2 * (-r2 * x).exp();
            let w = if f1 + f2 > 0.0 { f1 / (f1 + f2) } else { 0.5 };
            let cf = c as f64;
            sw += cf * w;
            swx += cf * w * x;
            sux += cf * (1.0 - w) * x;
        }
        if sw < 1e-9 || sw > n - 1e-9 || swx <= 0.0 || sux <= 0.0 {
            break;
        }
        p = (sw / n).clamp(1e-4, 1.0 - 1e-4);
        r1 = sw / swx;
        r2 = (n - sw) / sux;
        if !(r1.is_finite() && r2.is_finite() && r1 > 0.0 && r2 > 0.0) {
            return init;
        }
    }
    Dist::HyperExp2 { p, r1, r2 }
}

/// Shared, immutable preprocessing for fitting one sample set.
///
/// Construction does all the per-sample work exactly once — sort,
/// deduplication into `(value, count)` runs, moment sweep, CDF anchor
/// extraction — and every candidate family then borrows these views.
/// Build one context and call [`FitContext::fit_best`] /
/// [`FitContext::fit_all`] instead of the free functions whenever the
/// sample set is used more than once.
///
/// The context is **mergeable at the sample layer**: build one
/// [`GroupedSample`] per data block, [`merge`](GroupedSample::merge) them
/// (exact, order-insensitive), and construct the context with
/// [`FitContext::from_grouped`]. The result is byte-identical to a
/// context built from the concatenated raw samples — the streaming
/// characterization pipeline rests on this.
pub struct FitContext {
    unique: Vec<f64>,
    counts: Vec<u64>,
    /// Inclusive cumulative counts per run — the grouped ECDF, enough to
    /// reproduce nearest-rank quantiles and `F(x)` evaluations exactly.
    cum: Vec<u64>,
    total: u64,
    moments: Moments,
    /// (x, F_emp(x)) anchor points for the least-squares refinement.
    anchors: Vec<(f64, f64)>,
}

impl FitContext {
    /// Preprocesses `samples` for repeated fitting.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot fit an empty sample");
        Self::from_grouped(&GroupedSample::from_samples(samples))
    }

    /// Builds the context from an already-grouped sample — the entry
    /// point of the streaming pipeline, where per-block grouped samples
    /// were merged instead of ever materializing the raw stream.
    ///
    /// For any grouping of the same multiset this produces exactly the
    /// context [`FitContext::new`] builds from the raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty.
    pub fn from_grouped(sample: &GroupedSample) -> Self {
        assert!(!sample.is_empty(), "cannot fit an empty sample");
        let unique = sample.values().to_vec();
        let counts = sample.counts().to_vec();
        let total = sample.total();
        let mut cum = Vec::with_capacity(counts.len());
        let mut running = 0u64;
        for &c in &counts {
            running += c;
            cum.push(running);
        }
        let moments = moments_grouped(&unique, &counts, total);
        let mut ctx = FitContext { unique, counts, cum, total, moments, anchors: Vec::new() };
        let m = ANCHORS.min(total as usize);
        ctx.anchors = (0..m)
            .map(|i| {
                let q = (i as f64 + 0.5) / m as f64;
                let x = ctx.quantile(q);
                (x, ctx.eval(x))
            })
            .collect();
        ctx
    }

    /// Nearest-rank sample quantile over the grouped runs — value-for-
    /// value what [`Ecdf::quantile`](crate::Ecdf::quantile) returns on the
    /// raw sorted sample.
    fn quantile(&self, q: f64) -> f64 {
        let n = self.total;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let j = self.cum.partition_point(|&c| c < rank);
        self.unique[j]
    }

    /// Fraction of samples ≤ `x` — bit-identical to
    /// [`Ecdf::eval`](crate::Ecdf::eval) on the raw sorted sample (the
    /// same integer count divided by the same integer total).
    fn eval(&self, x: f64) -> f64 {
        let j = self.unique.partition_point(|&v| v <= x);
        let le = if j == 0 { 0 } else { self.cum[j - 1] };
        le as f64 / self.total as f64
    }

    /// Number of samples behind this context.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True when the context holds no samples (never: construction panics
    /// on empty input; provided to satisfy the `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct sample values — the effective sweep length for
    /// the grouped KS / R² / EM passes.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// KS statistic of an atom at `v` against the sample: the generic
    /// formula assumes a continuous model CDF, so the Deterministic family
    /// is scored as max(frac strictly below, frac strictly above).
    fn ks_atom(&self, v: f64) -> f64 {
        let n = self.total as f64;
        let mut below = 0u64;
        let mut above = 0u64;
        for (&x, &c) in self.unique.iter().zip(&self.counts) {
            if x < v {
                below += c;
            } else if x > v {
                above += c;
            }
        }
        (below as f64 / n).max(above as f64 / n)
    }

    /// KS statistic for a fitted model, early-exiting once the running
    /// supremum reaches `bail_above` (pass `f64::INFINITY` for exact).
    fn ks(&self, dist: &Dist, bail_above: f64) -> f64 {
        if let Dist::Deterministic { v } = *dist {
            self.ks_atom(v)
        } else {
            ks_statistic_grouped(&self.unique, &self.counts, self.total, dist, bail_above)
        }
    }

    /// Initializes and secant-refines one family without scoring it.
    /// Returns `None` when the family is inapplicable to this sample.
    fn refine(&self, family: Family) -> Option<Dist> {
        let mut init = initial(family, &self.moments)?;
        if matches!(family, Family::HyperExp2) {
            init = hyperexp_em_grouped(&self.unique, &self.counts, self.total, init, 40);
        }
        let mut refined = if matches!(family, Family::Deterministic) {
            init
        } else {
            let template = init;
            let fit = minimize(
                &init.params(),
                |p| {
                    let d = template.with_params(p)?;
                    Some(self.anchors.iter().map(|&(x, y)| d.cdf(x) - y).collect())
                },
                SecantOptions::default(),
            );
            match fit {
                Some(f) => template.with_params(&f.params).unwrap_or(template),
                None => template,
            }
        };
        // Erlang-1 *is* the exponential; report it under the simpler name.
        if let Dist::Erlang { k: 1, rate } = refined {
            refined = Dist::Exponential { rate };
        }
        Some(refined)
    }

    fn sse(&self, dist: &Dist) -> f64 {
        self.anchors.iter().map(|&(x, y)| (dist.cdf(x) - y).powi(2)).sum()
    }

    /// Fits one family: closed-form initializer plus multivariate secant
    /// refinement of the CDF least-squares problem, scored exactly.
    /// Returns `None` when the family is inapplicable.
    pub fn fit_family(&self, family: Family) -> Option<FitResult> {
        let refined = self.refine(family)?;
        let ks = self.ks(&refined, f64::INFINITY);
        let r2 = r_squared_cdf_grouped(&self.unique, &self.counts, self.total, &refined);
        Some(FitResult { sse: self.sse(&refined), dist: refined, ks, r2 })
    }

    /// Fits every applicable family and returns the results ranked
    /// best-first by the penalized KS score (see [`fit_all`]).
    pub fn fit_all(&self) -> Vec<FitResult> {
        let mut results: Vec<FitResult> =
            Family::all().iter().filter_map(|&f| self.fit_family(f)).collect();
        results.sort_by(|a, b| penalty(a).partial_cmp(&penalty(b)).unwrap());
        results
    }

    /// The best-ranked fit under the same penalized-KS ordering as
    /// [`FitContext::fit_all`], computed with early exits: each
    /// candidate's KS scan bails as soon as it can no longer beat the
    /// incumbent, and R² is evaluated only for the final winner.
    ///
    /// Returns `None` only when no family applies (cannot happen for
    /// non-empty samples, since deterministic always applies).
    pub fn fit_best(&self) -> Option<FitResult> {
        // Track the incumbent without r2; candidates replace it only on a
        // strictly better penalty, reproducing the first-minimum tie
        // semantics of the stable sort in `fit_all`.
        let mut best: Option<(Dist, f64, f64)> = None; // (dist, ks, penalized)
        for &family in Family::all() {
            let Some(refined) = self.refine(family) else { continue };
            let pp = param_penalty(&refined);
            let bail = match &best {
                // A candidate wins only if ks + pp < best_pen, i.e. its
                // KS stays under best_pen − pp; once the running supremum
                // reaches that, the exact value no longer matters.
                Some((_, _, best_pen)) => best_pen - pp,
                None => f64::INFINITY,
            };
            let ks = self.ks(&refined, bail);
            if ks < bail {
                // ks < bail ⇔ ks + pp < best_pen, and the scan completed
                // without bailing, so ks is exact.
                best = Some((refined, ks, ks + pp));
            }
        }
        let (dist, ks, _) = best?;
        let r2 = r_squared_cdf_grouped(&self.unique, &self.counts, self.total, &dist);
        Some(FitResult { sse: self.sse(&dist), dist, ks, r2 })
    }
}

/// Fits one family to the sample: closed-form initializer plus multivariate
/// secant refinement of the CDF least-squares problem. Returns `None` when
/// the family is inapplicable.
///
/// Convenience wrapper building a throwaway [`FitContext`]; prefer the
/// context when fitting the same sample more than once.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn fit_family(samples: &[f64], family: Family) -> Option<FitResult> {
    FitContext::new(samples).fit_family(family)
}

/// Fits every applicable family and returns the results ranked best-first.
///
/// Ranking is by the KS statistic with a mild parsimony bias: a model is
/// only preferred over one with fewer parameters if it improves KS by more
/// than 0.005 per extra parameter. This keeps "exponential" ahead of a
/// hyperexponential that degenerates to it, as in the paper's tables.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn fit_all(samples: &[f64]) -> Vec<FitResult> {
    FitContext::new(samples).fit_all()
}

/// The best-ranked fit, or `None` only for pathological inputs where no
/// family applies (cannot happen for non-empty samples, since
/// deterministic always applies).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn fit_best(samples: &[f64]) -> Option<FitResult> {
    FitContext::new(samples).fit_best()
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn samples_of(d: Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_exponential() {
        let s = samples_of(Dist::exponential(0.05), 4000, 1);
        let best = fit_best(&s).unwrap();
        assert_eq!(best.dist.family(), Family::Exponential, "got {}", best.dist);
        let Dist::Exponential { rate } = best.dist else { unreachable!() };
        assert!((rate - 0.05).abs() / 0.05 < 0.1, "rate {rate}");
        assert!(best.r2 > 0.99);
    }

    #[test]
    fn recovers_erlang() {
        let s = samples_of(Dist::erlang(4, 0.1), 4000, 2);
        let best = fit_best(&s).unwrap();
        // Erlang-4 has CV = 0.5; acceptable outcomes are erlang or a very
        // close weibull/lognormal — but the KS ranking should prefer erlang.
        assert_eq!(best.dist.family(), Family::Erlang, "got {}", best.dist);
    }

    #[test]
    fn recovers_hyperexponential() {
        let truth = Dist::hyper_exp2(0.15, 1.0, 0.01);
        let s = samples_of(truth, 6000, 3);
        let all = fit_all(&s);
        let best = &all[0];
        assert_eq!(best.dist.family(), Family::HyperExp2, "got {}", best.dist);
        assert!(best.ks < 0.03, "ks = {}", best.ks);
        // The plain exponential must fit clearly worse (CV >> 1).
        let exp = all.iter().find(|r| r.dist.family() == Family::Exponential).unwrap();
        assert!(exp.ks > 2.0 * best.ks);
    }

    #[test]
    fn recovers_uniform() {
        let s = samples_of(Dist::uniform(10.0, 20.0), 4000, 4);
        let best = fit_best(&s).unwrap();
        assert_eq!(best.dist.family(), Family::Uniform, "got {}", best.dist);
    }

    #[test]
    fn recovers_deterministic() {
        let s = vec![7.0; 500];
        let best = fit_best(&s).unwrap();
        assert_eq!(best.dist.family(), Family::Deterministic, "got {}", best.dist);
    }

    #[test]
    fn recovers_gamma() {
        // Non-integer shape so Erlang cannot match it exactly.
        let s = samples_of(Dist::gamma(2.6, 0.08), 6000, 21);
        let r = fit_family(&s, Family::Gamma).unwrap();
        let Dist::Gamma { shape, rate } = r.dist else { panic!("not gamma") };
        assert!((shape - 2.6).abs() < 0.3, "shape {shape}");
        assert!((rate - 0.08).abs() / 0.08 < 0.15, "rate {rate}");
        assert!(r.ks < 0.03, "ks {}", r.ks);
    }

    #[test]
    fn recovers_pareto() {
        let s = samples_of(Dist::pareto(5.0, 2.5), 6000, 22);
        let best = fit_best(&s).unwrap();
        assert_eq!(best.dist.family(), Family::Pareto, "got {}", best.dist);
        let Dist::Pareto { xm, alpha } = best.dist else { unreachable!() };
        assert!((xm - 5.0).abs() < 0.5, "xm {xm}");
        assert!((alpha - 2.5).abs() < 0.4, "alpha {alpha}");
    }

    #[test]
    fn recovers_normal() {
        let s = samples_of(Dist::normal(50.0, 5.0), 4000, 5);
        let best = fit_best(&s).unwrap();
        assert_eq!(best.dist.family(), Family::Normal, "got {}", best.dist);
    }

    #[test]
    fn recovers_lognormal() {
        let s = samples_of(Dist::lognormal(3.0, 1.0), 6000, 6);
        let best = fit_best(&s).unwrap();
        assert!(
            matches!(best.dist.family(), Family::Lognormal),
            "got {} (ks {})",
            best.dist,
            best.ks
        );
    }

    #[test]
    fn refinement_improves_or_preserves_sse() {
        let s = samples_of(Dist::weibull(2.0, 30.0), 3000, 7);
        let r = fit_family(&s, Family::Weibull).unwrap();
        assert!(r.ks < 0.05, "weibull fit ks = {}", r.ks);
    }

    #[test]
    fn nonpositive_samples_skip_positive_families() {
        let s = vec![-1.0, 0.0, 1.0, 2.0, 3.0];
        assert!(fit_family(&s, Family::Lognormal).is_none());
        assert!(fit_family(&s, Family::Weibull).is_none());
        assert!(fit_family(&s, Family::Normal).is_some());
    }

    #[test]
    fn fit_all_is_ranked() {
        let s = samples_of(Dist::exponential(1.0), 2000, 8);
        let all = fit_all(&s);
        assert!(all.len() >= 4);
        let penalty = |r: &FitResult| r.ks + 0.005 * (r.dist.params().len() as f64 - 1.0);
        for w in all.windows(2) {
            assert!(penalty(&w[0]) <= penalty(&w[1]) + 1e-12);
        }
    }

    #[test]
    fn fit_best_agrees_with_fit_all_front() {
        // The early-exit selection must land on the same model (and the
        // same exact scores) as ranking the exhaustive list — including
        // heavily duplicated integer-tick samples where the grouped
        // sweeps do the least work.
        let duplicated: Vec<f64> =
            samples_of(Dist::exponential(0.2), 3000, 11).iter().map(|x| x.round()).collect();
        let cases: [Vec<f64>; 4] = [
            samples_of(Dist::exponential(0.05), 2500, 9),
            samples_of(Dist::hyper_exp2(0.2, 1.0, 0.02), 2500, 10),
            duplicated,
            vec![3.0; 64],
        ];
        for s in &cases {
            let ctx = FitContext::new(s);
            let all = ctx.fit_all();
            let best = ctx.fit_best().unwrap();
            let front = &all[0];
            assert_eq!(best.dist, front.dist, "winner mismatch");
            assert_eq!(best.ks, front.ks, "ks mismatch for {}", best.dist);
            assert_eq!(best.r2, front.r2, "r2 mismatch for {}", best.dist);
            assert_eq!(best.sse, front.sse, "sse mismatch for {}", best.dist);
        }
    }

    #[test]
    fn from_grouped_merge_matches_batch_construction_exactly() {
        // Split a sample into uneven blocks, group each, merge in a
        // skewed order — the resulting fits must be bit-identical to the
        // whole-sample context. This is the contract the out-of-core
        // characterize pipeline rests on.
        let s: Vec<f64> =
            samples_of(Dist::exponential(0.2), 3000, 31).iter().map(|x| x.round()).collect();
        let whole = FitContext::new(&s);
        for &blocks in &[2usize, 7, 64] {
            let chunk = s.len().div_ceil(blocks);
            let groups: Vec<GroupedSample> =
                s.chunks(chunk).map(GroupedSample::from_samples).collect();
            // Fold right-to-left to exercise order-insensitivity.
            let mut merged = GroupedSample::new();
            for g in groups.iter().rev() {
                merged.merge(g);
            }
            let ctx = FitContext::from_grouped(&merged);
            assert_eq!(ctx.unique, whole.unique);
            assert_eq!(ctx.counts, whole.counts);
            assert_eq!(ctx.anchors, whole.anchors, "{blocks} blocks: anchors diverged");
            let (a, b) = (ctx.fit_best().unwrap(), whole.fit_best().unwrap());
            assert_eq!(a.dist, b.dist);
            assert_eq!(a.ks, b.ks);
            assert_eq!(a.r2, b.r2);
            assert_eq!(a.sse, b.sse);
        }
    }

    #[test]
    fn context_reuse_matches_free_functions() {
        let s = samples_of(Dist::gamma(3.0, 0.5), 1500, 12);
        let ctx = FitContext::new(&s);
        assert!(ctx.unique_len() <= ctx.len());
        for &fam in Family::all() {
            let via_ctx = ctx.fit_family(fam);
            let via_free = fit_family(&s, fam);
            match (via_ctx, via_free) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.dist, b.dist);
                    assert_eq!(a.ks, b.ks);
                }
                (a, b) => panic!("applicability mismatch for {fam:?}: {a:?} vs {b:?}"),
            }
        }
    }
}
