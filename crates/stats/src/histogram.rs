//! Binned and empirical views of a sample.

/// An equal-width histogram over `[min, max]`.
///
/// # Example
///
/// ```
/// use commchar_stats::Histogram;
/// let h = Histogram::from_samples(&[1.0, 2.0, 2.5, 9.0], 4);
/// assert_eq!(h.bins(), 4);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample
    /// range. Degenerate samples (all equal) get a unit-width span.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Histogram {
        assert!(!samples.is_empty(), "histogram needs at least one sample");
        assert!(bins > 0, "histogram needs at least one bin");
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mut max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if max <= min {
            max = min + 1.0;
        }
        let mut h = Histogram { min, max, counts: vec![0; bins], total: 0 };
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Adds a sample; values outside `[min, max]` clamp to the edge bins.
    pub fn add(&mut self, x: f64) {
        let w = self.bin_width();
        let idx = (((x - self.min) / w).floor() as i64).clamp(0, self.counts.len() as i64 - 1);
        self.counts[idx as usize] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.min + (i as f64 + 0.5) * self.bin_width()
    }

    /// Lower edge of bin `i` (edge `bins()` is the upper bound).
    pub fn edge(&self, i: usize) -> f64 {
        self.min + i as f64 * self.bin_width()
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Empirical density of bin `i` (integrates to 1 over the span).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (self.total as f64 * self.bin_width())
    }

    /// Fraction of samples in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// `(center, density)` series — the paper's histogram plots.
    pub fn density_series(&self) -> Vec<(f64, f64)> {
        (0..self.bins()).map(|i| (self.center(i), self.density(i))).collect()
    }
}

/// A fixed-capacity streaming histogram over `u64` observations whose
/// memory never grows with the number of samples.
///
/// The bin count is fixed at construction; when an observation lands past
/// the last bin, the bin *width* doubles and adjacent bins are folded
/// together, so the histogram always covers `[0, bins × width)` in
/// O(bins) memory without knowing the maximum value up front. Widening
/// never loses counts — it only coarsens resolution, and every value ever
/// recorded maps to the same bin it would land in if re-recorded at the
/// final width (widths grow by exact doubling).
///
/// This is the accumulation structure behind streaming network statistics:
/// latency and inter-arrival distributions of multi-million-message runs
/// without retaining per-message records.
///
/// # Example
///
/// ```
/// use commchar_stats::StreamingHistogram;
/// let mut h = StreamingHistogram::new(8);
/// for v in 0..1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 1000);
/// assert_eq!(h.bins(), 8); // capacity unchanged; width widened instead
/// assert!(h.width() * 8 > 999);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingHistogram {
    width: u64,
    counts: Vec<u64>,
    total: u64,
}

impl StreamingHistogram {
    /// Creates a histogram with `bins` bins of initial width 1.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`.
    pub fn new(bins: usize) -> StreamingHistogram {
        StreamingHistogram::with_width(bins, 1)
    }

    /// Creates a histogram with `bins` bins of the given initial width —
    /// use a coarser start when the expected magnitude is known, to avoid
    /// early widening churn.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or `width == 0`.
    pub fn with_width(bins: usize, width: u64) -> StreamingHistogram {
        assert!(bins >= 2, "streaming histogram needs at least two bins");
        assert!(width > 0, "bin width must be positive");
        StreamingHistogram { width, counts: vec![0; bins], total: 0 }
    }

    /// Records one observation, widening bins as needed to keep it in
    /// range. O(1) amortized; a widening pass is O(bins).
    pub fn record(&mut self, value: u64) {
        while (value / self.width) as usize >= self.counts.len() {
            self.widen();
        }
        self.counts[(value / self.width) as usize] += 1;
        self.total += 1;
    }

    /// Doubles the bin width, folding pairs of adjacent bins.
    fn widen(&mut self) {
        let n = self.counts.len();
        for i in 0..n.div_ceil(2) {
            self.counts[i] =
                self.counts[2 * i] + if 2 * i + 1 < n { self.counts[2 * i + 1] } else { 0 };
        }
        for c in &mut self.counts[n.div_ceil(2)..] {
            *c = 0;
        }
        self.width *= 2;
    }

    /// Current bin width. Bin `i` covers `[i × width, (i+1) × width)`.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of bins (fixed at construction).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of observations in bin `i` (0 when empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// `(upper bound, count)` rows, matching the shape of
    /// `NetLog::latency_histogram` for side-by-side reporting.
    pub fn rows(&self) -> Vec<(u64, u64)> {
        self.counts.iter().enumerate().map(|(i, &c)| ((i as u64 + 1) * self.width, c)).collect()
    }

    /// Approximate quantile (`q` in [0, 1]) by linear interpolation inside
    /// the containing bin; the error is bounded by one bin width. Returns
    /// 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0.0;
        }
        let target = q * self.total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum as f64 + c as f64 >= target {
                let within = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return (i as f64 + within) * self.width as f64;
            }
            cum += c;
        }
        (self.counts.len() as u64 * self.width) as f64
    }

    /// Bytes of heap memory held — constant for the histogram's lifetime,
    /// regardless of how many observations were recorded.
    pub fn mem_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

/// Empirical CDF of a sample.
///
/// # Example
///
/// ```
/// use commchar_stats::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(100.0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF (sorts the sample).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        assert!(!samples.is_empty(), "ecdf needs at least one sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "ecdf sample contains NaN");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample quantile (nearest-rank), `q` in [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_density() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&samples, 10);
        assert_eq!(h.total(), 100);
        for i in 0..10 {
            assert_eq!(h.count(i), 10, "bin {i}");
        }
        // Density integrates to 1.
        let integral: f64 = (0..10).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_degenerate_sample() {
        let h = Histogram::from_samples(&[5.0, 5.0, 5.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(0), 3);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::from_samples(&[0.0, 10.0], 5);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(4), 2);
    }

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.eval(0.9), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.9) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_histogram_panics() {
        let _ = Histogram::from_samples(&[], 4);
    }

    #[test]
    fn streaming_widens_without_losing_counts() {
        let mut h = StreamingHistogram::new(4);
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.width(), 1);
        h.record(4); // forces one widening: width 2, bins cover [0, 8)
        assert_eq!(h.width(), 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(0), 2); // 0, 1
        assert_eq!(h.count(1), 2); // 2, 3
        assert_eq!(h.count(2), 1); // 4
        h.record(1000); // jumps several widenings at once
        assert!(h.width() * h.bins() as u64 > 1000);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts().iter().sum::<u64>(), 6);
    }

    #[test]
    fn streaming_matches_rebinned_batch() {
        // Recording values one at a time must give the same final counts
        // as binning them all at the final width in one pass.
        let values: Vec<u64> = (0..5000u64).map(|i| (i * i) % 777).collect();
        let mut h = StreamingHistogram::new(16);
        for &v in &values {
            h.record(v);
        }
        let w = h.width();
        let mut batch = [0u64; 16];
        for &v in &values {
            batch[(v / w) as usize] += 1;
        }
        assert_eq!(h.counts(), &batch[..]);
    }

    #[test]
    fn streaming_quantile_within_one_bin() {
        let mut h = StreamingHistogram::new(64);
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let w = h.width() as f64;
        assert!((h.quantile(0.5) - 5000.0).abs() <= w, "median {}", h.quantile(0.5));
        assert!((h.quantile(0.95) - 9500.0).abs() <= w, "p95 {}", h.quantile(0.95));
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn streaming_memory_is_constant() {
        let mut h = StreamingHistogram::new(32);
        let m0 = h.mem_bytes();
        for v in 0..100_000u64 {
            h.record(v * 31);
        }
        assert_eq!(h.mem_bytes(), m0);
    }

    #[test]
    fn streaming_rows_and_fractions() {
        let mut h = StreamingHistogram::with_width(4, 10);
        h.record(5);
        h.record(15);
        h.record(15);
        h.record(35);
        let rows = h.rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (10, 1));
        assert_eq!(rows[1], (20, 2));
        assert_eq!(rows[3], (40, 1));
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn streaming_rejects_single_bin() {
        let _ = StreamingHistogram::new(1);
    }
}
