//! Binned and empirical views of a sample.

use serde::{Deserialize, Serialize};

/// An equal-width histogram over `[min, max]`.
///
/// # Example
///
/// ```
/// use commchar_stats::Histogram;
/// let h = Histogram::from_samples(&[1.0, 2.0, 2.5, 9.0], 4);
/// assert_eq!(h.bins(), 4);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample
    /// range. Degenerate samples (all equal) get a unit-width span.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Histogram {
        assert!(!samples.is_empty(), "histogram needs at least one sample");
        assert!(bins > 0, "histogram needs at least one bin");
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mut max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if max <= min {
            max = min + 1.0;
        }
        let mut h = Histogram { min, max, counts: vec![0; bins], total: 0 };
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Adds a sample; values outside `[min, max]` clamp to the edge bins.
    pub fn add(&mut self, x: f64) {
        let w = self.bin_width();
        let idx = (((x - self.min) / w).floor() as i64).clamp(0, self.counts.len() as i64 - 1);
        self.counts[idx as usize] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.min + (i as f64 + 0.5) * self.bin_width()
    }

    /// Lower edge of bin `i` (edge `bins()` is the upper bound).
    pub fn edge(&self, i: usize) -> f64 {
        self.min + i as f64 * self.bin_width()
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Empirical density of bin `i` (integrates to 1 over the span).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (self.total as f64 * self.bin_width())
    }

    /// Fraction of samples in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// `(center, density)` series — the paper's histogram plots.
    pub fn density_series(&self) -> Vec<(f64, f64)> {
        (0..self.bins()).map(|i| (self.center(i), self.density(i))).collect()
    }
}

/// Empirical CDF of a sample.
///
/// # Example
///
/// ```
/// use commchar_stats::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(100.0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF (sorts the sample).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        assert!(!samples.is_empty(), "ecdf needs at least one sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "ecdf sample contains NaN");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample quantile (nearest-rank), `q` in [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_density() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&samples, 10);
        assert_eq!(h.total(), 100);
        for i in 0..10 {
            assert_eq!(h.count(i), 10, "bin {i}");
        }
        // Density integrates to 1.
        let integral: f64 = (0..10).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_degenerate_sample() {
        let h = Histogram::from_samples(&[5.0, 5.0, 5.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(0), 3);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::from_samples(&[0.0, 10.0], 5);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(4), 2);
    }

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.eval(0.9), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.9) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_histogram_panics() {
        let _ = Histogram::from_samples(&[], 4);
    }
}
