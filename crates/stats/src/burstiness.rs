//! Burstiness measures for point processes.
//!
//! A single marginal distribution (the paper's Table 2 fits) cannot
//! capture *correlation* between successive inter-arrival times — the
//! burst structure that barrier-synchronized programs produce. These
//! classic teletraffic measures quantify it:
//!
//! - [`cv2`] — squared coefficient of variation of the gaps (1 for a
//!   Poisson process, > 1 for bursty processes).
//! - [`idi`] — index of dispersion for intervals at lag `k`:
//!   `Var(S_k) / (k·mean²)` with `S_k` the sum of `k` consecutive gaps.
//!   For a renewal process IDI(k) = CV² for every k; growth with `k`
//!   reveals positive correlation (bursts).
//! - [`autocorrelation`] — lag-k autocorrelation of the gap sequence.

/// Squared coefficient of variation of a gap sample. Returns 0 for fewer
/// than two observations or a zero mean.
pub fn cv2(gaps: &[f64]) -> f64 {
    if gaps.len() < 2 {
        return 0.0;
    }
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / (n - 1.0);
    var / (mean * mean)
}

/// Index of dispersion for intervals at lag `k`.
///
/// Returns `None` when there are fewer than `2k` gaps (not enough blocks
/// to estimate a variance).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn idi(gaps: &[f64], k: usize) -> Option<f64> {
    assert!(k > 0, "lag must be positive");
    let blocks: Vec<f64> = gaps.chunks_exact(k).map(|c| c.iter().sum()).collect();
    if blocks.len() < 2 {
        return None;
    }
    let n = blocks.len() as f64;
    let total_mean = gaps.iter().take(blocks.len() * k).sum::<f64>() / (blocks.len() * k) as f64;
    if total_mean == 0.0 {
        return Some(0.0);
    }
    let block_mean = blocks.iter().sum::<f64>() / n;
    let var = blocks.iter().map(|b| (b - block_mean) * (b - block_mean)).sum::<f64>() / (n - 1.0);
    Some(var / (k as f64 * total_mean * total_mean))
}

/// Lag-`k` autocorrelation of the gap sequence. Returns `None` with fewer
/// than `k + 2` gaps or zero variance.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn autocorrelation(gaps: &[f64], k: usize) -> Option<f64> {
    assert!(k > 0, "lag must be positive");
    if gaps.len() < k + 2 {
        return None;
    }
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return None;
    }
    let cov =
        gaps.windows(k + 1).map(|w| (w[0] - mean) * (w[k] - mean)).sum::<f64>() / (n - k as f64);
    Some(cov / var)
}

/// Summary of the burstiness of a gap sample.
#[derive(Clone, Copy, Debug)]
pub struct Burstiness {
    /// Squared coefficient of variation.
    pub cv2: f64,
    /// IDI at lag 8 (NaN when the sample is too short).
    pub idi8: f64,
    /// Lag-1 autocorrelation (NaN when the sample is too short).
    pub rho1: f64,
}

/// Single-pass accumulator for the [`Burstiness`] summary: push the gap
/// sequence in order, read the summary off O(1) state at the end.
///
/// This is the *only* burstiness implementation — [`burstiness`] feeds it
/// too — so the batch and streaming characterization paths produce
/// bit-identical figures whenever they push the same sequence. Within
/// rounding, the figures agree with the two-pass reference functions
/// [`cv2`], [`idi`] and [`autocorrelation`]; the accumulator trades their
/// second pass for Welford/raw-moment updates, which reassociate the
/// floating-point sums.
#[derive(Clone, Copy, Debug, Default)]
pub struct BurstAccum {
    n: u64,
    /// Welford state for the gap mean/variance (CV²).
    mean: f64,
    m2: f64,
    /// Raw sums for the lag-1 autocovariance: Σg, Σg², Σ gᵢgᵢ₊₁, plus the
    /// first/last/previous gaps to correct the edge terms.
    sum: f64,
    sum_sq: f64,
    sum_lag: f64,
    first: f64,
    prev: f64,
    /// IDI(8) state: the in-progress block sum and Welford over completed
    /// block sums, plus the gap total of the completed prefix.
    block: f64,
    in_block: u32,
    blocks: u64,
    block_mean: f64,
    block_m2: f64,
    used_sum: f64,
}

/// Gaps per IDI block — the lag the summary reports IDI at.
const IDI_LAG: u32 = 8;

impl BurstAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gaps pushed so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no gap has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Pushes the next gap of the sequence.
    pub fn push(&mut self, gap: f64) {
        if self.n == 0 {
            self.first = gap;
        } else {
            self.sum_lag += self.prev * gap;
        }
        self.n += 1;
        // Welford for the marginal mean/variance.
        let delta = gap - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (gap - self.mean);
        self.sum += gap;
        self.sum_sq += gap * gap;
        self.prev = gap;
        // IDI(8): complete a block every IDI_LAG gaps.
        self.block += gap;
        self.in_block += 1;
        if self.in_block == IDI_LAG {
            self.blocks += 1;
            let d = self.block - self.block_mean;
            self.block_mean += d / self.blocks as f64;
            self.block_m2 += d * (self.block - self.block_mean);
            self.used_sum += self.block;
            self.block = 0.0;
            self.in_block = 0;
        }
    }

    /// The burstiness summary of everything pushed so far. Follows the
    /// same degenerate-input conventions as the reference functions:
    /// CV² is 0 for < 2 gaps or a zero mean, IDI(8) and ρ₁ are NaN when
    /// the sample is too short (or the variance is zero, for ρ₁).
    pub fn finish(&self) -> Burstiness {
        let n = self.n as f64;
        let cv2 = if self.n < 2 || self.mean == 0.0 {
            0.0
        } else {
            (self.m2 / (n - 1.0)) / (self.mean * self.mean)
        };
        let idi8 = if self.blocks < 2 {
            f64::NAN
        } else {
            let used = (self.blocks * IDI_LAG as u64) as f64;
            let total_mean = self.used_sum / used;
            if total_mean == 0.0 {
                0.0
            } else {
                let var = self.block_m2 / (self.blocks - 1) as f64;
                var / (IDI_LAG as f64 * total_mean * total_mean)
            }
        };
        let rho1 = if self.n < 3 {
            f64::NAN
        } else {
            let mean = self.sum / n;
            let var = (self.sum_sq - n * mean * mean) / n;
            if var <= 0.0 {
                f64::NAN
            } else {
                // Σ(gᵢ−m)(gᵢ₊₁−m) expanded over raw sums: the mean terms
                // drop the first gap on one side and the last on the other.
                let cov = (self.sum_lag - mean * (2.0 * self.sum - self.first - self.prev)
                    + (n - 1.0) * mean * mean)
                    / (n - 1.0);
                cov / var
            }
        };
        Burstiness { cv2, idi8, rho1 }
    }
}

/// Computes the standard burstiness summary — a [`BurstAccum`] fed the
/// slice in order, so a streaming consumer pushing the same sequence gets
/// bit-identical figures.
pub fn burstiness(gaps: &[f64]) -> Burstiness {
    let mut acc = BurstAccum::new();
    for &g in gaps {
        acc.push(g);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;
    use crate::Dist;

    fn exp_gaps(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = Dist::exponential(0.1);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn poisson_has_unit_cv2_and_flat_idi() {
        let gaps = exp_gaps(20_000, 1);
        let c = cv2(&gaps);
        assert!((c - 1.0).abs() < 0.1, "cv2 = {c}");
        let i1 = idi(&gaps, 1).unwrap();
        let i16 = idi(&gaps, 16).unwrap();
        assert!((i1 - 1.0).abs() < 0.12, "idi(1) = {i1}");
        assert!((i16 - 1.0).abs() < 0.3, "idi(16) = {i16}");
        let rho = autocorrelation(&gaps, 1).unwrap();
        assert!(rho.abs() < 0.05, "rho1 = {rho}");
    }

    #[test]
    fn deterministic_process_has_zero_cv2() {
        let gaps = vec![5.0; 100];
        assert_eq!(cv2(&gaps), 0.0);
        assert_eq!(idi(&gaps, 4).unwrap(), 0.0);
    }

    #[test]
    fn correlated_process_grows_idi() {
        // Regime persistence: each random rate holds for 24 consecutive
        // gaps — positive correlation that IDI exposes and a marginal fit
        // cannot.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut gaps = Vec::new();
        for _ in 0..200 {
            let regime = Dist::exponential(0.1).sample(&mut rng).max(0.1);
            gaps.extend(std::iter::repeat_n(regime, 24));
        }
        let i1 = idi(&gaps, 1).unwrap();
        let i16 = idi(&gaps, 16).unwrap();
        assert!(i16 > 3.0 * i1, "idi should grow with lag: {i1} -> {i16}");
        let rho = autocorrelation(&gaps, 1).unwrap();
        assert!(rho > 0.8, "rho1 = {rho}");
    }

    #[test]
    fn alternating_gaps_have_negative_rho1() {
        let gaps: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { 9.0 }).collect();
        let rho = autocorrelation(&gaps, 1).unwrap();
        assert!(rho < -0.9, "rho1 = {rho}");
        // And lag-2 is strongly positive.
        let rho2 = autocorrelation(&gaps, 2).unwrap();
        assert!(rho2 > 0.9, "rho2 = {rho2}");
    }

    #[test]
    fn short_samples_degrade_gracefully() {
        assert!(idi(&[1.0, 2.0], 8).is_none());
        assert!(autocorrelation(&[1.0, 2.0], 3).is_none());
        let b = burstiness(&[1.0]);
        assert_eq!(b.cv2, 0.0);
        assert!(b.idi8.is_nan());
    }
}
