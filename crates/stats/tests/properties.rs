//! Property-based tests for the statistics toolkit.

use commchar_stats::fit::{fit_best, fit_family, FitContext};
use commchar_stats::gof::{ks_statistic, r_squared_cdf};
use commchar_stats::linreg::fit_line;
use commchar_stats::merge::GroupedSample;
use commchar_stats::spatial::{classify, normalize, sample_destination, SpatialModel};
use commchar_stats::{Dist, Ecdf, Family, Histogram};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (0.001f64..2.0).prop_map(Dist::exponential),
        (0.05f64..0.95, 0.01f64..2.0, 0.01f64..2.0).prop_map(|(p, a, b)| Dist::hyper_exp2(p, a, b)),
        (1u32..8, 0.01f64..2.0).prop_map(|(k, r)| Dist::erlang(k, r)),
        (0.3f64..10.0, 0.01f64..2.0).prop_map(|(a, r)| Dist::gamma(a, r)),
        (0.5f64..4.0, 1.0f64..100.0).prop_map(|(s, c)| Dist::weibull(s, c)),
        (0.5f64..20.0, 2.5f64..8.0).prop_map(|(xm, a)| Dist::pareto(xm, a)),
        (-1.0f64..4.0, 0.1f64..1.5).prop_map(|(m, s)| Dist::lognormal(m, s)),
        (-50.0f64..50.0, 0.1f64..20.0).prop_map(|(m, s)| Dist::normal(m, s)),
        (-10.0f64..10.0, 0.1f64..100.0).prop_map(|(a, w)| Dist::uniform(a, a + w)),
    ]
}

proptest! {
    /// CDFs are monotone nondecreasing and bounded in [0, 1].
    #[test]
    fn cdf_is_monotone(d in arb_dist(), xs in prop::collection::vec(-200.0f64..500.0, 2..50)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0f64;
        for &x in &xs {
            let c = d.cdf(x);
            prop_assert!((-1e-12..=1.0 + 1e-9).contains(&c), "{d}: cdf({x}) = {c}");
            prop_assert!(c >= prev - 1e-9, "{d}: cdf not monotone at {x}");
            prev = c;
        }
    }

    /// Sampling means converge to the analytic mean (law of large numbers
    /// with a generous tolerance).
    #[test]
    fn sample_mean_converges(d in arb_dist(), seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let tol = 5.0 * (d.variance() / n as f64).sqrt() + 0.02 * d.mean().abs().max(1.0);
        prop_assert!((mean - d.mean()).abs() < tol, "{d}: {mean} vs {}", d.mean());
    }

    /// params/with_params round-trips preserve the distribution.
    #[test]
    fn params_roundtrip(d in arb_dist()) {
        let d2 = d.with_params(&d.params()).unwrap();
        prop_assert_eq!(d, d2);
    }

    /// KS between a distribution and its own large sample is small, and
    /// R² against its own sample is near 1.
    #[test]
    fn gof_recognizes_the_truth(d in arb_dist(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..3_000).map(|_| d.sample(&mut rng)).collect();
        let e = Ecdf::new(samples);
        prop_assert!(ks_statistic(&e, &d) < 0.05, "{d}");
        prop_assert!(r_squared_cdf(&e, &d) > 0.97, "{d}");
    }

    /// `fit_best` always returns a model whose KS is no worse than the
    /// plain exponential fit (model selection can only improve).
    #[test]
    fn fit_best_at_least_as_good_as_exponential(d in arb_dist(), seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..1_500).map(|_| d.sample(&mut rng).abs() + 1e-9).collect();
        let best = fit_best(&samples).unwrap();
        if let Some(exp) = fit_family(&samples, Family::Exponential) {
            prop_assert!(best.ks <= exp.ks + 0.02, "best {} ({}) vs exp {}", best.dist, best.ks, exp.ks);
        }
    }

    /// Histograms conserve mass and integrate to one.
    #[test]
    fn histogram_mass(xs in prop::collection::vec(-100.0f64..100.0, 1..400), bins in 1usize..40) {
        let h = Histogram::from_samples(&xs, bins);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        prop_assert!((integral - 1.0).abs() < 1e-9);
    }

    /// Spatial models predict probability vectors: nonnegative, zero at
    /// the source, summing to one.
    #[test]
    fn spatial_predictions_are_distributions(
        n in 3usize..20,
        src in 0usize..20,
        fav in 0usize..20,
        p_fav in 0.01f64..0.99,
        alpha in 0.0f64..5.0,
    ) {
        let src = src % n;
        let mut fav = fav % n;
        if fav == src {
            fav = (fav + 1) % n;
        }
        let d = |a: usize, b: usize| (a as f64 - b as f64).abs();
        for m in [
            SpatialModel::Uniform,
            SpatialModel::BimodalUniform { favorite: fav, p_fav },
            SpatialModel::LocalityDecay { alpha },
        ] {
            let p = m.predict(src, n, &d);
            prop_assert_eq!(p.len(), n);
            prop_assert_eq!(p[src], 0.0);
            prop_assert!(p.iter().all(|&x| x >= 0.0));
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{m}");
        }
    }

    /// Classification of noiseless generated spatial data recovers a model
    /// with near-zero SSE.
    #[test]
    fn classify_fits_generated_models(
        n in 4usize..16,
        src in 0usize..16,
        which in 0usize..3,
        p_fav in 0.3f64..0.9,
        alpha in 0.3f64..3.0,
    ) {
        let src = src % n;
        let d = |a: usize, b: usize| (a as f64 - b as f64).abs();
        let truth = match which {
            0 => SpatialModel::Uniform,
            1 => SpatialModel::BimodalUniform { favorite: (src + 1) % n, p_fav },
            _ => SpatialModel::LocalityDecay { alpha },
        };
        let probs = truth.predict(src, n, &d);
        let fit = classify(&probs, src, &d);
        prop_assert!(fit.sse < 1e-3, "truth {truth}, got {} (sse {})", fit.model, fit.sse);
    }

    /// normalize() produces a probability vector excluding the source.
    #[test]
    fn normalize_properties(counts in prop::collection::vec(0u64..100, 3..20), src in 0usize..20) {
        let src = src % counts.len();
        if let Some(p) = normalize(&counts, src) {
            prop_assert_eq!(p[src], 0.0);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        } else {
            let total: u64 = counts.iter().enumerate().filter(|&(j, _)| j != src).map(|(_, &c)| c).sum();
            prop_assert_eq!(total, 0);
        }
    }

    /// Destination sampling matches the vector's support.
    #[test]
    fn sampling_stays_on_support(raw in prop::collection::vec(0.0f64..1.0, 3..12), seed in 0u64..100) {
        let total: f64 = raw.iter().sum();
        prop_assume!(total > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let j = sample_destination(&raw, &mut rng);
            prop_assert!(raw[j] > 0.0, "sampled zero-probability destination {j}");
        }
    }

    /// Linear regression recovers exact lines.
    #[test]
    fn linreg_exact_on_lines(a in -10.0f64..10.0, b in -100.0f64..100.0, n in 3usize..50) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, a * i as f64 + b)).collect();
        let fit = fit_line(&pts).unwrap();
        prop_assert!((fit.slope - a).abs() < 1e-7);
        prop_assert!((fit.intercept - b).abs() < 1e-6);
        prop_assert!(fit.r2 > 1.0 - 1e-9 || a == 0.0);
    }

    /// Grouped-sample merge is an exact multiset union: any chunking of a
    /// sample and any merge order (left fold, right fold, pairwise tree)
    /// reproduce the grouped whole exactly. Tick-quantized values force
    /// cross-chunk duplicate runs, the case where counts must add.
    #[test]
    fn grouped_merge_is_order_and_grouping_insensitive(
        ticks in prop::collection::vec(0u32..40, 1..200),
        cut in prop::collection::vec(1usize..20, 1..8),
    ) {
        let samples: Vec<f64> = ticks.iter().map(|&t| t as f64).collect();
        let whole = GroupedSample::from_samples(&samples);
        // Split into chunks with proptest-chosen irregular sizes.
        let mut chunks: Vec<GroupedSample> = Vec::new();
        let mut rest: &[f64] = &samples;
        for &c in &cut {
            if rest.is_empty() { break; }
            let c = c.min(rest.len());
            chunks.push(GroupedSample::from_samples(&rest[..c]));
            rest = &rest[c..];
        }
        if !rest.is_empty() {
            chunks.push(GroupedSample::from_samples(rest));
        }
        // Left fold.
        let mut left = GroupedSample::new();
        for c in &chunks {
            left.merge(c);
        }
        prop_assert_eq!(&left, &whole);
        // Right fold (reverse order — commutativity up to grouping).
        let mut right = GroupedSample::new();
        for c in chunks.iter().rev() {
            right.merge(c);
        }
        prop_assert_eq!(&right, &whole);
        // Pairwise tree (associativity).
        let mut level = chunks;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let mut m = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                next.push(m);
            }
            level = next;
        }
        prop_assert_eq!(&level[0], &whole);
    }

    /// Streamed-equals-batch at the fit layer: a `FitContext` built from
    /// merged per-block grouped samples produces *exactly* the same ranked
    /// fits as one built from the whole sample, for any block size and any
    /// of the nine families.
    #[test]
    fn streamed_fit_context_equals_batch(
        d in arb_dist(),
        seed in 0u64..200,
        block in 1usize..97,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Tick-quantize like a trace: nonnegative integer gaps.
        let samples: Vec<f64> =
            (0..600).map(|_| d.sample(&mut rng).abs().round().min(1e6)).collect();
        let batch = FitContext::new(&samples);
        let mut merged = GroupedSample::new();
        for chunk in samples.chunks(block) {
            merged.merge(&GroupedSample::from_samples(chunk));
        }
        prop_assert!(merged.is_exact());
        let streamed = FitContext::from_grouped(&merged);
        prop_assert_eq!(streamed.len(), batch.len());
        prop_assert_eq!(streamed.unique_len(), batch.unique_len());
        let (sf, bf) = (streamed.fit_all(), batch.fit_all());
        prop_assert_eq!(sf.len(), bf.len());
        for (s, b) in sf.iter().zip(&bf) {
            prop_assert_eq!(&s.dist, &b.dist);
            prop_assert!(s.ks == b.ks || (s.ks.is_nan() && b.ks.is_nan()));
            prop_assert!(s.r2 == b.r2 || (s.r2.is_nan() && b.r2.is_nan()));
            prop_assert!(s.sse == b.sse || (s.sse.is_nan() && b.sse.is_nan()));
        }
    }
}
