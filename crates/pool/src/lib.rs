//! # commchar-pool
//!
//! The one work-claiming fan-out primitive used everywhere the workspace
//! parallelizes independent index-addressed work: suite cells
//! (`commchar-core::suite`), packed-trace block decode
//! (`commchar-tracestore`), and per-source distribution fitting
//! (`commchar-core::characterize`).
//!
//! The scheme is deliberately tiny — scoped threads, no dependencies, no
//! unsafe:
//!
//! - workers claim indices `0..count` from a shared atomic cursor
//!   (whichever worker is free takes the next item — cheap work stealing
//!   that tolerates wildly uneven item costs);
//! - each result is written to its input-indexed slot, so the returned
//!   `Vec` is in input order **regardless of worker count or completion
//!   order** — callers get determinism for free;
//! - `jobs <= 1` (or a single item) short-circuits to a plain sequential
//!   loop on the calling thread, so the sequential path is exactly the
//!   parallel path minus threads.
//!
//! # Example
//!
//! ```
//! let squares = commchar_pool::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Resolves a `--jobs` knob: `0` means one worker per available hardware
/// thread, anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Resolves a `--jobs` knob against an item count: the result never
/// exceeds `items` (no point spawning workers with nothing to claim) and
/// is always at least 1 so it can be used directly as a divisor or
/// worker count.
pub fn resolve_jobs_for(jobs: usize, items: usize) -> usize {
    resolve_jobs(jobs).min(items).max(1)
}

/// Runs `f(0), f(1), …, f(count - 1)` across at most `jobs` scoped worker
/// threads (`0` = one per hardware thread) and returns the results in
/// index order.
///
/// Work distribution is a shared atomic cursor; result ordering never
/// depends on the worker count, so output built from the returned `Vec`
/// is byte-identical for any `jobs` value as long as `f` itself is
/// deterministic per index.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` (a panicking item fails
/// the whole fan-out rather than silently dropping a slot).
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_jobs(jobs).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = f(i);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload surfaces verbatim
        // (the scope's implicit join would replace it with its own
        // generic message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("scope joined, so every slot is filled")
        })
        .collect()
}

/// A dispatched unit of work: boxed so a [`Team`]'s long-lived workers
/// can run arbitrary closures without borrowing from the caller's stack.
pub type Job = Box<dyn FnOnce() + Send>;

struct TeamState {
    /// Monotonic dispatch counter; bumping it wakes workers.
    epoch: u64,
    /// One slot per worker, filled at dispatch, taken by the worker.
    jobs: Vec<Option<Job>>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// First panic payload captured this epoch, rethrown by [`Team::run`].
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct TeamShared {
    state: Mutex<TeamState>,
    /// Signaled when a new epoch's jobs are posted (or on shutdown).
    work_ready: Condvar,
    /// Signaled by the last worker to finish an epoch.
    work_done: Condvar,
}

/// A long-lived worker team with barrier rendezvous, for callers that
/// dispatch the *same* set of workers many times in a row (e.g. one
/// simulation shard per worker, re-dispatched per drain) and cannot
/// afford a thread spawn per round.
///
/// Unlike [`run_indexed`] — which is fork-join and claims indices from a
/// cursor — a `Team` assigns exactly one [`Job`] per worker per
/// [`run`](Team::run) call and blocks the caller until every worker has
/// finished. Jobs are `'static` closures; share state with the caller
/// through `Arc`s captured at dispatch time.
///
/// A panic inside any job is caught on the worker (keeping the
/// rendezvous alive so sibling workers and the team itself stay usable)
/// and rethrown verbatim from `run` on the calling thread.
pub struct Team {
    shared: Arc<TeamShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Team {
    /// Spawns a team of exactly `workers.max(1)` threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(TeamShared {
            state: Mutex::new(TeamState {
                epoch: 0,
                jobs: (0..workers).map(|_| None).collect(),
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(i, &shared))
            })
            .collect();
        Team { shared, handles }
    }

    /// Spawns a team sized by [`resolve_jobs_for`]: the `jobs` knob
    /// resolved against hardware parallelism, then capped at `items` so
    /// no worker can ever sit idle by construction.
    pub fn for_items(jobs: usize, items: usize) -> Self {
        Self::new(resolve_jobs_for(jobs, items))
    }

    /// Number of worker threads in the team.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn worker(index: usize, shared: &TeamShared) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                while !state.shutdown && state.epoch == seen {
                    state = shared.work_ready.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                if state.shutdown {
                    return;
                }
                seen = state.epoch;
                state.jobs[index].take()
            };
            let panicked =
                job.and_then(|job| std::panic::catch_unwind(AssertUnwindSafe(job)).err());
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(payload) = panicked {
                state.panic.get_or_insert(payload);
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                shared.work_done.notify_all();
            }
        }
    }

    /// Dispatches one job per worker and blocks until all have finished.
    ///
    /// Fewer jobs than workers is allowed (the surplus workers just
    /// rendezvous); more jobs than workers is a caller bug and panics.
    ///
    /// # Panics
    ///
    /// Rethrows the first panic captured from any job, after the
    /// barrier — the team itself remains usable afterwards.
    pub fn run(&self, jobs: Vec<Job>) {
        let workers = self.workers();
        assert!(
            jobs.len() <= workers,
            "dispatched {} jobs to a team of {} workers",
            jobs.len(),
            workers
        );
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(state.remaining, 0, "run() while an epoch is in flight");
        let mut it = jobs.into_iter();
        for slot in state.jobs.iter_mut() {
            *slot = it.next();
        }
        state.epoch += 1;
        state.remaining = workers;
        self.shared.work_ready.notify_all();
        while state.remaining > 0 {
            state = self.shared.work_done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team").field("workers", &self.workers()).finish()
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        // Uneven per-item cost: later items finish first on any pool, but
        // the output order must still be the input order.
        let out = run_indexed(4, 32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_indexed(1, 100, |i| i as u64 * i as u64 % 97);
        let par = run_indexed(8, 100, |i| i as u64 * i as u64 % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_count_is_empty() {
        let out: Vec<u32> = run_indexed(4, 0, |_| unreachable!("no items to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_resolves_to_hardware_threads() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let out = run_indexed(0, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = run_indexed(2, 8, |i| {
            assert!(i != 5, "boom");
            i
        });
    }

    #[test]
    fn resolve_jobs_for_caps_at_item_count() {
        // `0` resolves to hardware threads but never exceeds the items.
        assert_eq!(resolve_jobs_for(0, 2), resolve_jobs(0).min(2));
        assert_eq!(resolve_jobs_for(16, 3), 3);
        assert_eq!(resolve_jobs_for(2, 100), 2);
        // Degenerate inputs still give a usable worker count.
        assert_eq!(resolve_jobs_for(0, 0), 1);
        assert_eq!(resolve_jobs_for(4, 1), 1);
    }

    #[test]
    fn team_caps_workers_at_item_count() {
        let team = Team::for_items(16, 3);
        assert_eq!(team.workers(), 3);
        let team = Team::for_items(16, 1);
        assert_eq!(team.workers(), 1);
        let team = Team::for_items(0, 2);
        assert!(team.workers() <= 2);
    }

    #[test]
    fn team_runs_jobs_across_epochs() {
        use std::sync::atomic::AtomicU64;
        let team = Team::new(3);
        let total = Arc::new(AtomicU64::new(0));
        for round in 0..5u64 {
            let jobs: Vec<Job> = (0..3u64)
                .map(|i| {
                    let total = Arc::clone(&total);
                    Box::new(move || {
                        total.fetch_add(round * 10 + i, Ordering::Relaxed);
                    }) as Job
                })
                .collect();
            team.run(jobs);
        }
        // sum over rounds of (30*round + 3) = 30*10 + 15
        assert_eq!(total.load(Ordering::Relaxed), 315);
    }

    #[test]
    fn team_allows_fewer_jobs_than_workers() {
        let team = Team::new(4);
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        team.run(vec![Box::new(move || {
            h.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn team_survives_a_panicking_job() {
        let team = Team::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            team.run(vec![Box::new(|| panic!("job blew up"))]);
        }));
        assert!(caught.is_err());
        // The team is still usable after the rethrow.
        let ok = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&ok);
        team.run(vec![Box::new(move || {
            o.store(7, Ordering::Relaxed);
        })]);
        assert_eq!(ok.load(Ordering::Relaxed), 7);
    }
}
