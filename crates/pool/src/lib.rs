//! # commchar-pool
//!
//! The one work-claiming fan-out primitive used everywhere the workspace
//! parallelizes independent index-addressed work: suite cells
//! (`commchar-core::suite`), packed-trace block decode
//! (`commchar-tracestore`), and per-source distribution fitting
//! (`commchar-core::characterize`).
//!
//! The scheme is deliberately tiny — scoped threads, no dependencies, no
//! unsafe:
//!
//! - workers claim indices `0..count` from a shared atomic cursor
//!   (whichever worker is free takes the next item — cheap work stealing
//!   that tolerates wildly uneven item costs);
//! - each result is written to its input-indexed slot, so the returned
//!   `Vec` is in input order **regardless of worker count or completion
//!   order** — callers get determinism for free;
//! - `jobs <= 1` (or a single item) short-circuits to a plain sequential
//!   loop on the calling thread, so the sequential path is exactly the
//!   parallel path minus threads.
//!
//! # Example
//!
//! ```
//! let squares = commchar_pool::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs` knob: `0` means one worker per available hardware
/// thread, anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Runs `f(0), f(1), …, f(count - 1)` across at most `jobs` scoped worker
/// threads (`0` = one per hardware thread) and returns the results in
/// index order.
///
/// Work distribution is a shared atomic cursor; result ordering never
/// depends on the worker count, so output built from the returned `Vec`
/// is byte-identical for any `jobs` value as long as `f` itself is
/// deterministic per index.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` (a panicking item fails
/// the whole fan-out rather than silently dropping a slot).
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_jobs(jobs).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = f(i);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload surfaces verbatim
        // (the scope's implicit join would replace it with its own
        // generic message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("scope joined, so every slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        // Uneven per-item cost: later items finish first on any pool, but
        // the output order must still be the input order.
        let out = run_indexed(4, 32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_indexed(1, 100, |i| i as u64 * i as u64 % 97);
        let par = run_indexed(8, 100, |i| i as u64 * i as u64 % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_count_is_empty() {
        let out: Vec<u32> = run_indexed(4, 0, |_| unreachable!("no items to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_resolves_to_hardware_threads() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let out = run_indexed(0, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = run_indexed(2, 8, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
