//! Shard-count invariance of the conservative-window engine: for any
//! `sim_jobs`, a run must be *event-identical* to the serial (1-shard)
//! run — same packed trace bytes, same packed netlog bytes, same
//! statistics — because the windowed loop with canonical `(time, key)`
//! ordering IS the engine at every shard count.

use commchar_mesh::EngineKind;
use commchar_spasm::{run, try_run_with, Ctx, MachineConfig, Region, SpasmError, SpasmRun};
use proptest::prelude::*;

/// A seeded workload mixing reads, writes, locks, barriers and compute —
/// enough protocol variety (invalidations, recalls, upgrades, victim
/// writebacks with the small cache) to exercise every event path.
fn seeded_body(ctx: &mut Ctx, r: Region, seed: u64, ops: usize, slots: usize) {
    let p = ctx.proc_id();
    let mut state = seed.wrapping_add(p as u64).wrapping_mul(6364136223846793005) | 1;
    for _ in 0..ops {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let slot = (state >> 33) as usize % slots;
        match (state >> 61) % 4 {
            0 => {
                let _ = ctx.read(r, slot);
            }
            1 => ctx.write(r, slot, state),
            2 => {
                ctx.lock((slot % 4) as u32);
                let v = ctx.read(r, slot);
                ctx.write(r, slot, v ^ state);
                ctx.unlock((slot % 4) as u32);
            }
            _ => {
                let _ = ctx.read(r, slot);
                ctx.write(r, (slot + 1) % slots, state);
            }
        }
        ctx.compute(state % 13);
    }
    ctx.barrier(7);
    let _ = ctx.read(r, p % slots);
}

fn seeded_run(cfg: MachineConfig, seed: u64, ops: usize) -> SpasmRun {
    run(
        cfg,
        move |m| (m.alloc(96), seed),
        move |ctx, &(r, seed)| seeded_body(ctx, r, seed, ops, 96),
    )
}

/// Every observable of two runs, compared byte-for-byte.
fn assert_identical(a: &SpasmRun, b: &SpasmRun, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.packed_trace(), b.packed_trace(), "{what}: packed trace bytes");
    assert_eq!(a.packed_netlog(), b.packed_netlog(), "{what}: packed netlog bytes");
    assert_eq!(a.miss_ratio(), b.miss_ratio(), "{what}: miss ratio");
    assert_eq!(
        (a.reads, a.writes, a.hits, a.misses, a.barriers, a.locks),
        (b.reads, b.writes, b.hits, b.misses, b.barriers, b.locks),
        "{what}: counters"
    );
}

#[test]
fn shard_counts_are_event_identical_recurrence() {
    for seed in [1u64, 7, 42] {
        let serial = seeded_run(MachineConfig::new(8).with_cache_lines(16), seed, 48);
        for jobs in [2usize, 3, 4, 8] {
            let sharded = seeded_run(
                MachineConfig::new(8).with_cache_lines(16).with_sim_jobs(jobs),
                seed,
                48,
            );
            assert_identical(&serial, &sharded, &format!("seed {seed}, {jobs} shards"));
        }
    }
}

#[test]
fn shard_counts_are_event_identical_flit() {
    // The cycle-accurate flit engine behind the same windowed loop: the
    // lookahead comes from its pinned zero-load model.
    let cfg = |jobs| MachineConfig::new(4).with_engine(EngineKind::flit()).with_sim_jobs(jobs);
    let serial = seeded_run(cfg(1), 3, 24);
    for jobs in [2usize, 4] {
        let sharded = seeded_run(cfg(jobs), 3, 24);
        assert_identical(&serial, &sharded, &format!("flit, {jobs} shards"));
    }
}

#[test]
fn shard_counts_agree_under_mesi() {
    let cfg = |jobs| {
        MachineConfig::new(6)
            .with_protocol(commchar_spasm::Protocol::Mesi)
            .with_cache_lines(8)
            .with_sim_jobs(jobs)
    };
    let serial = seeded_run(cfg(1), 11, 40);
    for jobs in [2usize, 3, 6] {
        assert_identical(&serial, &seeded_run(cfg(jobs), 11, 40), &format!("mesi {jobs}"));
    }
}

#[test]
fn uneven_partitions_are_identical() {
    // 5 processors over 2..4 shards: every partition is uneven.
    let serial = seeded_run(MachineConfig::new(5), 19, 32);
    for jobs in 2usize..=4 {
        assert_identical(
            &serial,
            &seeded_run(MachineConfig::new(5).with_sim_jobs(jobs), 19, 32),
            &format!("5 procs, {jobs} shards"),
        );
    }
}

#[test]
fn more_shards_than_hardware_threads_is_fine() {
    // Shard count is a partitioning choice, not a host-core claim: 8
    // workers on any host must still drain and agree with serial.
    let serial = seeded_run(MachineConfig::new(8), 23, 20);
    let over = seeded_run(MachineConfig::new(8).with_sim_jobs(8), 23, 20);
    assert_identical(&serial, &over, "8 shards");
}

#[test]
fn sim_jobs_zero_resolves_to_host_parallelism() {
    let serial = seeded_run(MachineConfig::new(4), 29, 16);
    let auto = seeded_run(MachineConfig::new(4).with_sim_jobs(0), 29, 16);
    assert_identical(&serial, &auto, "auto shards");
}

#[test]
fn kilo_processor_machine_characterizes_sharded() {
    // The headline scale: 1024 processors, sharded. A nearest-neighbour
    // exchange plus a barrier — small per-proc work, big machine.
    let go = |jobs| {
        run(
            MachineConfig::new(1024).with_sim_jobs(jobs),
            |m| m.alloc(4096),
            |ctx, &r| {
                let p = ctx.proc_id();
                ctx.write(r, p * 4, p as u64 + 1);
                ctx.barrier(0);
                let right = (p + 1) % ctx.nprocs();
                assert_eq!(ctx.read(r, right * 4), right as u64 + 1);
            },
        )
    };
    let sharded = go(4);
    assert_eq!(sharded.nprocs, 1024);
    assert_eq!(sharded.barriers, 1);
    assert_eq!(sharded.writes, 1024);
    assert!(!sharded.trace.is_empty());
    sharded.trace.check().unwrap();
    let serial = go(1);
    assert_identical(&serial, &sharded, "1024 procs");
}

#[test]
fn application_deadlock_is_a_typed_wedge() {
    // p1 waits on a barrier p0 never reaches (p0 exits immediately):
    // the drained machine reports a typed Wedged error instead of
    // blocking forever.
    let err = try_run_with(
        MachineConfig::new(2).with_sim_jobs(2),
        |m| m.alloc(1),
        |ctx: &mut Ctx, _r: &Region| {
            if ctx.proc_id() == 1 {
                ctx.barrier(0);
            }
        },
        commchar_mesh::OnlineWormhole::new(MachineConfig::new(2).mesh),
    )
    .unwrap_err();
    match err {
        SpasmError::Wedged { report } => {
            assert!(report.contains("application deadlock"), "got: {report}");
            assert!(report.contains("p1"), "got: {report}");
        }
        other => panic!("expected Wedged, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "application deadlock")]
fn run_panics_on_deadlock_like_the_serial_engine() {
    run(
        MachineConfig::new(2),
        |m| m.alloc(1),
        |ctx, _| {
            if ctx.proc_id() == 1 {
                ctx.barrier(0); // p0 exits without arriving: p1 waits forever
            }
        },
    );
}

#[test]
#[should_panic(expected = "non-holder")]
fn protocol_misuse_panics_through_the_sharded_path() {
    run(
        MachineConfig::new(4).with_sim_jobs(4),
        |m| m.alloc(1),
        |ctx, _| {
            if ctx.proc_id() == 0 {
                ctx.lock(2);
                ctx.unlock(2);
            } else if ctx.proc_id() == 3 {
                ctx.compute(5_000);
                ctx.unlock(2);
            }
        },
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random workloads, machine shapes and shard counts, the sharded
    /// run is byte-identical to serial.
    #[test]
    fn sharding_never_changes_results(
        nprocs in 2usize..7,
        jobs in 2usize..5,
        ops in 4usize..32,
        seed in 0u64..500,
    ) {
        let serial = seeded_run(MachineConfig::new(nprocs).with_cache_lines(8), seed, ops);
        let sharded = seeded_run(
            MachineConfig::new(nprocs).with_cache_lines(8).with_sim_jobs(jobs),
            seed,
            ops,
        );
        prop_assert_eq!(serial.exec_cycles, sharded.exec_cycles);
        prop_assert_eq!(serial.packed_trace(), sharded.packed_trace());
        prop_assert_eq!(serial.packed_netlog(), sharded.packed_netlog());
        prop_assert_eq!(serial.misses, sharded.misses);
    }
}
