//! Property-based tests for the execution-driven CC-NUMA simulator:
//! sequential consistency, coherence, and synchronization invariants under
//! randomized workloads.

use commchar_spasm::{run, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lock-protected counters never lose updates, for any (nprocs,
    /// iterations, padding) combination.
    #[test]
    fn lock_counter_is_exact(
        nprocs in 1usize..6,
        iters in 1usize..12,
        stride in 0usize..3,
    ) {
        run(
            MachineConfig::new(nprocs),
            move |m| (m.alloc(8), stride),
            move |ctx, &(r, stride)| {
                for _ in 0..iters {
                    ctx.lock(0);
                    let v = ctx.read(r, stride);
                    ctx.write(r, stride, v + 1);
                    ctx.unlock(0);
                }
                ctx.barrier(0);
                let total = ctx.read(r, stride);
                assert_eq!(total as usize, nprocs * iters);
            },
        );
    }

    /// After a barrier, every processor observes every pre-barrier write
    /// (sequential consistency across the barrier).
    #[test]
    fn barrier_publishes_writes(nprocs in 2usize..6, rounds in 1usize..4) {
        run(
            MachineConfig::new(nprocs),
            |m| m.alloc(64),
            move |ctx, &r| {
                let p = ctx.proc_id();
                for round in 0..rounds as u64 {
                    ctx.write(r, p, round * 1000 + p as u64);
                    ctx.barrier(round as u32);
                    for q in 0..ctx.nprocs() {
                        assert_eq!(ctx.read(r, q), round * 1000 + q as u64);
                    }
                    ctx.barrier(64 + round as u32);
                }
            },
        );
    }

    /// Random access patterns: the final memory image matches a sequential
    /// per-location last-writer analysis when writes are partitioned by
    /// processor (each proc owns disjoint slots).
    #[test]
    fn partitioned_writes_read_back(
        nprocs in 1usize..5,
        per_proc in 1usize..16,
        seed in 0u64..1000,
    ) {
        run(
            MachineConfig::new(nprocs).with_cache_lines(4), // force evictions
            move |m| (m.alloc(nprocs * per_proc), seed),
            move |ctx, &(r, seed)| {
                let p = ctx.proc_id();
                // Deterministic per-proc values.
                for i in 0..per_proc {
                    let v = seed.wrapping_mul(31).wrapping_add((p * per_proc + i) as u64);
                    ctx.write(r, p * per_proc + i, v);
                }
                ctx.barrier(0);
                // Everyone validates everyone's region (through coherence).
                for q in 0..ctx.nprocs() {
                    for i in 0..per_proc {
                        let expect = seed.wrapping_mul(31).wrapping_add((q * per_proc + i) as u64);
                        assert_eq!(ctx.read(r, q * per_proc + i), expect);
                    }
                }
            },
        );
    }

    /// Trace/netlog consistency holds under random mixes of reads, writes
    /// and syncs, and the run is deterministic.
    #[test]
    fn random_mix_invariants(nprocs in 2usize..5, ops in 4usize..40, seed in 0u64..100) {
        let go = move || {
            run(
                MachineConfig::new(nprocs),
                move |m| (m.alloc(128), seed),
                move |ctx, &(r, seed)| {
                    let p = ctx.proc_id();
                    let mut state = seed.wrapping_add(p as u64).wrapping_mul(6364136223846793005) | 1;
                    for _ in 0..ops {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let slot = (state >> 33) as usize % 128;
                        match (state >> 61) % 3 {
                            0 => {
                                let _ = ctx.read(r, slot);
                            }
                            1 => ctx.write(r, slot, state),
                            _ => {
                                ctx.lock((slot % 4) as u32);
                                let v = ctx.read(r, slot);
                                ctx.write(r, slot, v ^ state);
                                ctx.unlock((slot % 4) as u32);
                            }
                        }
                        ctx.compute(state % 17);
                    }
                    ctx.barrier(9);
                },
            )
        };
        let a = go();
        let b = go();
        prop_assert_eq!(a.trace.len(), a.netlog.records().len());
        a.trace.check().unwrap();
        a.netlog.check_invariants(MachineConfig::new(nprocs).mesh.shape).unwrap();
        prop_assert_eq!(a.exec_cycles, b.exec_cycles);
        prop_assert_eq!(a.trace.events(), b.trace.events());
        prop_assert_eq!(a.reads + a.writes, a.hits + a.misses);
    }
}
