//! Conservative-window sharded execution of the spasm machine.
//!
//! The machine (processor state, caches, the directory, and the event
//! calendar) is partitioned into source-contiguous shards, one long-lived
//! [`commchar_pool::Team`] worker per shard. Each worker runs the serial
//! event loop inside a conservative time window `[T, T + L)` whose width
//! `L` is the network engine's minimum delivery latency
//! ([`NetEngine::min_latency`]): an event less than `L` ahead of the
//! window start cannot be affected by a message another shard has not
//! injected yet, so shards advance independently inside the window and
//! rendezvous only at its edge — the same fence/mailbox discipline as the
//! flit simulator's row-band shards (`commchar-mesh`'s `flit::shard`).
//!
//! At each window edge the coordinator (shard 0's worker) drains every
//! shard's outbox of deferred network sends, feeds them to the single
//! network engine in a canonical order, and routes each delivery into the
//! destination shard's `(time, key)`-ordered mailbox. The next window
//! start jumps to the globally earliest pending action, so idle gaps cost
//! one rendezvous instead of many empty windows.
//!
//! # Determinism
//!
//! The serial engine ordered simultaneous events by global insertion
//! order, which is meaningless once scheduling is distributed. Here every
//! action carries a canonical key `(class, site, seq)` — events before
//! processor requests, then by the emitting site and that site's own
//! emission counter — ordered by a [`KeyedCalendar`]. Per-site counter
//! sequences depend only on that site's own action stream (every
//! cross-site interaction travels through the network or the
//! coordinator), so keys are identical for any shard count, and with them
//! the event order, the trace bytes, the `NetLog`, and every statistic.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use commchar_des::{KeyedCalendar, SimTime};
use commchar_mesh::{NetEngine, NetLog, NetMessage, NodeId};
use commchar_trace::{CommEvent, CommTrace, EventKind};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::api::{ProcMsg, ProcRequest, Reply};
use crate::engine::SpasmError;
use crate::protocol::{Cache, DirState, LineState, Protocol};
use crate::MachineConfig;

/// Canonical tie-break key for simultaneous actions: `(class, site, seq)`.
/// Class 0 = protocol event, class 1 = processor request, preserving the
/// serial rule that an event at time `t` runs before a request at `t`.
/// The coordinator emits with the virtual site `nprocs`, ordering its
/// deliveries after same-time site-local events.
pub(crate) type Key = (u8, u32, u64);

const CLASS_EVENT: u8 = 0;
const CLASS_REQUEST: u8 = 1;

/// Everything a coherence transaction needs to travel between sites.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TxnData {
    proc: u32,
    block: u64,
    addr: usize,
    write: bool,
    /// Write value (ignored for reads).
    value: u64,
    /// Requester already held the line Shared (upgrade: control reply).
    upgrade: bool,
}

/// Home-side state of the one in-flight transaction for a block.
#[derive(Debug)]
struct ActiveTxn {
    data: TxnData,
    acks_left: usize,
    /// Owner that was recalled for a read and stays a sharer.
    owner_kept: Option<usize>,
    /// MESI: the reply grants the line exclusively.
    exclusive: bool,
}

/// A protocol event, carrying everything its handler needs so no state is
/// shared across shards. Each variant is processed at exactly one `site`.
#[derive(Debug)]
pub(crate) enum Event {
    /// A coherence request (re)arrives at the home directory.
    HomeReq { data: TxnData },
    /// Recall (flush/downgrade) arrives at the current owner.
    Recall { block: u64, write: bool, owner: u32 },
    /// The recalled line's writeback arrives back at home.
    WbHome { block: u64 },
    /// An invalidation arrives at a sharer.
    Inval { block: u64, sharer: u32 },
    /// A sharer's invalidation ack arrives at home.
    AckHome { block: u64 },
    /// The home's reply is ready to leave for the requester (after the
    /// directory/memory latency): inject it into the network now.
    ReplySend { block: u64, bytes: u32, kind: EventKind },
    /// The reply reaches the requester: install the line and resume.
    ReplyArrive { data: TxnData, exclusive: bool },
    /// The reply has arrived remotely; release the per-block serialization
    /// at home and admit the next deferred request (home-side bookkeeping
    /// at the reply's delivery time — no network message, exactly as the
    /// serial engine released the block during `reply_arrive`).
    UnblockHome { block: u64 },
    /// A victim writeback arrives at the victim block's home.
    VictimWb { block: u64, proc: u32 },
    /// A processor's arrival notification reaches the barrier's home.
    BarArrive { id: u32 },
    /// The barrier release reaches a participant.
    BarRelease { proc: u32 },
    /// A lock request reaches the lock's home.
    LockReq { id: u32, proc: u32 },
    /// The lock grant reaches the new holder.
    LockGrant { proc: u32 },
    /// A lock release reaches the lock's home.
    LockRel { id: u32, proc: u32 },
}

impl Event {
    /// The site (processor/home node) whose shard processes this event.
    fn site(&self, nprocs: usize) -> usize {
        let home = |block: &u64| (*block % nprocs as u64) as usize;
        match self {
            Event::HomeReq { data } => home(&data.block),
            Event::Recall { owner, .. } => *owner as usize,
            Event::WbHome { block }
            | Event::AckHome { block }
            | Event::ReplySend { block, .. }
            | Event::UnblockHome { block }
            | Event::VictimWb { block, .. } => home(block),
            Event::Inval { sharer, .. } => *sharer as usize,
            Event::ReplyArrive { data, .. } => data.proc as usize,
            Event::BarArrive { id } | Event::LockReq { id, .. } | Event::LockRel { id, .. } => {
                (*id as usize) % nprocs
            }
            Event::BarRelease { proc } | Event::LockGrant { proc } => *proc as usize,
        }
    }
}

/// A network send recorded during a window and injected by the
/// coordinator at the window edge, in canonical `(t, key, idx)` order.
struct DeferredSend {
    t: u64,
    src: u32,
    dst: u32,
    bytes: u32,
    kind: EventKind,
    /// Key of the action that emitted this send.
    key: Key,
    /// Emission index within that action.
    idx: u32,
    /// Event delivered at the destination site at `delivered + extra`.
    cont: Event,
    extra: u64,
    /// For data/upgrade replies: release this block's home serialization
    /// at the delivery time.
    unblock: Option<u64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Running,
    Pending,
    Blocked,
    Done,
}

#[derive(Debug, Default)]
struct LockSt {
    held: Option<usize>,
    waiters: VecDeque<usize>,
}

/// Per-shard statistics, merged into the final [`crate::SpasmRun`].
#[derive(Debug, Default, Clone, Copy)]
struct ShardStats {
    max_time: u64,
    reads: u64,
    writes: u64,
    hits: u64,
    misses: u64,
    barrier_episodes: u64,
    lock_grants: u64,
}

/// A shard's verdict at normal drain.
struct ShardDone {
    stats: ShardStats,
    /// One status line per owned processor.
    report: String,
    all_done: bool,
}

const STOP_RUNNING: u8 = 0;
const STOP_DRAINED: u8 = 1;
const STOP_FAILED: u8 = 2;

/// Cross-shard rendezvous state: published fences, per-shard mailboxes
/// and outboxes, and the coordinator's window/stop broadcasts.
pub(crate) struct Shared {
    /// Current round, published by the coordinator (Release) after
    /// `window_start`/`stop` are written; workers acquire it to enter the
    /// round.
    round: AtomicU64,
    window_start: AtomicU64,
    stop: AtomicU8,
    /// Per-shard fence: the number of rounds this shard has completed
    /// (`round + 1` after finishing round `round`; `u64::MAX` once the
    /// worker exits, so nobody waits on a dead shard).
    fences: Vec<AtomicU64>,
    next_times: Vec<AtomicU64>,
    acted: Vec<AtomicU64>,
    /// Inbound cross-shard deliveries, `(time, key, event)`.
    mail: Vec<Mutex<Vec<(u64, Key, Event)>>>,
    outbox: Vec<Mutex<Vec<DeferredSend>>>,
    /// Set when any worker unwinds; everyone else bails at the next edge.
    abort: AtomicBool,
    failure: Mutex<Option<SpasmError>>,
    verdicts: Vec<Mutex<Option<ShardDone>>>,
    /// The coordinator's run products at normal drain.
    out: Mutex<Option<(CommTrace, NetLog)>>,
}

impl Shared {
    fn new(shards: usize) -> Self {
        Shared {
            round: AtomicU64::new(0),
            window_start: AtomicU64::new(0),
            stop: AtomicU8::new(STOP_RUNNING),
            fences: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            next_times: (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            acted: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            mail: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            outbox: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            verdicts: (0..shards).map(|_| Mutex::new(None)).collect(),
            out: Mutex::new(None),
        }
    }
}

/// Publishes an exit fence even on unwind, so a panicking worker never
/// leaves its neighbors spinning on a fence that will not move.
struct FenceGuard<'a> {
    shared: &'a Shared,
    shard: usize,
}

impl Drop for FenceGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.abort.store(true, Ordering::Relaxed);
        }
        self.shared.fences[self.shard].store(u64::MAX, Ordering::Release);
    }
}

fn spin_wait(mut probe: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !probe() {
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// The coordinator's exclusive state: the single network engine, the
/// trace, and the canonical message/emission counters.
pub(crate) struct Coord<N: NetEngine<Sink = NetLog>> {
    net: N,
    trace: CommTrace,
    msg_seq: u64,
    /// Emission counter for the virtual coordinator site.
    seq: u64,
    lookahead: u64,
}

impl<N: NetEngine<Sink = NetLog>> Coord<N> {
    pub(crate) fn new(net: N, nprocs: usize) -> Self {
        let lookahead = net.min_latency();
        assert!(lookahead >= 1, "network engine lookahead must be positive");
        Coord { net, trace: CommTrace::new(nprocs), msg_seq: 0, seq: 0, lookahead }
    }

    pub(crate) fn lookahead(&self) -> u64 {
        self.lookahead
    }
}

/// Source-contiguous partition of `nprocs` sites into `shards` chunks.
pub(crate) fn partition(nprocs: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = nprocs / shards;
    let rem = nprocs % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let len = base + usize::from(s < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// One shard of the machine: the caches of its own processors plus the
/// directory, lock and barrier state of its own home sites, advanced by a
/// windowed copy of the serial event loop.
pub(crate) struct ShardCore {
    cfg: MachineConfig,
    shard: usize,
    /// Owned sites: `[lo, hi)`.
    lo: usize,
    hi: usize,
    mem: Arc<Vec<AtomicU64>>,
    caches: Vec<Cache>,
    dir: HashMap<u64, DirState>,
    active: HashMap<u64, ActiveTxn>,
    deferred: HashMap<u64, VecDeque<TxnData>>,
    locks: HashMap<u32, LockSt>,
    bars: HashMap<u32, usize>,
    cal: KeyedCalendar<Key, Event>,
    /// Per-owned-site emission counters (canonical key sequence).
    seqs: Vec<u64>,
    /// Pending requests of owned processors: `(t, seq, request)`.
    pending: Vec<Option<(u64, u64, ProcRequest)>>,
    resume_time: Vec<u64>,
    status: Vec<Status>,
    reply_tx: Vec<Sender<Reply>>,
    rx: Receiver<ProcMsg>,
    running: usize,
    outgoing: Vec<DeferredSend>,
    /// Key of the action being processed and its emission count so far.
    cur_key: Key,
    cur_idx: u32,
    stats: ShardStats,
}

impl ShardCore {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: MachineConfig,
        shard: usize,
        lo: usize,
        hi: usize,
        mem: Arc<Vec<AtomicU64>>,
        rx: Receiver<ProcMsg>,
        reply_tx: Vec<Sender<Reply>>,
    ) -> Self {
        let n = hi - lo;
        ShardCore {
            cfg,
            shard,
            lo,
            hi,
            mem,
            caches: (0..n).map(|_| Cache::new(cfg.cache_lines, cfg.associativity)).collect(),
            dir: HashMap::new(),
            active: HashMap::new(),
            deferred: HashMap::new(),
            locks: HashMap::new(),
            bars: HashMap::new(),
            cal: KeyedCalendar::new(),
            seqs: vec![0; n],
            pending: vec![None; n],
            resume_time: vec![0; n],
            status: vec![Status::Running; n],
            reply_tx,
            rx,
            running: n,
            outgoing: Vec::new(),
            cur_key: (CLASS_EVENT, 0, 0),
            cur_idx: 0,
            stats: ShardStats::default(),
        }
    }

    fn block_of(&self, addr: usize) -> u64 {
        (addr / self.cfg.block_words()) as u64
    }

    fn home_of(&self, block: u64) -> usize {
        (block % self.cfg.nprocs as u64) as usize
    }

    fn next_seq(&mut self, site: usize) -> u64 {
        let s = &mut self.seqs[site - self.lo];
        let v = *s;
        *s += 1;
        v
    }

    /// Schedules a same-site event. Every cross-site interaction travels
    /// through the network (deferred sends), so local scheduling never
    /// crosses a shard boundary.
    fn schedule(&mut self, t: u64, ev: Event) {
        let site = ev.site(self.cfg.nprocs);
        debug_assert!(
            (self.lo..self.hi).contains(&site),
            "intra-window schedule crossed shards: {ev:?} at site {site}"
        );
        let key = (CLASS_EVENT, site as u32, self.next_seq(site));
        self.cal.schedule(SimTime::from_ticks(t), key, ev);
    }

    /// Records a cross-site protocol message for injection at the window
    /// edge; `cont` is delivered at the destination at
    /// `delivery + extra`.
    #[allow(clippy::too_many_arguments)]
    fn emit_msg(
        &mut self,
        t: u64,
        src: usize,
        dst: usize,
        bytes: u32,
        kind: EventKind,
        cont: Event,
        extra: u64,
        unblock: Option<u64>,
    ) {
        debug_assert_ne!(src, dst, "same-site traffic must not enter the network");
        let idx = self.cur_idx;
        self.cur_idx += 1;
        self.outgoing.push(DeferredSend {
            t,
            src: src as u32,
            dst: dst as u32,
            bytes,
            kind,
            key: self.cur_key,
            idx,
            cont,
            extra,
            unblock,
        });
    }

    fn resume(&mut self, proc: usize, time: u64, value: u64) -> Result<(), SpasmError> {
        let lp = proc - self.lo;
        if self.reply_tx[lp].send(Reply { time, value }).is_err() {
            return Err(SpasmError::ProcessorHungUp {
                proc,
                report: format!("processor status at failure:{}", self.status_report()),
            });
        }
        self.resume_time[lp] = time;
        self.stats.max_time = self.stats.max_time.max(time);
        self.status[lp] = Status::Running;
        self.running += 1;
        Ok(())
    }

    /// One status line per owned processor — the same style of account the
    /// flit router's wedge report gives per undelivered worm.
    fn status_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (lp, s) in self.status.iter().enumerate() {
            let _ = write!(
                out,
                "\n  p{}: {s:?} (last resumed at t={})",
                self.lo + lp,
                self.resume_time[lp]
            );
        }
        out
    }

    /// Blocks until every Running processor of this shard has delivered
    /// its next request. Requests are stamped with their processor's own
    /// emission counter on arrival; a processor traps sequentially, so
    /// the stamp order per site is host-schedule-independent.
    fn gather(&mut self) {
        while self.running > 0 {
            let msg = self.rx.recv().expect("a processor thread died before finishing");
            let lp = msg.proc - self.lo;
            let t = self.resume_time[lp] + msg.elapsed;
            self.running -= 1;
            match msg.req {
                ProcRequest::Fault => {
                    panic!("simulated processor p{} panicked; aborting the run", msg.proc);
                }
                ProcRequest::Finish => {
                    self.status[lp] = Status::Done;
                    self.stats.max_time = self.stats.max_time.max(t);
                }
                req => {
                    let seq = self.next_seq(msg.proc);
                    self.pending[lp] = Some((t, seq, req));
                    self.status[lp] = Status::Pending;
                }
            }
        }
    }

    /// The earliest pending action as `(time, key)`, or None when idle.
    fn min_action(&self) -> Option<(u64, Key)> {
        let ev = self.cal.peek().map(|(t, &k)| (t.ticks(), k));
        let req = self
            .pending
            .iter()
            .enumerate()
            .filter_map(|(lp, o)| {
                o.as_ref().map(|&(t, seq, _)| (t, (CLASS_REQUEST, (self.lo + lp) as u32, seq)))
            })
            .min();
        match (ev, req) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// The earliest future action time after a drained window.
    fn next_time(&self) -> u64 {
        self.min_action().map_or(u64::MAX, |(t, _)| t)
    }

    /// Runs the serial loop inside the window `[start, end)`: gather
    /// requests, pick the canonically-least action strictly before `end`,
    /// process it, repeat. Returns the number of actions processed.
    fn run_window(&mut self, end: u64) -> Result<u64, SpasmError> {
        let mut acted = 0u64;
        loop {
            self.gather();
            let Some((t, key)) = self.min_action() else { break };
            if t >= end {
                break;
            }
            self.cur_key = key;
            self.cur_idx = 0;
            if key.0 == CLASS_EVENT {
                let (time, _, ev) = self.cal.pop().expect("peeked event vanished");
                let t = time.ticks();
                self.stats.max_time = self.stats.max_time.max(t);
                self.process_event(t, ev)?;
            } else {
                let lp = key.1 as usize - self.lo;
                let (t, _, req) = self.pending[lp].take().expect("request vanished");
                self.process_request(key.1 as usize, t, req)?;
            }
            acted += 1;
        }
        Ok(acted)
    }

    fn process_request(&mut self, p: usize, t: u64, req: ProcRequest) -> Result<(), SpasmError> {
        self.status[p - self.lo] = Status::Blocked;
        match req {
            ProcRequest::Read { addr } => {
                self.stats.reads += 1;
                let block = self.block_of(addr);
                if self.caches[p - self.lo].lookup(block).is_some() {
                    self.stats.hits += 1;
                    let v = self.mem[addr].load(Ordering::Relaxed);
                    self.resume(p, t + self.cfg.hit_latency, v)?;
                } else {
                    self.stats.misses += 1;
                    self.start_txn(p, block, addr, false, false, 0, t);
                }
            }
            ProcRequest::Write { addr, value } => {
                self.stats.writes += 1;
                let block = self.block_of(addr);
                match self.caches[p - self.lo].lookup(block) {
                    Some(LineState::Modified) => {
                        self.stats.hits += 1;
                        self.mem[addr].store(value, Ordering::Relaxed);
                        self.resume(p, t + self.cfg.hit_latency, 0)?;
                    }
                    Some(LineState::Exclusive) => {
                        // MESI: silent Exclusive -> Modified promotion.
                        self.stats.hits += 1;
                        self.caches[p - self.lo].set_state(block, LineState::Modified);
                        self.mem[addr].store(value, Ordering::Relaxed);
                        self.resume(p, t + self.cfg.hit_latency, 0)?;
                    }
                    Some(LineState::Shared) => {
                        self.stats.misses += 1;
                        self.start_txn(p, block, addr, true, true, value, t);
                    }
                    None => {
                        self.stats.misses += 1;
                        self.start_txn(p, block, addr, true, false, value, t);
                    }
                }
            }
            ProcRequest::Barrier { id } => {
                let home = (id as usize) % self.cfg.nprocs;
                if p == home {
                    self.schedule(t + self.cfg.sync_latency, Event::BarArrive { id });
                } else {
                    let bytes = self.cfg.ctrl_bytes;
                    self.emit_msg(
                        t,
                        p,
                        home,
                        bytes,
                        EventKind::Sync,
                        Event::BarArrive { id },
                        0,
                        None,
                    );
                }
            }
            ProcRequest::Lock { id } => {
                let home = (id as usize) % self.cfg.nprocs;
                let ev = Event::LockReq { id, proc: p as u32 };
                if p == home {
                    self.schedule(t + self.cfg.sync_latency, ev);
                } else {
                    self.emit_msg(t, p, home, self.cfg.ctrl_bytes, EventKind::Sync, ev, 0, None);
                }
            }
            ProcRequest::Unlock { id } => {
                // Release is fire-and-forget from the processor's view.
                self.resume(p, t + 1, 0)?;
                let home = (id as usize) % self.cfg.nprocs;
                let ev = Event::LockRel { id, proc: p as u32 };
                if p == home {
                    self.schedule(t + self.cfg.sync_latency, ev);
                } else {
                    self.emit_msg(t, p, home, self.cfg.ctrl_bytes, EventKind::Sync, ev, 0, None);
                }
            }
            ProcRequest::Finish | ProcRequest::Fault => {
                unreachable!("finish/fault handled in gather")
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn start_txn(
        &mut self,
        p: usize,
        block: u64,
        addr: usize,
        write: bool,
        upgrade: bool,
        value: u64,
        t: u64,
    ) {
        let data = TxnData { proc: p as u32, block, addr, write, value, upgrade };
        let home = self.home_of(block);
        if p == home {
            self.schedule(t + self.cfg.dir_latency, Event::HomeReq { data });
        } else {
            let bytes = self.cfg.ctrl_bytes;
            let extra = self.cfg.dir_latency;
            self.emit_msg(
                t,
                p,
                home,
                bytes,
                EventKind::Control,
                Event::HomeReq { data },
                extra,
                None,
            );
        }
    }

    fn process_event(&mut self, t: u64, ev: Event) -> Result<(), SpasmError> {
        match ev {
            Event::HomeReq { data } => self.home_req(data, t),
            Event::Recall { block, write, owner } => {
                self.recall_at_owner(block, write, owner as usize, t)
            }
            Event::WbHome { block } => self.finish_home(block, t),
            Event::ReplySend { block, bytes, kind } => {
                let a = &self.active[&block];
                let cont = Event::ReplyArrive { data: a.data, exclusive: a.exclusive };
                let (home, proc) = (self.home_of(block), a.data.proc as usize);
                self.emit_msg(t, home, proc, bytes, kind, cont, 0, Some(block));
            }
            Event::Inval { block, sharer } => self.inval_at_sharer(block, sharer as usize, t),
            Event::AckHome { block } => {
                let a = self.active.get_mut(&block).expect("ack without active transaction");
                a.acks_left -= 1;
                if a.acks_left == 0 {
                    self.finish_home(block, t);
                }
            }
            Event::ReplyArrive { data, exclusive } => self.reply_arrive(data, exclusive, t)?,
            Event::UnblockHome { block } => self.unblock_home(block, t),
            Event::VictimWb { block, proc } => {
                if self.dir.get(&block) == Some(&DirState::Modified(proc as u16)) {
                    self.dir.insert(block, DirState::Uncached);
                }
            }
            Event::BarArrive { id } => {
                let count = self.bars.entry(id).or_insert(0);
                *count += 1;
                if *count == self.cfg.nprocs {
                    *count = 0;
                    self.stats.barrier_episodes += 1;
                    let home = (id as usize) % self.cfg.nprocs;
                    for q in 0..self.cfg.nprocs {
                        let ev = Event::BarRelease { proc: q as u32 };
                        if q == home {
                            self.schedule(t + self.cfg.sync_latency, ev);
                        } else {
                            let bytes = self.cfg.ctrl_bytes;
                            self.emit_msg(t, home, q, bytes, EventKind::Sync, ev, 0, None);
                        }
                    }
                }
            }
            Event::BarRelease { proc } => {
                self.resume(proc as usize, t + self.cfg.sync_latency, 0)?;
            }
            Event::LockReq { id, proc } => {
                let proc = proc as usize;
                let home = (id as usize) % self.cfg.nprocs;
                let st = self.locks.entry(id).or_default();
                if st.held.is_none() {
                    st.held = Some(proc);
                    self.stats.lock_grants += 1;
                    let ev = Event::LockGrant { proc: proc as u32 };
                    if proc == home {
                        self.schedule(t + self.cfg.sync_latency, ev);
                    } else {
                        let bytes = self.cfg.ctrl_bytes;
                        self.emit_msg(t, home, proc, bytes, EventKind::Sync, ev, 0, None);
                    }
                } else {
                    st.waiters.push_back(proc);
                }
            }
            Event::LockGrant { proc } => {
                self.resume(proc as usize, t + self.cfg.sync_latency, 0)?;
            }
            Event::LockRel { id, proc } => {
                let proc = proc as usize;
                let home = (id as usize) % self.cfg.nprocs;
                let st = self.locks.get_mut(&id).expect("release of unknown lock");
                assert_eq!(st.held, Some(proc), "lock {id} released by non-holder p{proc}");
                st.held = None;
                if let Some(q) = st.waiters.pop_front() {
                    st.held = Some(q);
                    self.stats.lock_grants += 1;
                    let ev = Event::LockGrant { proc: q as u32 };
                    if q == home {
                        self.schedule(t + self.cfg.sync_latency, ev);
                    } else {
                        let bytes = self.cfg.ctrl_bytes;
                        self.emit_msg(t, home, q, bytes, EventKind::Sync, ev, 0, None);
                    }
                }
            }
        }
        Ok(())
    }

    /// A coherence request (re)arrives at the home directory.
    fn home_req(&mut self, data: TxnData, t: u64) {
        let block = data.block;
        if self.active.contains_key(&block) {
            self.deferred.entry(block).or_default().push_back(data);
            return;
        }
        let home = self.home_of(block);
        let dir = self.dir.get(&block).cloned().unwrap_or(DirState::Uncached);
        let mut txn = ActiveTxn { data, acks_left: 0, owner_kept: None, exclusive: false };
        match dir {
            DirState::Modified(owner) if owner as usize != data.proc as usize => {
                let owner = owner as usize;
                if !data.write {
                    txn.owner_kept = Some(owner);
                }
                self.active.insert(block, txn);
                let ev = Event::Recall { block, write: data.write, owner: owner as u32 };
                if home == owner {
                    self.schedule(t + self.cfg.dir_latency, ev);
                } else {
                    let bytes = self.cfg.ctrl_bytes;
                    self.emit_msg(t, home, owner, bytes, EventKind::Control, ev, 0, None);
                }
            }
            DirState::Shared(_) if data.write => {
                let others = dir.sharers_except(data.proc as usize);
                if others.is_empty() {
                    self.active.insert(block, txn);
                    self.finish_home(block, t);
                } else {
                    txn.acks_left = others.count();
                    self.active.insert(block, txn);
                    for q in others.iter() {
                        let ev = Event::Inval { block, sharer: q as u32 };
                        if q == home {
                            self.schedule(t + self.cfg.dir_latency, ev);
                        } else {
                            let bytes = self.cfg.ctrl_bytes;
                            self.emit_msg(t, home, q, bytes, EventKind::Control, ev, 0, None);
                        }
                    }
                }
            }
            _ => {
                self.active.insert(block, txn);
                self.finish_home(block, t);
            }
        }
    }

    /// The recall (flush/downgrade) arrives at the current owner.
    fn recall_at_owner(&mut self, block: u64, write: bool, owner: usize, t: u64) {
        if write {
            self.caches[owner - self.lo].invalidate(block);
        } else {
            self.caches[owner - self.lo].downgrade(block);
        }
        let home = self.home_of(block);
        let ev = Event::WbHome { block };
        if owner == home {
            self.schedule(t + self.cfg.dir_latency, ev);
        } else {
            let bytes = self.cfg.block_bytes;
            self.emit_msg(t, owner, home, bytes, EventKind::Data, ev, 0, None);
        }
    }

    /// An invalidation arrives at a sharer: drop the line, acknowledge to
    /// home.
    fn inval_at_sharer(&mut self, block: u64, sharer: usize, t: u64) {
        self.caches[sharer - self.lo].invalidate(block);
        let home = self.home_of(block);
        let ev = Event::AckHome { block };
        if sharer == home {
            self.schedule(t + self.cfg.dir_latency, ev);
        } else {
            let bytes = self.cfg.ctrl_bytes;
            self.emit_msg(t, sharer, home, bytes, EventKind::Control, ev, 0, None);
        }
    }

    /// All protocol preconditions satisfied: update the directory and send
    /// the reply to the requester.
    fn finish_home(&mut self, block: u64, t: u64) {
        let (data, owner_kept) = {
            let a = &self.active[&block];
            (a.data, a.owner_kept)
        };
        let home = self.home_of(block);
        let entry = self.dir.entry(block).or_insert(DirState::Uncached);
        if data.write {
            *entry = DirState::Modified(data.proc as u16);
        } else if self.cfg.protocol == Protocol::Mesi
            && owner_kept.is_none()
            && matches!(*entry, DirState::Uncached)
        {
            // MESI: a read miss to an uncached block is granted
            // exclusively, so a subsequent write by this processor hits.
            *entry = DirState::Modified(data.proc as u16);
            self.active.get_mut(&block).expect("active transaction").exclusive = true;
        } else {
            let mut st = match *entry {
                DirState::Modified(_) => DirState::Uncached, // recalled above
                ref other => other.clone(),
            };
            if let Some(owner) = owner_kept {
                st.add_sharer(owner);
            }
            st.add_sharer(data.proc as usize);
            *entry = st;
        }
        // Data fetch unless this was a pure upgrade.
        let (latency, bytes, kind) = if data.upgrade {
            (self.cfg.dir_latency, self.cfg.ctrl_bytes, EventKind::Control)
        } else {
            (self.cfg.mem_latency, self.cfg.block_bytes, EventKind::Data)
        };
        let inject = t + latency;
        if data.proc as usize == home {
            let exclusive = self.active[&block].exclusive;
            self.schedule(inject, Event::ReplyArrive { data, exclusive });
        } else {
            // The reply leaves at `inject > t`; other actions may be
            // processed in between, so route the send through a calendar
            // hop to keep network injections time-ordered.
            self.schedule(inject, Event::ReplySend { block, bytes, kind });
        }
    }

    /// The reply reaches the requester: install the line and resume.
    fn reply_arrive(&mut self, data: TxnData, exclusive: bool, t: u64) -> Result<(), SpasmError> {
        let p = data.proc as usize;
        let state = if data.write {
            LineState::Modified
        } else if exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        if let Some((vblock, vstate)) = self.caches[p - self.lo].insert(data.block, state) {
            if vstate == LineState::Modified {
                let vhome = self.home_of(vblock);
                let ev = Event::VictimWb { block: vblock, proc: p as u32 };
                if p == vhome {
                    self.schedule(t + self.cfg.dir_latency, ev);
                } else {
                    let bytes = self.cfg.block_bytes;
                    self.emit_msg(t, p, vhome, bytes, EventKind::Data, ev, 0, None);
                }
            }
            // Shared victims are dropped silently; stale directory entries
            // just cost a harmless extra invalidation later.
        }
        if data.write {
            self.mem[data.addr].store(data.value, Ordering::Relaxed);
        }
        let value = self.mem[data.addr].load(Ordering::Relaxed);
        self.resume(p, t + self.cfg.fill_latency, value)?;
        // A home-local reply releases the block inline, exactly as the
        // serial engine did inside `reply_arrive`; a remote reply's release
        // arrives as `UnblockHome` at the same delivery time.
        if p == self.home_of(data.block) {
            self.unblock_home(data.block, t);
        }
        Ok(())
    }

    /// Releases the per-block serialization and admits the next deferred
    /// request for the block, if any.
    fn unblock_home(&mut self, block: u64, t: u64) {
        self.active.remove(&block);
        let next = self.deferred.get_mut(&block).and_then(|q| q.pop_front());
        if self.deferred.get(&block).is_some_and(|q| q.is_empty()) {
            self.deferred.remove(&block);
        }
        if let Some(data) = next {
            self.schedule(t, Event::HomeReq { data });
        }
    }
}

/// The coordinator's window-edge phase: inject every shard's deferred
/// sends in canonical order, route deliveries into destination mailboxes,
/// and broadcast the next window (or a stop).
fn coordinate<N: NetEngine<Sink = NetLog>>(
    co: &mut Coord<N>,
    shared: &Shared,
    shard_of: &[u32],
    round: u64,
) -> bool {
    let shards = shared.fences.len();
    for s in 0..shards {
        spin_wait(|| shared.fences[s].load(Ordering::Acquire) > round);
    }
    if shared.abort.load(Ordering::Relaxed) {
        shared.stop.store(STOP_FAILED, Ordering::Relaxed);
        shared.round.store(round + 1, Ordering::Release);
        return false;
    }
    let mut sends: Vec<DeferredSend> = Vec::new();
    for s in 0..shards {
        sends.append(&mut shared.outbox[s].lock());
    }
    // Canonical injection order: time, then the emitting action's key,
    // then the emission index — a pure function of simulation state, so
    // message ids, trace order and network contention are shard-invariant.
    sends.sort_unstable_by_key(|a| (a.t, a.key, a.idx));
    let acted: u64 = shared.acted.iter().map(|a| a.load(Ordering::Relaxed)).sum();
    let mut next = shared.next_times.iter().map(|a| a.load(Ordering::Relaxed)).min().unwrap();
    let had_sends = !sends.is_empty();
    let coord_site = shard_of.len() as u32;
    for d in sends {
        let id = co.msg_seq;
        co.msg_seq += 1;
        // Injections are nondecreasing across windows by construction; an
        // ordering error here is an engine bug, not bad input.
        let delivered = co
            .net
            .send(NetMessage {
                id,
                src: NodeId(d.src as u16),
                dst: NodeId(d.dst as u16),
                bytes: d.bytes,
                inject: SimTime::from_ticks(d.t),
            })
            .unwrap_or_else(|e| panic!("{e}"));
        let delivered = delivered.ticks();
        assert!(
            delivered >= d.t + co.lookahead,
            "network engine delivered below its min_latency lookahead \
             (inject {}, delivered {delivered}, lookahead {})",
            d.t,
            co.lookahead
        );
        co.trace.push(CommEvent::new(id, d.t, d.src as u16, d.dst as u16, d.bytes, d.kind));
        let ct = delivered + d.extra;
        let site = d.cont.site(shard_of.len());
        let key = (CLASS_EVENT, coord_site, co.seq);
        co.seq += 1;
        shared.mail[shard_of[site] as usize].lock().push((ct, key, d.cont));
        next = next.min(ct);
        if let Some(block) = d.unblock {
            let home = (block % shard_of.len() as u64) as usize;
            let key = (CLASS_EVENT, coord_site, co.seq);
            co.seq += 1;
            shared.mail[shard_of[home] as usize].lock().push((
                delivered,
                key,
                Event::UnblockHome { block },
            ));
            next = next.min(delivered);
        }
    }
    if next == u64::MAX {
        shared.stop.store(STOP_DRAINED, Ordering::Relaxed);
        shared.round.store(round + 1, Ordering::Release);
        return false;
    }
    if round > 0 && acted == 0 && !had_sends {
        // Nobody advanced and nothing is in flight, yet actions remain:
        // the conservative windows are wedged (an engine bug, reported in
        // the same cooperative style as the flit router's EngineError::Wedged).
        use std::fmt::Write;
        let mut report = String::from(
            "conservative windows wedged: no shard advanced; per-shard next action times:",
        );
        for (s, nt) in shared.next_times.iter().enumerate() {
            let _ = write!(report, "\n  shard {s}: t={}", nt.load(Ordering::Relaxed));
        }
        *shared.failure.lock() = Some(SpasmError::Wedged { report });
        shared.stop.store(STOP_FAILED, Ordering::Relaxed);
        shared.round.store(round + 1, Ordering::Release);
        return false;
    }
    shared.window_start.store(next, Ordering::Relaxed);
    shared.round.store(round + 1, Ordering::Release);
    true
}

/// The body of one shard worker. Shard 0's worker doubles as the
/// coordinator, owning the network engine and the trace.
pub(crate) fn run_worker<N: NetEngine<Sink = NetLog>>(
    mut core: ShardCore,
    shared: Arc<Shared>,
    mut coord: Option<Coord<N>>,
    shard_of: Arc<Vec<u32>>,
    lookahead: u64,
) {
    let guard = FenceGuard { shared: &shared, shard: core.shard };
    let mut round: u64 = 0;
    loop {
        spin_wait(|| {
            shared.round.load(Ordering::Acquire) == round || shared.abort.load(Ordering::Relaxed)
        });
        if shared.abort.load(Ordering::Relaxed)
            || shared.stop.load(Ordering::Relaxed) != STOP_RUNNING
        {
            break;
        }
        let start = shared.window_start.load(Ordering::Relaxed);
        // Round 0 is a sync-only probe window: it gathers the first
        // requests and reports the earliest action so the first real
        // window can start there instead of at zero.
        let end = if round == 0 { start } else { start + lookahead };
        {
            let mut mail = shared.mail[core.shard].lock();
            for (t, key, ev) in mail.drain(..) {
                core.cal.schedule(SimTime::from_ticks(t), key, ev);
            }
        }
        core.cal.advance_to(SimTime::from_ticks(start));
        match core.run_window(end) {
            Ok(acted) => {
                shared.acted[core.shard].store(acted, Ordering::Relaxed);
                shared.next_times[core.shard].store(core.next_time(), Ordering::Relaxed);
                if !core.outgoing.is_empty() {
                    shared.outbox[core.shard].lock().append(&mut core.outgoing);
                }
            }
            Err(e) => {
                let mut slot = shared.failure.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                shared.abort.store(true, Ordering::Relaxed);
                break;
            }
        }
        shared.fences[core.shard].store(round + 1, Ordering::Release);
        if let Some(co) = coord.as_mut() {
            coordinate(co, &shared, &shard_of, round);
        }
        round += 1;
    }
    drop(guard);
    if shared.stop.load(Ordering::Relaxed) == STOP_DRAINED {
        let all_done = core.status.iter().all(|&s| s == Status::Done);
        *shared.verdicts[core.shard].lock() =
            Some(ShardDone { stats: core.stats, report: core.status_report(), all_done });
        if let Some(co) = coord {
            *shared.out.lock() = Some((co.trace, co.net.finish()));
        }
    }
}

/// The products of a drained sharded run, before assembly into
/// [`crate::SpasmRun`].
pub(crate) struct Drained {
    pub trace: CommTrace,
    pub netlog: NetLog,
    pub exec_cycles: u64,
    pub reads: u64,
    pub writes: u64,
    pub hits: u64,
    pub misses: u64,
    pub barriers: u64,
    pub locks: u64,
}

/// Drives `shards` workers over the partitioned machine and merges their
/// verdicts. Uses one long-lived `Team` epoch for the whole simulation
/// when `shards > 1`; a single shard runs the identical windowed loop
/// inline.
pub(crate) fn drive<N>(
    cfg: MachineConfig,
    cores: Vec<ShardCore>,
    net: N,
) -> Result<Drained, SpasmError>
where
    N: NetEngine<Sink = NetLog> + Send + 'static,
{
    let shards = cores.len();
    let shared = Arc::new(Shared::new(shards));
    let plan = partition(cfg.nprocs, shards);
    let mut shard_of = vec![0u32; cfg.nprocs];
    for (s, &(lo, hi)) in plan.iter().enumerate() {
        shard_of[lo..hi].fill(s as u32);
    }
    let shard_of = Arc::new(shard_of);
    let coord = Coord::new(net, cfg.nprocs);
    let lookahead = coord.lookahead();
    if shards == 1 {
        let core = cores.into_iter().next().expect("one shard");
        run_worker(core, Arc::clone(&shared), Some(coord), Arc::clone(&shard_of), lookahead);
    } else {
        let team = commchar_pool::Team::new(shards);
        let mut jobs: Vec<commchar_pool::Job> = Vec::with_capacity(shards);
        let mut coord = Some(coord);
        for core in cores {
            let shared = Arc::clone(&shared);
            let shard_of = Arc::clone(&shard_of);
            let co = if core.shard == 0 { coord.take() } else { None };
            jobs.push(Box::new(move || run_worker(core, shared, co, shard_of, lookahead)));
        }
        // One epoch spans the entire simulation: the workers live across
        // every window, rendezvousing on fences rather than re-spawning.
        team.run(jobs);
    }
    if let Some(err) = shared.failure.lock().take() {
        return Err(err);
    }
    let mut stats = ShardStats::default();
    let mut report = String::new();
    let mut all_done = true;
    for v in &shared.verdicts {
        let v = v.lock();
        let v = v.as_ref().expect("drained shard left no verdict");
        stats.max_time = stats.max_time.max(v.stats.max_time);
        stats.reads += v.stats.reads;
        stats.writes += v.stats.writes;
        stats.hits += v.stats.hits;
        stats.misses += v.stats.misses;
        stats.barrier_episodes += v.stats.barrier_episodes;
        stats.lock_grants += v.stats.lock_grants;
        report.push_str(&v.report);
        all_done &= v.all_done;
    }
    if !all_done {
        return Err(SpasmError::Wedged {
            report: format!(
                "application deadlock: simulation drained with blocked processors\n\
                 processor status at failure:{report}"
            ),
        });
    }
    let (trace, netlog) = shared.out.lock().take().expect("drained run left no trace");
    Ok(Drained {
        trace,
        netlog,
        exec_cycles: stats.max_time,
        reads: stats.reads,
        writes: stats.writes,
        hits: stats.hits,
        misses: stats.misses,
        barriers: stats.barrier_episodes,
        locks: stats.lock_grants,
    })
}
