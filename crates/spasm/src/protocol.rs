//! Cache and directory state for the invalidation protocols (MSI / MESI).

/// State of a cached line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LineState {
    Shared,
    /// MESI only: clean exclusive — a write promotes it to Modified with
    /// no coherence traffic.
    Exclusive,
    Modified,
}

/// Which coherence protocol the directory runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Three-state invalidation protocol (the paper's machine).
    #[default]
    Msi,
    /// Adds the Exclusive state: an uncached block is granted exclusively
    /// on a read miss, so a subsequent write by the same processor hits.
    Mesi,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    block: u64,
    state: LineState,
}

/// A set-associative private cache with LRU replacement, tracking tags and
/// coherence states only (data values live in the engine's global memory
/// image). `assoc == 1` gives the paper's direct-mapped cache.
#[derive(Debug)]
pub(crate) struct Cache {
    /// `sets[s]` holds up to `assoc` lines, most-recently-used first.
    sets: Vec<Vec<Line>>,
    assoc: usize,
}

impl Cache {
    pub fn new(nlines: usize, assoc: usize) -> Self {
        assert!(assoc >= 1 && nlines >= assoc, "invalid cache geometry");
        let nsets = nlines / assoc;
        Cache { sets: (0..nsets).map(|_| Vec::with_capacity(assoc)).collect(), assoc }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// State of `block` if present; touches LRU.
    pub fn lookup(&mut self, block: u64) -> Option<LineState> {
        let s = self.set_of(block);
        let pos = self.sets[s].iter().position(|l| l.block == block)?;
        let line = self.sets[s].remove(pos);
        let state = line.state;
        self.sets[s].insert(0, line);
        Some(state)
    }

    /// State of `block` without touching LRU (used by tests).
    #[cfg(test)]
    pub fn peek(&self, block: u64) -> Option<LineState> {
        let s = self.set_of(block);
        self.sets[s].iter().find(|l| l.block == block).map(|l| l.state)
    }

    /// Installs `block` with `state` as MRU, returning the evicted line
    /// `(block, state)` if the set overflowed.
    pub fn insert(&mut self, block: u64, state: LineState) -> Option<(u64, LineState)> {
        let s = self.set_of(block);
        if let Some(pos) = self.sets[s].iter().position(|l| l.block == block) {
            self.sets[s].remove(pos);
        }
        self.sets[s].insert(0, Line { block, state });
        if self.sets[s].len() > self.assoc {
            let victim = self.sets[s].pop().expect("set overflow implies a victim");
            Some((victim.block, victim.state))
        } else {
            None
        }
    }

    /// Updates the state of a resident block in place (e.g. the silent
    /// Exclusive→Modified promotion). No-op if absent.
    pub fn set_state(&mut self, block: u64, state: LineState) {
        let s = self.set_of(block);
        if let Some(line) = self.sets[s].iter_mut().find(|l| l.block == block) {
            line.state = state;
        }
    }

    /// Drops `block` if present (invalidation).
    pub fn invalidate(&mut self, block: u64) {
        let s = self.set_of(block);
        self.sets[s].retain(|l| l.block != block);
    }

    /// Downgrades `block` to Shared if present (recall for a read).
    pub fn downgrade(&mut self, block: u64) {
        self.set_state(block, LineState::Shared);
    }
}

/// A growable full-map sharer bitmask: one bit per processor, stored as
/// little-endian 64-bit words. Replaces the old single-`u64` mask so
/// directories scale past 64 processors (the sharded engine targets 1024).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub(crate) struct SharerSet {
    words: Vec<u64>,
}

impl SharerSet {
    /// The empty set.
    pub fn new() -> Self {
        SharerSet { words: Vec::new() }
    }

    /// The singleton set `{proc}`.
    pub fn singleton(proc: usize) -> Self {
        let mut s = SharerSet::new();
        s.insert(proc);
        s
    }

    /// Adds `proc` to the set.
    pub fn insert(&mut self, proc: usize) {
        let (w, b) = (proc / 64, proc % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << b;
    }

    /// Removes `proc` from the set.
    pub fn remove(&mut self, proc: usize) {
        let (w, b) = (proc / 64, proc % 64);
        if w < self.words.len() {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Whether the set contains no processors.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of processors in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates members in ascending processor order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut mask = word;
            std::iter::from_fn(move || {
                if mask == 0 {
                    None
                } else {
                    let b = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Full-map directory entry for one block. `Modified` also stands for a
/// clean-exclusive owner under MESI — the recall path is identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum DirState {
    Uncached,
    Shared(SharerSet),
    Modified(u16),
}

impl DirState {
    /// The sharer set excluding `except` (empty unless `Shared`).
    pub fn sharers_except(&self, except: usize) -> SharerSet {
        match self {
            DirState::Shared(set) => {
                let mut s = set.clone();
                s.remove(except);
                s
            }
            _ => SharerSet::new(),
        }
    }

    pub fn add_sharer(&mut self, proc: usize) {
        match self {
            DirState::Shared(set) => set.insert(proc),
            _ => *self = DirState::Shared(SharerSet::singleton(proc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut c = Cache::new(4, 1);
        assert_eq!(c.insert(1, LineState::Shared), None);
        assert_eq!(c.lookup(1), Some(LineState::Shared));
        // Block 5 maps to the same set as 1.
        let victim = c.insert(5, LineState::Modified);
        assert_eq!(victim, Some((1, LineState::Shared)));
        assert_eq!(c.lookup(1), None);
        assert_eq!(c.lookup(5), Some(LineState::Modified));
    }

    #[test]
    fn two_way_set_keeps_both() {
        let mut c = Cache::new(4, 2); // 2 sets of 2 ways
        c.insert(0, LineState::Shared); // set 0
        c.insert(2, LineState::Shared); // set 0
        assert_eq!(c.lookup(0), Some(LineState::Shared));
        assert_eq!(c.lookup(2), Some(LineState::Shared));
        // Third block in set 0 evicts the LRU (block 0 after 2 was touched
        // last... 0 was looked up first, then 2 → LRU is 0).
        let victim = c.insert(4, LineState::Modified);
        assert_eq!(victim, Some((0, LineState::Shared)));
        assert_eq!(c.peek(2), Some(LineState::Shared));
    }

    #[test]
    fn lru_order_follows_lookups() {
        let mut c = Cache::new(4, 2);
        c.insert(0, LineState::Shared);
        c.insert(2, LineState::Shared);
        // Touch 0 so 2 becomes LRU.
        assert!(c.lookup(0).is_some());
        let victim = c.insert(4, LineState::Shared);
        assert_eq!(victim, Some((2, LineState::Shared)));
    }

    #[test]
    fn reinsert_same_block_is_not_eviction() {
        let mut c = Cache::new(4, 1);
        c.insert(2, LineState::Shared);
        assert_eq!(c.insert(2, LineState::Modified), None);
        assert_eq!(c.lookup(2), Some(LineState::Modified));
    }

    #[test]
    fn state_transitions() {
        let mut c = Cache::new(4, 1);
        c.insert(3, LineState::Exclusive);
        c.set_state(3, LineState::Modified);
        assert_eq!(c.peek(3), Some(LineState::Modified));
        c.downgrade(3);
        assert_eq!(c.peek(3), Some(LineState::Shared));
        c.invalidate(3);
        assert_eq!(c.peek(3), None);
        // No-ops on absent blocks.
        c.invalidate(3);
        c.downgrade(7);
        c.set_state(9, LineState::Shared);
    }

    #[test]
    fn dir_sharer_sets() {
        let mut d = DirState::Uncached;
        d.add_sharer(0);
        d.add_sharer(5);
        let mut expect = SharerSet::new();
        expect.insert(0);
        expect.insert(5);
        assert_eq!(d, DirState::Shared(expect));
        assert_eq!(d.sharers_except(0).iter().collect::<Vec<_>>(), vec![5]);
        assert_eq!(d.sharers_except(9).iter().collect::<Vec<_>>(), vec![0, 5]);
        let m = DirState::Modified(3);
        assert!(m.sharers_except(1).is_empty());
    }

    #[test]
    fn sharer_set_scales_past_64_processors() {
        let mut s = SharerSet::new();
        for p in [0usize, 63, 64, 700, 1023] {
            s.insert(p);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 700, 1023]);
        s.remove(700);
        s.remove(700); // idempotent
        s.remove(4000); // out-of-range no-op
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1023]);
        assert!(!s.is_empty());
        for p in [0usize, 63, 64, 1023] {
            s.remove(p);
        }
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }
}
