//! The execution-driven simulation front end: processor threads, the
//! sharded event-loop engine, and run assembly.
//!
//! One OS thread runs per simulated processor; each shared access sends a
//! request to the engine and blocks until the engine has simulated the
//! access to completion. The machine itself — caches, directory, event
//! calendar — is partitioned into source-contiguous shards advanced in
//! conservative time windows (see [`crate::shard`]); a single shard
//! degenerates to the classic serial loop, and every shard count produces
//! bit-identical results. Network messages are injected in nondecreasing
//! time order at window edges, as the wormhole model requires.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use commchar_mesh::{EngineKind, IncrementalFlit, NetEngine, NetLog, OnlineWormhole};
use crossbeam::channel::{unbounded, Sender};

use crate::api::{Ctx, ProcMsg, Reply, Setup};
use crate::shard::{self, ShardCore};
use crate::MachineConfig;
use commchar_trace::CommTrace;

/// The output of an execution-driven run.
#[derive(Debug)]
pub struct SpasmRun {
    /// Every network message injected during the run (the communication
    /// trace the methodology analyzes).
    pub trace: CommTrace,
    /// The network simulator's log (latency/contention per message).
    pub netlog: NetLog,
    /// Total simulated execution time in cycles.
    pub exec_cycles: u64,
    /// Number of processors.
    pub nprocs: usize,
    /// Shared reads issued.
    pub reads: u64,
    /// Shared writes issued.
    pub writes: u64,
    /// Cache hits (reads + writes).
    pub hits: u64,
    /// Cache misses (including upgrades).
    pub misses: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Lock acquisitions granted.
    pub locks: u64,
}

impl SpasmRun {
    /// Miss ratio over all shared accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// The trace in the packed columnar format of `commchar-tracestore`
    /// — the compact alternative to
    /// [`CommTrace::to_jsonl`](commchar_trace::CommTrace::to_jsonl) for
    /// traces headed to disk.
    pub fn packed_trace(&self) -> Vec<u8> {
        commchar_tracestore::pack_trace(&self.trace)
    }

    /// The network log in the packed columnar format (records plus the
    /// per-channel utilization figures).
    pub fn packed_netlog(&self) -> Vec<u8> {
        commchar_tracestore::pack_netlog(&self.netlog)
    }
}

/// An engine-level failure surfaced as a value instead of a bare panic,
/// carrying the same style of per-participant account as the flit
/// router's wedge report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpasmError {
    /// The engine tried to hand a reply to a processor whose thread has
    /// already exited (its reply channel is closed) — the co-simulation
    /// cannot make progress without it.
    ProcessorHungUp {
        /// The processor that could not be resumed.
        proc: usize,
        /// One status line per processor at the moment of the failure.
        report: String,
    },
    /// The simulation stopped making progress with work still pending:
    /// either the application deadlocked (every remaining processor is
    /// blocked on a reply that can never come) or the conservative
    /// windows wedged without any shard advancing — the cooperative
    /// analogue of the flit router's `EngineError::Wedged`.
    Wedged {
        /// A per-participant account of the stuck state.
        report: String,
    },
}

impl std::fmt::Display for SpasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpasmError::ProcessorHungUp { proc, report } => {
                write!(
                    f,
                    "cannot resume p{proc}: processor thread hung up \
                     (reply channel closed)\n{report}"
                )
            }
            SpasmError::Wedged { report } => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for SpasmError {}

/// Runs `body` on every simulated processor of a machine configured by
/// `cfg`, after `setup` has allocated and initialized shared memory.
///
/// The network engine closing the co-simulation loop is chosen by
/// `cfg.engine`; see [`run_with`] to supply one directly. The machine is
/// advanced by `cfg.sim_jobs` worker shards
/// ([`MachineConfig::with_sim_jobs`]); the shard count never changes the
/// results, only the wall-clock time.
///
/// The value returned by `setup` (typically a tuple of
/// [`Region`](crate::Region)s plus
/// problem parameters) is cloned into every processor's closure.
///
/// # Panics
///
/// Panics if a processor thread panics, hangs up mid-simulation
/// ([`SpasmError::ProcessorHungUp`]), deadlocks
/// ([`SpasmError::Wedged`]), or on protocol-level misuse (e.g. unlocking
/// a lock the caller does not hold).
pub fn run<R, S, B>(cfg: MachineConfig, setup: S, body: B) -> SpasmRun
where
    R: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> R,
    B: Fn(&mut Ctx, &R) + Send + Sync + 'static,
{
    match cfg.engine {
        EngineKind::Recurrence => run_with(cfg, setup, body, OnlineWormhole::new(cfg.mesh)),
        EngineKind::FlitLevel { sim_jobs } => {
            run_with(cfg, setup, body, IncrementalFlit::new(cfg.mesh).with_sim_jobs(sim_jobs))
        }
    }
}

/// [`run`] with a caller-supplied network engine (any [`NetEngine`]
/// logging into a [`NetLog`]).
///
/// # Panics
///
/// As [`run`].
pub fn run_with<R, S, B, N>(cfg: MachineConfig, setup: S, body: B, net: N) -> SpasmRun
where
    R: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> R,
    B: Fn(&mut Ctx, &R) + Send + Sync + 'static,
    N: NetEngine<Sink = NetLog> + Send + 'static,
{
    // A failed run means other threads may still be blocked on replies
    // that will never come: panic before joining, as the old in-line
    // expect did.
    try_run_with(cfg, setup, body, net).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_with`], but surfacing engine-level failures (hung-up
/// processors, application deadlock, wedged windows) as a typed
/// [`SpasmError`] instead of a panic. Application panics inside `body`
/// still propagate as panics.
pub fn try_run_with<R, S, B, N>(
    cfg: MachineConfig,
    setup: S,
    body: B,
    net: N,
) -> Result<SpasmRun, SpasmError>
where
    R: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> R,
    B: Fn(&mut Ctx, &R) + Send + Sync + 'static,
    N: NetEngine<Sink = NetLog> + Send + 'static,
{
    let mut s = Setup { mem: Vec::new(), nprocs: cfg.nprocs };
    let shared = setup(&mut s);
    // Shared memory is atomics so shards on different threads can touch
    // it without locks; the coherence protocol itself serializes every
    // pair of conflicting accesses across window barriers, so Relaxed
    // ordering suffices.
    let mem: Arc<Vec<AtomicU64>> = Arc::new(s.mem.into_iter().map(AtomicU64::new).collect());

    let shards = commchar_pool::resolve_jobs_for(cfg.sim_jobs, cfg.nprocs);
    let plan = shard::partition(cfg.nprocs, shards);

    let body = Arc::new(body);
    let mut cores = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(cfg.nprocs);
    for (sid, &(lo, hi)) in plan.iter().enumerate() {
        let (req_tx, req_rx) = unbounded::<ProcMsg>();
        let mut reply_txs: Vec<Sender<Reply>> = Vec::with_capacity(hi - lo);
        for p in lo..hi {
            let (tx, rx) = unbounded::<Reply>();
            reply_txs.push(tx);
            let mut ctx =
                Ctx { proc: p, nprocs: cfg.nprocs, elapsed: 0, now: 0, tx: req_tx.clone(), rx };
            let body = Arc::clone(&body);
            let shared = shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("spasm-p{p}"))
                    // Processor bodies are shallow (a closure trapping on
                    // every shared access); a small stack keeps
                    // 1024-processor machines affordable.
                    .stack_size(512 * 1024)
                    .spawn(move || {
                        // A panicking processor must tell the engine before
                        // it dies, or every other processor would wait
                        // forever.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            body(&mut ctx, &shared);
                        }));
                        match result {
                            Ok(()) => ctx.finish(),
                            Err(payload) => {
                                ctx.fault();
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                    .expect("failed to spawn processor thread"),
            );
        }
        drop(req_tx);
        cores.push(ShardCore::new(cfg, sid, lo, hi, Arc::clone(&mem), req_rx, reply_txs));
    }

    match shard::drive(cfg, cores, net) {
        Ok(d) => {
            for h in handles {
                h.join().expect("processor thread panicked");
            }
            Ok(SpasmRun {
                trace: d.trace,
                netlog: d.netlog,
                exec_cycles: d.exec_cycles,
                nprocs: cfg.nprocs,
                reads: d.reads,
                writes: d.writes,
                hits: d.hits,
                misses: d.misses,
                barriers: d.barriers,
                locks: d.locks,
            })
        }
        Err(e) => {
            // The shard cores (and with them every reply sender) are gone;
            // processor threads die on the closed channels. Their panics
            // are expected collateral — the typed error is the story.
            for h in handles {
                let _ = h.join();
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use commchar_trace::EventKind;

    use super::*;

    fn cfg(n: usize) -> MachineConfig {
        MachineConfig::new(n)
    }

    #[test]
    fn single_proc_no_network_traffic_except_home_misses() {
        // One processor: every block's home is itself, so no messages.
        let out = run(
            cfg(1),
            |m| m.alloc(128),
            |ctx, &r| {
                for i in 0..128 {
                    ctx.write(r, i, i as u64);
                }
                for i in 0..128 {
                    assert_eq!(ctx.read(r, i), i as u64);
                }
            },
        );
        assert_eq!(out.trace.len(), 0);
        assert!(out.exec_cycles > 0);
        assert_eq!(out.reads, 128);
        assert_eq!(out.writes, 128);
    }

    #[test]
    fn values_flow_between_processors() {
        let out = run(
            cfg(4),
            |m| m.alloc(64),
            |ctx, &r| {
                let p = ctx.proc_id();
                ctx.write(r, p * 4, (p * 100) as u64);
                ctx.barrier(0);
                for q in 0..ctx.nprocs() {
                    assert_eq!(ctx.read(r, q * 4), (q * 100) as u64);
                }
            },
        );
        assert!(!out.trace.is_empty(), "cross-processor traffic expected");
        assert_eq!(out.barriers, 1);
        out.netlog.check_invariants(cfg(4).mesh.shape).unwrap();
    }

    #[test]
    fn cache_hits_do_not_generate_traffic() {
        let out = run(
            cfg(2),
            |m| m.alloc(4),
            |ctx, &r| {
                if ctx.proc_id() == 0 {
                    ctx.write(r, 0, 7);
                    for _ in 0..100 {
                        assert_eq!(ctx.read(r, 0), 7);
                    }
                }
            },
        );
        // p0's writes/reads to block 0 (home p0): no network messages, and
        // after the first write, all accesses hit.
        assert_eq!(out.trace.len(), 0);
        assert!(out.hits >= 100);
    }

    #[test]
    fn invalidation_protocol_counts() {
        // All procs read a block, then one writes it: expect an
        // invalidation round trip per sharer.
        let n = 4;
        let out = run(
            cfg(n),
            |m| m.alloc(4),
            |ctx, &r| {
                ctx.read(r, 0);
                ctx.barrier(0);
                if ctx.proc_id() == 1 {
                    ctx.write(r, 0, 42);
                }
                ctx.barrier(1);
                assert_eq!(ctx.read(r, 0), 42);
            },
        );
        let ctrl = out.trace.events().iter().filter(|e| e.kind == EventKind::Control).count();
        assert!(ctrl >= 2 * (n - 2), "invalidations + acks expected, saw {ctrl} control msgs");
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        let n = 4;
        let iters = 25;
        let out = run(
            cfg(n),
            |m| m.alloc(4),
            move |ctx, &r| {
                for _ in 0..iters {
                    ctx.lock(0);
                    let v = ctx.read(r, 0);
                    ctx.compute(3);
                    ctx.write(r, 0, v + 1);
                    ctx.unlock(0);
                }
            },
        );
        assert_eq!(out.locks, (n * iters) as u64);
        // Verify the final counter value via a fresh run reading it... we
        // can't read memory post-hoc here, so assert through a second phase
        // in another test below.
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn lock_protected_counter_is_exact() {
        let n = 4;
        let iters = 10;
        run(
            cfg(n),
            |m| m.alloc(4),
            move |ctx, &r| {
                for _ in 0..iters {
                    ctx.lock(3);
                    let v = ctx.read(r, 0);
                    ctx.write(r, 0, v + 1);
                    ctx.unlock(3);
                }
                ctx.barrier(0);
                let total = ctx.read(r, 0);
                assert_eq!(total, (n * iters) as u64, "lost update under lock");
            },
        );
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn unlocking_unheld_lock_panics() {
        run(
            cfg(2),
            |m| m.alloc(1),
            |ctx, _| {
                if ctx.proc_id() == 0 {
                    ctx.lock(0);
                    ctx.unlock(0);
                } else {
                    ctx.compute(10_000);
                    ctx.unlock(0);
                }
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let go = || {
            run(
                cfg(8),
                |m| m.alloc(256),
                |ctx, &r| {
                    let p = ctx.proc_id();
                    for i in 0..32 {
                        ctx.write(r, (p * 32 + i) % 256, (p + i) as u64);
                        ctx.compute(2);
                    }
                    ctx.barrier(0);
                    let mut acc = 0u64;
                    for i in 0..64 {
                        acc = acc.wrapping_add(ctx.read(r, (p * 7 + i * 3) % 256));
                    }
                    ctx.write(r, p, acc);
                },
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn barrier_separates_phases() {
        // After a barrier, all prior writes are visible to all readers.
        run(
            cfg(8),
            |m| m.alloc(64),
            |ctx, &r| {
                let p = ctx.proc_id();
                for round in 0..4u64 {
                    ctx.write(r, p, round * 10 + p as u64);
                    ctx.barrier(round as u32);
                    for q in 0..ctx.nprocs() {
                        assert_eq!(ctx.read(r, q), round * 10 + q as u64);
                    }
                    ctx.barrier(100 + round as u32);
                }
            },
        );
    }

    #[test]
    fn false_sharing_generates_invalidations() {
        // Two procs write adjacent words in the same 4-word block.
        let out = run(
            cfg(2),
            |m| m.alloc(4),
            |ctx, &r| {
                let p = ctx.proc_id();
                for _ in 0..20 {
                    ctx.write(r, p, 1);
                }
            },
        );
        assert!(out.misses > 2, "ping-ponging block must miss repeatedly");
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn capacity_misses_with_tiny_cache() {
        let small = cfg(1).with_cache_lines(2);
        let out = run(
            small,
            |m| m.alloc(1024),
            |ctx, &r| {
                for i in 0..256 {
                    ctx.read(r, i * 4); // distinct blocks
                }
                for i in 0..256 {
                    ctx.read(r, i * 4);
                }
            },
        );
        // Direct-mapped 2-line cache, 256 distinct blocks: everything
        // misses both passes.
        assert_eq!(out.misses, 512);
    }

    #[test]
    fn flit_engine_closes_the_loop() {
        // The cycle-accurate engine must drive the same co-simulation to
        // completion, deterministically, with a consistent trace/log pair.
        let go = || {
            run(
                cfg(4).with_engine(commchar_mesh::EngineKind::flit()),
                |m| m.alloc(64),
                |ctx, &r| {
                    let p = ctx.proc_id();
                    ctx.write(r, p, p as u64);
                    ctx.barrier(0);
                    for q in 0..ctx.nprocs() {
                        assert_eq!(ctx.read(r, q), q as u64);
                    }
                },
            )
        };
        let a = go();
        assert_eq!(a.trace.len(), a.netlog.records().len());
        assert!(a.exec_cycles > 0);
        a.trace.check().unwrap();
        let b = go();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn engines_agree_on_the_message_population() {
        // Same program under both engines: the protocol traffic (what the
        // characterization measures) is identical; only latencies differ.
        let body = |ctx: &mut crate::Ctx, r: &crate::Region| {
            let p = ctx.proc_id();
            ctx.write(*r, p * 4, (p * 10) as u64);
            ctx.barrier(0);
            let _ = ctx.read(*r, ((p + 1) % 4) * 4);
        };
        let rec = run(cfg(4), |m| m.alloc(64), move |c, r| body(c, r));
        let flit = run(
            cfg(4).with_engine(commchar_mesh::EngineKind::flit()),
            |m| m.alloc(64),
            move |c, r| body(c, r),
        );
        assert_eq!(rec.reads, flit.reads);
        assert_eq!(rec.writes, flit.writes);
        assert_eq!(rec.barriers, flit.barriers);
        assert!(!flit.trace.is_empty());
    }

    #[test]
    fn netlog_and_trace_are_consistent() {
        let out = run(
            cfg(4),
            |m| m.alloc(64),
            |ctx, &r| {
                let p = ctx.proc_id();
                ctx.write(r, p, p as u64);
                ctx.barrier(0);
                ctx.read(r, (p + 1) % 4);
            },
        );
        assert_eq!(out.trace.len(), out.netlog.records().len());
        out.trace.check().unwrap();
    }

    #[test]
    fn mesi_read_then_write_hits_silently() {
        // Private read-modify-write: under MESI the write after the read
        // miss is a hit; under MSI it is an upgrade miss.
        let body = |ctx: &mut crate::Ctx, r: &crate::Region| {
            let p = ctx.proc_id();
            for i in 0..16 {
                let slot = p * 64 + i * 4; // distinct blocks, private
                let v = ctx.read(*r, slot);
                ctx.write(*r, slot, v + 1);
            }
        };
        let msi = run(
            cfg(2).with_protocol(crate::Protocol::Msi),
            |m| m.alloc(256),
            move |c, r| body(c, r),
        );
        let mesi = run(
            cfg(2).with_protocol(crate::Protocol::Mesi),
            |m| m.alloc(256),
            move |c, r| body(c, r),
        );
        assert!(
            mesi.misses < msi.misses,
            "MESI should remove upgrade misses: {} vs {}",
            mesi.misses,
            msi.misses
        );
        assert!(mesi.trace.len() < msi.trace.len(), "MESI should cut protocol traffic");
    }

    #[test]
    fn mesi_preserves_coherence_under_sharing() {
        // The MESI exclusive grant must not break invalidation coherence.
        run(
            cfg(4).with_protocol(crate::Protocol::Mesi),
            |m| m.alloc(16),
            |ctx, &r| {
                let p = ctx.proc_id();
                for round in 0..3u64 {
                    if p == (round as usize) % 4 {
                        ctx.write(r, 0, round * 7 + 1);
                    }
                    ctx.barrier(round as u32);
                    assert_eq!(ctx.read(r, 0), round * 7 + 1);
                    ctx.barrier(10 + round as u32);
                }
            },
        );
    }

    #[test]
    fn associativity_reduces_conflict_misses() {
        // Two blocks mapping to the same direct-mapped set, accessed
        // alternately: 2-way associativity removes the thrashing.
        let body = |ctx: &mut crate::Ctx, r: &crate::Region| {
            if ctx.proc_id() == 0 {
                for _ in 0..32 {
                    let _ = ctx.read(*r, 0); // block 0
                    let _ = ctx.read(*r, 16); // block 4 -> same set (4 lines)
                }
            }
        };
        let direct = run(
            cfg(1).with_cache_lines(4).with_associativity(1),
            |m| m.alloc(64),
            move |c, r| body(c, r),
        );
        let twoway = run(
            cfg(1).with_cache_lines(4).with_associativity(2),
            |m| m.alloc(64),
            move |c, r| body(c, r),
        );
        assert!(
            twoway.misses < direct.misses,
            "2-way should kill conflict misses: {} vs {}",
            twoway.misses,
            direct.misses
        );
    }
}
