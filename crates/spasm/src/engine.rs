//! The execution-driven simulation engine: event loop, MSI directory
//! protocol, synchronization, and the closed-loop network co-simulation.
//!
//! One OS thread runs per simulated processor; each shared access sends a
//! request to this engine and blocks until the engine has simulated the
//! access to completion. The engine only ever advances to the globally
//! earliest action (pending processor request or protocol event), so the
//! simulation is deterministic regardless of host scheduling, and network
//! messages are injected in nondecreasing time order as the wormhole model
//! requires.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use commchar_des::{Calendar, SimTime};
use commchar_mesh::{
    EngineKind, IncrementalFlit, NetEngine, NetLog, NetMessage, NodeId, OnlineWormhole,
};
use commchar_trace::{CommEvent, CommTrace, EventKind};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::api::{Ctx, ProcMsg, ProcRequest, Reply, Setup};
use crate::protocol::{iter_mask, Cache, DirState, LineState, Protocol};
use crate::MachineConfig;

/// The output of an execution-driven run.
#[derive(Debug)]
pub struct SpasmRun {
    /// Every network message injected during the run (the communication
    /// trace the methodology analyzes).
    pub trace: CommTrace,
    /// The network simulator's log (latency/contention per message).
    pub netlog: NetLog,
    /// Total simulated execution time in cycles.
    pub exec_cycles: u64,
    /// Number of processors.
    pub nprocs: usize,
    /// Shared reads issued.
    pub reads: u64,
    /// Shared writes issued.
    pub writes: u64,
    /// Cache hits (reads + writes).
    pub hits: u64,
    /// Cache misses (including upgrades).
    pub misses: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Lock acquisitions granted.
    pub locks: u64,
}

impl SpasmRun {
    /// Miss ratio over all shared accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// The trace in the packed columnar format of `commchar-tracestore`
    /// — the compact alternative to
    /// [`CommTrace::to_jsonl`](commchar_trace::CommTrace::to_jsonl) for
    /// traces headed to disk.
    pub fn packed_trace(&self) -> Vec<u8> {
        commchar_tracestore::pack_trace(&self.trace)
    }

    /// The network log in the packed columnar format (records plus the
    /// per-channel utilization figures).
    pub fn packed_netlog(&self) -> Vec<u8> {
        commchar_tracestore::pack_netlog(&self.netlog)
    }
}

/// An engine-level failure surfaced as a value instead of a bare panic,
/// carrying the same style of per-participant account as the flit
/// router's wedge report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpasmError {
    /// The engine tried to hand a reply to a processor whose thread has
    /// already exited (its reply channel is closed) — the co-simulation
    /// cannot make progress without it.
    ProcessorHungUp {
        /// The processor that could not be resumed.
        proc: usize,
        /// One status line per processor at the moment of the failure.
        report: String,
    },
}

impl std::fmt::Display for SpasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpasmError::ProcessorHungUp { proc, report } => {
                write!(
                    f,
                    "cannot resume p{proc}: processor thread hung up \
                     (reply channel closed)\n{report}"
                )
            }
        }
    }
}

impl std::error::Error for SpasmError {}

/// Runs `body` on every simulated processor of a machine configured by
/// `cfg`, after `setup` has allocated and initialized shared memory.
///
/// The network engine closing the co-simulation loop is chosen by
/// `cfg.engine`; see [`run_with`] to supply one directly.
///
/// The value returned by `setup` (typically a tuple of
/// [`Region`](crate::Region)s plus
/// problem parameters) is cloned into every processor's closure.
///
/// # Panics
///
/// Panics if a processor thread panics, hangs up mid-simulation
/// ([`SpasmError::ProcessorHungUp`]), or on protocol-level misuse
/// (e.g. unlocking a lock the caller does not hold).
pub fn run<R, S, B>(cfg: MachineConfig, setup: S, body: B) -> SpasmRun
where
    R: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> R,
    B: Fn(&mut Ctx, &R) + Send + Sync + 'static,
{
    match cfg.engine {
        EngineKind::Recurrence => run_with(cfg, setup, body, OnlineWormhole::new(cfg.mesh)),
        EngineKind::FlitLevel { sim_jobs } => {
            run_with(cfg, setup, body, IncrementalFlit::new(cfg.mesh).with_sim_jobs(sim_jobs))
        }
    }
}

/// [`run`] with a caller-supplied network engine (any [`NetEngine`]
/// logging into a [`NetLog`]).
///
/// # Panics
///
/// As [`run`].
pub fn run_with<R, S, B, N>(cfg: MachineConfig, setup: S, body: B, net: N) -> SpasmRun
where
    R: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> R,
    B: Fn(&mut Ctx, &R) + Send + Sync + 'static,
    N: NetEngine<Sink = NetLog>,
{
    let mut s = Setup { mem: Vec::new(), nprocs: cfg.nprocs };
    let shared = setup(&mut s);

    let (req_tx, req_rx) = unbounded::<ProcMsg>();
    let mut reply_txs: Vec<Sender<Reply>> = Vec::with_capacity(cfg.nprocs);
    let mut handles = Vec::with_capacity(cfg.nprocs);
    let body = Arc::new(body);
    for p in 0..cfg.nprocs {
        let (tx, rx) = unbounded::<Reply>();
        reply_txs.push(tx);
        let mut ctx =
            Ctx { proc: p, nprocs: cfg.nprocs, elapsed: 0, now: 0, tx: req_tx.clone(), rx };
        let body = Arc::clone(&body);
        let shared = shared.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("spasm-p{p}"))
                .spawn(move || {
                    // A panicking processor must tell the engine before it
                    // dies, or every other processor would wait forever.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        body(&mut ctx, &shared);
                    }));
                    match result {
                        Ok(()) => ctx.finish(),
                        Err(payload) => {
                            ctx.fault();
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
                .expect("failed to spawn processor thread"),
        );
    }
    drop(req_tx);

    let engine = Engine::new(cfg, s.mem, req_rx, reply_txs, net);
    // A hung-up processor means other threads may still be blocked on
    // replies that will never come: panic before joining, as the old
    // in-line expect did.
    let result = engine.run_loop().unwrap_or_else(|e| panic!("{e}"));
    for h in handles {
        h.join().expect("processor thread panicked");
    }
    result
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Running,
    Pending,
    Blocked,
    Done,
}

#[derive(Clone, Copy, Debug)]
struct Txn {
    proc: usize,
    block: u64,
    addr: usize,
    write: bool,
    /// Write value (ignored for reads).
    value: u64,
    /// Requester already held the line Shared (upgrade: control reply).
    upgrade: bool,
    acks_left: usize,
    /// Owner that was recalled for a read and stays a sharer.
    owner_kept: Option<usize>,
    /// MESI: the reply grants the line exclusively.
    exclusive: bool,
}

#[derive(Debug)]
enum Event {
    HomeReq(usize),
    Inval(usize, usize),
    AckHome(usize),
    Recall(usize, usize),
    WbHome(usize),
    /// The home's reply is ready to leave for the requester (after the
    /// directory/memory latency): inject it into the network now.
    ReplySend(usize, u32, EventKind),
    ReplyArrive(usize),
    VictimWb {
        block: u64,
        proc: usize,
    },
    BarArrive {
        id: u32,
    },
    BarRelease {
        proc: usize,
    },
    LockReq {
        id: u32,
        proc: usize,
    },
    LockGrant {
        proc: usize,
    },
    LockRel {
        id: u32,
        proc: usize,
    },
}

#[derive(Debug, Default)]
struct LockSt {
    held: Option<usize>,
    waiters: VecDeque<usize>,
}

struct Engine<N: NetEngine<Sink = NetLog>> {
    cfg: MachineConfig,
    mem: Vec<u64>,
    caches: Vec<Cache>,
    dir: HashMap<u64, DirState>,
    active: HashMap<u64, usize>,
    deferred: HashMap<u64, VecDeque<usize>>,
    txns: Vec<Txn>,
    net: N,
    cal: Calendar<Event>,
    trace: CommTrace,
    resume_time: Vec<u64>,
    pending: Vec<Option<(u64, ProcRequest)>>,
    status: Vec<Status>,
    reply_tx: Vec<Sender<Reply>>,
    rx: Receiver<ProcMsg>,
    running: usize,
    msg_seq: u64,
    locks: HashMap<u32, LockSt>,
    bars: HashMap<u32, usize>,
    max_time: u64,
    reads: u64,
    writes: u64,
    hits: u64,
    misses: u64,
    barrier_episodes: u64,
    lock_grants: u64,
}

impl<N: NetEngine<Sink = NetLog>> Engine<N> {
    fn new(
        cfg: MachineConfig,
        mem: Vec<u64>,
        rx: Receiver<ProcMsg>,
        reply_tx: Vec<Sender<Reply>>,
        net: N,
    ) -> Self {
        let n = cfg.nprocs;
        Engine {
            mem,
            caches: (0..n).map(|_| Cache::new(cfg.cache_lines, cfg.associativity)).collect(),
            dir: HashMap::new(),
            active: HashMap::new(),
            deferred: HashMap::new(),
            txns: Vec::new(),
            net,
            cal: Calendar::new(),
            trace: CommTrace::new(n),
            resume_time: vec![0; n],
            pending: vec![None; n],
            status: vec![Status::Running; n],
            reply_tx,
            rx,
            running: n,
            msg_seq: 0,
            locks: HashMap::new(),
            bars: HashMap::new(),
            max_time: 0,
            reads: 0,
            writes: 0,
            hits: 0,
            misses: 0,
            barrier_episodes: 0,
            lock_grants: 0,
            cfg,
        }
    }

    fn block_of(&self, addr: usize) -> u64 {
        (addr / self.cfg.block_words()) as u64
    }

    fn home_of(&self, block: u64) -> usize {
        (block % self.cfg.nprocs as u64) as usize
    }

    /// Sends a protocol message through the mesh (or locally, if source
    /// equals destination) and returns its delivery time.
    fn send(&mut self, t: u64, src: usize, dst: usize, bytes: u32, kind: EventKind) -> u64 {
        if src == dst {
            return t + self.cfg.dir_latency;
        }
        let id = self.msg_seq;
        self.msg_seq += 1;
        // The event loop only advances to the globally earliest action, so
        // injections are nondecreasing by construction; an ordering error
        // here is an engine bug, not bad input.
        let delivered = self
            .net
            .send(NetMessage {
                id,
                src: NodeId(src as u16),
                dst: NodeId(dst as u16),
                bytes,
                inject: SimTime::from_ticks(t),
            })
            .unwrap_or_else(|e| panic!("{e}"));
        self.trace.push(CommEvent::new(id, t, src as u16, dst as u16, bytes, kind));
        delivered.ticks()
    }

    fn schedule(&mut self, t: u64, ev: Event) {
        self.cal.schedule(SimTime::from_ticks(t), ev);
    }

    fn resume(&mut self, proc: usize, time: u64, value: u64) -> Result<(), SpasmError> {
        if self.reply_tx[proc].send(Reply { time, value }).is_err() {
            return Err(SpasmError::ProcessorHungUp { proc, report: self.status_report() });
        }
        self.resume_time[proc] = time;
        self.max_time = self.max_time.max(time);
        self.status[proc] = Status::Running;
        self.running += 1;
        Ok(())
    }

    /// One status line per processor — the same style of account the flit
    /// router's wedge panic gives per undelivered worm.
    fn status_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("processor status at failure:");
        for (p, s) in self.status.iter().enumerate() {
            let _ = write!(out, "\n  p{p}: {s:?} (last resumed at t={})", self.resume_time[p]);
        }
        out
    }

    /// Blocks until every Running processor has delivered its next request.
    fn gather(&mut self) {
        while self.running > 0 {
            let msg = self.rx.recv().expect("a processor thread died before finishing");
            let t = self.resume_time[msg.proc] + msg.elapsed;
            self.running -= 1;
            match msg.req {
                ProcRequest::Fault => {
                    panic!("simulated processor p{} panicked; aborting the run", msg.proc);
                }
                ProcRequest::Finish => {
                    self.status[msg.proc] = Status::Done;
                    self.max_time = self.max_time.max(t);
                }
                req => {
                    self.pending[msg.proc] = Some((t, req));
                    self.status[msg.proc] = Status::Pending;
                }
            }
        }
    }

    fn run_loop(mut self) -> Result<SpasmRun, SpasmError> {
        loop {
            self.gather();
            let ev_t = self.cal.peek_time().map(SimTime::ticks);
            let req = self
                .pending
                .iter()
                .enumerate()
                .filter_map(|(p, o)| o.as_ref().map(|&(t, _)| (t, p)))
                .min();
            match (ev_t, req) {
                (None, None) => break,
                (Some(et), Some((rt, _))) if et <= rt => self.process_event()?,
                (_, Some((rt, p))) => self.process_request(p, rt)?,
                (Some(_), None) => self.process_event()?,
            }
        }
        assert!(
            self.status.iter().all(|&s| s == Status::Done),
            "application deadlock: simulation drained with blocked processors ({:?})",
            self.status
        );
        let nprocs = self.cfg.nprocs;
        Ok(SpasmRun {
            trace: self.trace,
            netlog: self.net.finish(),
            exec_cycles: self.max_time,
            nprocs,
            reads: self.reads,
            writes: self.writes,
            hits: self.hits,
            misses: self.misses,
            barriers: self.barrier_episodes,
            locks: self.lock_grants,
        })
    }

    fn process_request(&mut self, p: usize, t: u64) -> Result<(), SpasmError> {
        let (_, req) = self.pending[p].take().expect("request vanished");
        self.status[p] = Status::Blocked;
        match req {
            ProcRequest::Read { addr } => {
                self.reads += 1;
                let block = self.block_of(addr);
                if self.caches[p].lookup(block).is_some() {
                    self.hits += 1;
                    let v = self.mem[addr];
                    self.resume(p, t + self.cfg.hit_latency, v)?;
                } else {
                    self.misses += 1;
                    self.start_txn(p, block, addr, false, false, 0, t);
                }
            }
            ProcRequest::Write { addr, value } => {
                self.writes += 1;
                let block = self.block_of(addr);
                match self.caches[p].lookup(block) {
                    Some(LineState::Modified) => {
                        self.hits += 1;
                        self.mem[addr] = value;
                        self.resume(p, t + self.cfg.hit_latency, 0)?;
                    }
                    Some(LineState::Exclusive) => {
                        // MESI: silent Exclusive -> Modified promotion.
                        self.hits += 1;
                        self.caches[p].set_state(block, LineState::Modified);
                        self.mem[addr] = value;
                        self.resume(p, t + self.cfg.hit_latency, 0)?;
                    }
                    Some(LineState::Shared) => {
                        self.misses += 1;
                        self.start_txn(p, block, addr, true, true, value, t);
                    }
                    None => {
                        self.misses += 1;
                        self.start_txn(p, block, addr, true, false, value, t);
                    }
                }
            }
            ProcRequest::Barrier { id } => {
                let home = (id as usize) % self.cfg.nprocs;
                let at = if p == home {
                    t + self.cfg.sync_latency
                } else {
                    self.send(t, p, home, self.cfg.ctrl_bytes, EventKind::Sync)
                };
                self.schedule(at, Event::BarArrive { id });
            }
            ProcRequest::Lock { id } => {
                let home = (id as usize) % self.cfg.nprocs;
                let at = if p == home {
                    t + self.cfg.sync_latency
                } else {
                    self.send(t, p, home, self.cfg.ctrl_bytes, EventKind::Sync)
                };
                self.schedule(at, Event::LockReq { id, proc: p });
            }
            ProcRequest::Unlock { id } => {
                // Release is fire-and-forget from the processor's view.
                self.resume(p, t + 1, 0)?;
                let home = (id as usize) % self.cfg.nprocs;
                let at = if p == home {
                    t + self.cfg.sync_latency
                } else {
                    self.send(t, p, home, self.cfg.ctrl_bytes, EventKind::Sync)
                };
                self.schedule(at, Event::LockRel { id, proc: p });
            }
            ProcRequest::Finish | ProcRequest::Fault => {
                unreachable!("finish/fault handled in gather")
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn start_txn(
        &mut self,
        p: usize,
        block: u64,
        addr: usize,
        write: bool,
        upgrade: bool,
        value: u64,
        t: u64,
    ) {
        let txn = self.txns.len();
        self.txns.push(Txn {
            proc: p,
            block,
            addr,
            write,
            value,
            upgrade,
            acks_left: 0,
            owner_kept: None,
            exclusive: false,
        });
        let home = self.home_of(block);
        let at = if p == home {
            t + self.cfg.dir_latency
        } else {
            self.send(t, p, home, self.cfg.ctrl_bytes, EventKind::Control) + self.cfg.dir_latency
        };
        self.schedule(at, Event::HomeReq(txn));
    }

    fn process_event(&mut self) -> Result<(), SpasmError> {
        let (time, ev) = self.cal.pop().expect("event queue empty");
        let t = time.ticks();
        self.max_time = self.max_time.max(t);
        match ev {
            Event::HomeReq(txn) => self.home_req(txn, t),
            Event::Recall(txn, owner) => self.recall_at_owner(txn, owner, t),
            Event::WbHome(txn) => self.finish_home(txn, t),
            Event::ReplySend(txn, bytes, kind) => {
                let home = self.home_of(self.txns[txn].block);
                let proc = self.txns[txn].proc;
                let at = self.send(t, home, proc, bytes, kind);
                self.schedule(at, Event::ReplyArrive(txn));
            }
            Event::Inval(txn, sharer) => self.inval_at_sharer(txn, sharer, t),
            Event::AckHome(txn) => {
                self.txns[txn].acks_left -= 1;
                if self.txns[txn].acks_left == 0 {
                    self.finish_home(txn, t);
                }
            }
            Event::ReplyArrive(txn) => self.reply_arrive(txn, t)?,
            Event::VictimWb { block, proc } => {
                if self.dir.get(&block) == Some(&DirState::Modified(proc as u16)) {
                    self.dir.insert(block, DirState::Uncached);
                }
            }
            Event::BarArrive { id } => {
                let count = self.bars.entry(id).or_insert(0);
                *count += 1;
                if *count == self.cfg.nprocs {
                    *count = 0;
                    self.barrier_episodes += 1;
                    let home = (id as usize) % self.cfg.nprocs;
                    for q in 0..self.cfg.nprocs {
                        let at = if q == home {
                            t + self.cfg.sync_latency
                        } else {
                            self.send(t, home, q, self.cfg.ctrl_bytes, EventKind::Sync)
                        };
                        self.schedule(at, Event::BarRelease { proc: q });
                    }
                }
            }
            Event::BarRelease { proc } => {
                let at = t + self.cfg.sync_latency;
                self.resume(proc, at, 0)?;
            }
            Event::LockReq { id, proc } => {
                let home = (id as usize) % self.cfg.nprocs;
                let st = self.locks.entry(id).or_default();
                if st.held.is_none() {
                    st.held = Some(proc);
                    self.lock_grants += 1;
                    let at = if proc == home {
                        t + self.cfg.sync_latency
                    } else {
                        self.send(t, home, proc, self.cfg.ctrl_bytes, EventKind::Sync)
                    };
                    self.schedule(at, Event::LockGrant { proc });
                } else {
                    st.waiters.push_back(proc);
                }
            }
            Event::LockGrant { proc } => {
                self.resume(proc, t + self.cfg.sync_latency, 0)?;
            }
            Event::LockRel { id, proc } => {
                let home = (id as usize) % self.cfg.nprocs;
                let st = self.locks.get_mut(&id).expect("release of unknown lock");
                assert_eq!(st.held, Some(proc), "lock {id} released by non-holder p{proc}");
                st.held = None;
                if let Some(q) = st.waiters.pop_front() {
                    st.held = Some(q);
                    self.lock_grants += 1;
                    let at = if q == home {
                        t + self.cfg.sync_latency
                    } else {
                        self.send(t, home, q, self.cfg.ctrl_bytes, EventKind::Sync)
                    };
                    self.schedule(at, Event::LockGrant { proc: q });
                }
            }
        }
        Ok(())
    }

    /// A coherence request (re)arrives at the home directory.
    fn home_req(&mut self, txn_id: usize, t: u64) {
        let txn = self.txns[txn_id];
        if self.active.contains_key(&txn.block) {
            self.deferred.entry(txn.block).or_default().push_back(txn_id);
            return;
        }
        self.active.insert(txn.block, txn_id);
        let home = self.home_of(txn.block);
        let dir = self.dir.get(&txn.block).copied().unwrap_or(DirState::Uncached);
        match dir {
            DirState::Modified(owner) if owner as usize != txn.proc => {
                let owner = owner as usize;
                if !txn.write {
                    self.txns[txn_id].owner_kept = Some(owner);
                }
                let at = if home == owner {
                    t + self.cfg.dir_latency
                } else {
                    self.send(t, home, owner, self.cfg.ctrl_bytes, EventKind::Control)
                };
                self.schedule(at, Event::Recall(txn_id, owner));
            }
            DirState::Shared(_) if txn.write => {
                let others = dir.sharers_except(txn.proc);
                let count = others.count_ones() as usize;
                if count == 0 {
                    self.finish_home(txn_id, t);
                } else {
                    self.txns[txn_id].acks_left = count;
                    for q in iter_mask(others) {
                        let at = if q == home {
                            t + self.cfg.dir_latency
                        } else {
                            self.send(t, home, q, self.cfg.ctrl_bytes, EventKind::Control)
                        };
                        self.schedule(at, Event::Inval(txn_id, q));
                    }
                }
            }
            _ => self.finish_home(txn_id, t),
        }
    }

    /// The recall (flush/downgrade) arrives at the current owner.
    fn recall_at_owner(&mut self, txn_id: usize, owner: usize, t: u64) {
        let txn = self.txns[txn_id];
        if txn.write {
            self.caches[owner].invalidate(txn.block);
        } else {
            self.caches[owner].downgrade(txn.block);
        }
        let home = self.home_of(txn.block);
        let at = if owner == home {
            t + self.cfg.dir_latency
        } else {
            self.send(t, owner, home, self.cfg.block_bytes, EventKind::Data)
        };
        self.schedule(at, Event::WbHome(txn_id));
    }

    /// An invalidation arrives at a sharer: drop the line, acknowledge to
    /// home.
    fn inval_at_sharer(&mut self, txn_id: usize, sharer: usize, t: u64) {
        let txn = self.txns[txn_id];
        self.caches[sharer].invalidate(txn.block);
        let home = self.home_of(txn.block);
        let at = if sharer == home {
            t + self.cfg.dir_latency
        } else {
            self.send(t, sharer, home, self.cfg.ctrl_bytes, EventKind::Control)
        };
        self.schedule(at, Event::AckHome(txn_id));
    }

    /// All protocol preconditions satisfied: update the directory and send
    /// the reply to the requester.
    fn finish_home(&mut self, txn_id: usize, t: u64) {
        let txn = self.txns[txn_id];
        let home = self.home_of(txn.block);
        let entry = self.dir.entry(txn.block).or_insert(DirState::Uncached);
        if txn.write {
            *entry = DirState::Modified(txn.proc as u16);
        } else if self.cfg.protocol == Protocol::Mesi
            && txn.owner_kept.is_none()
            && matches!(*entry, DirState::Uncached)
        {
            // MESI: a read miss to an uncached block is granted
            // exclusively, so a subsequent write by this processor hits.
            *entry = DirState::Modified(txn.proc as u16);
            self.txns[txn_id].exclusive = true;
        } else {
            let mut st = match *entry {
                DirState::Modified(_) => DirState::Uncached, // recalled above
                other => other,
            };
            if let Some(owner) = txn.owner_kept {
                st.add_sharer(owner);
            }
            st.add_sharer(txn.proc);
            *entry = st;
        }
        // Data fetch unless this was a pure upgrade.
        let (latency, bytes, kind) = if txn.upgrade {
            (self.cfg.dir_latency, self.cfg.ctrl_bytes, EventKind::Control)
        } else {
            (self.cfg.mem_latency, self.cfg.block_bytes, EventKind::Data)
        };
        let inject = t + latency;
        if txn.proc == home {
            self.schedule(inject, Event::ReplyArrive(txn_id));
        } else {
            // The reply leaves at `inject > t`; other actions may be
            // processed in between, so route the send through a calendar
            // hop to keep network injections time-ordered.
            self.schedule(inject, Event::ReplySend(txn_id, bytes, kind));
        }
    }

    /// The reply reaches the requester: install the line and resume.
    fn reply_arrive(&mut self, txn_id: usize, t: u64) -> Result<(), SpasmError> {
        let txn = self.txns[txn_id];
        let p = txn.proc;
        let state = if txn.write {
            LineState::Modified
        } else if txn.exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        if let Some((vblock, vstate)) = self.caches[p].insert(txn.block, state) {
            if vstate == LineState::Modified {
                let vhome = self.home_of(vblock);
                let at = if p == vhome {
                    t + self.cfg.dir_latency
                } else {
                    self.send(t, p, vhome, self.cfg.block_bytes, EventKind::Data)
                };
                self.schedule(at, Event::VictimWb { block: vblock, proc: p });
            }
            // Shared victims are dropped silently; stale directory entries
            // just cost a harmless extra invalidation later.
        }
        if txn.write {
            self.mem[txn.addr] = txn.value;
        }
        let value = self.mem[txn.addr];
        self.resume(p, t + self.cfg.fill_latency, value)?;

        // Unblock the next deferred request for this block, if any.
        self.active.remove(&txn.block);
        let next = self.deferred.get_mut(&txn.block).and_then(|q| q.pop_front());
        if self.deferred.get(&txn.block).is_some_and(|q| q.is_empty()) {
            self.deferred.remove(&txn.block);
        }
        if let Some(next) = next {
            self.schedule(t, Event::HomeReq(next));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use commchar_trace::EventKind;

    use super::*;

    fn cfg(n: usize) -> MachineConfig {
        MachineConfig::new(n)
    }

    #[test]
    fn single_proc_no_network_traffic_except_home_misses() {
        // One processor: every block's home is itself, so no messages.
        let out = run(
            cfg(1),
            |m| m.alloc(128),
            |ctx, &r| {
                for i in 0..128 {
                    ctx.write(r, i, i as u64);
                }
                for i in 0..128 {
                    assert_eq!(ctx.read(r, i), i as u64);
                }
            },
        );
        assert_eq!(out.trace.len(), 0);
        assert!(out.exec_cycles > 0);
        assert_eq!(out.reads, 128);
        assert_eq!(out.writes, 128);
    }

    #[test]
    fn values_flow_between_processors() {
        let out = run(
            cfg(4),
            |m| m.alloc(64),
            |ctx, &r| {
                let p = ctx.proc_id();
                ctx.write(r, p * 4, (p * 100) as u64);
                ctx.barrier(0);
                for q in 0..ctx.nprocs() {
                    assert_eq!(ctx.read(r, q * 4), (q * 100) as u64);
                }
            },
        );
        assert!(!out.trace.is_empty(), "cross-processor traffic expected");
        assert_eq!(out.barriers, 1);
        out.netlog.check_invariants(cfg(4).mesh.shape).unwrap();
    }

    #[test]
    fn cache_hits_do_not_generate_traffic() {
        let out = run(
            cfg(2),
            |m| m.alloc(4),
            |ctx, &r| {
                if ctx.proc_id() == 0 {
                    ctx.write(r, 0, 7);
                    for _ in 0..100 {
                        assert_eq!(ctx.read(r, 0), 7);
                    }
                }
            },
        );
        // p0's writes/reads to block 0 (home p0): no network messages, and
        // after the first write, all accesses hit.
        assert_eq!(out.trace.len(), 0);
        assert!(out.hits >= 100);
    }

    #[test]
    fn invalidation_protocol_counts() {
        // All procs read a block, then one writes it: expect an
        // invalidation round trip per sharer.
        let n = 4;
        let out = run(
            cfg(n),
            |m| m.alloc(4),
            |ctx, &r| {
                ctx.read(r, 0);
                ctx.barrier(0);
                if ctx.proc_id() == 1 {
                    ctx.write(r, 0, 42);
                }
                ctx.barrier(1);
                assert_eq!(ctx.read(r, 0), 42);
            },
        );
        let ctrl = out.trace.events().iter().filter(|e| e.kind == EventKind::Control).count();
        assert!(ctrl >= 2 * (n - 2), "invalidations + acks expected, saw {ctrl} control msgs");
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        let n = 4;
        let iters = 25;
        let out = run(
            cfg(n),
            |m| m.alloc(4),
            move |ctx, &r| {
                for _ in 0..iters {
                    ctx.lock(0);
                    let v = ctx.read(r, 0);
                    ctx.compute(3);
                    ctx.write(r, 0, v + 1);
                    ctx.unlock(0);
                }
            },
        );
        assert_eq!(out.locks, (n * iters) as u64);
        // Verify the final counter value via a fresh run reading it... we
        // can't read memory post-hoc here, so assert through a second phase
        // in another test below.
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn lock_protected_counter_is_exact() {
        let n = 4;
        let iters = 10;
        run(
            cfg(n),
            |m| m.alloc(4),
            move |ctx, &r| {
                for _ in 0..iters {
                    ctx.lock(3);
                    let v = ctx.read(r, 0);
                    ctx.write(r, 0, v + 1);
                    ctx.unlock(3);
                }
                ctx.barrier(0);
                let total = ctx.read(r, 0);
                assert_eq!(total, (n * iters) as u64, "lost update under lock");
            },
        );
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn unlocking_unheld_lock_panics() {
        run(
            cfg(2),
            |m| m.alloc(1),
            |ctx, _| {
                if ctx.proc_id() == 0 {
                    ctx.lock(0);
                    ctx.unlock(0);
                } else {
                    ctx.compute(10_000);
                    ctx.unlock(0);
                }
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let go = || {
            run(
                cfg(8),
                |m| m.alloc(256),
                |ctx, &r| {
                    let p = ctx.proc_id();
                    for i in 0..32 {
                        ctx.write(r, (p * 32 + i) % 256, (p + i) as u64);
                        ctx.compute(2);
                    }
                    ctx.barrier(0);
                    let mut acc = 0u64;
                    for i in 0..64 {
                        acc = acc.wrapping_add(ctx.read(r, (p * 7 + i * 3) % 256));
                    }
                    ctx.write(r, p, acc);
                },
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn barrier_separates_phases() {
        // After a barrier, all prior writes are visible to all readers.
        run(
            cfg(8),
            |m| m.alloc(64),
            |ctx, &r| {
                let p = ctx.proc_id();
                for round in 0..4u64 {
                    ctx.write(r, p, round * 10 + p as u64);
                    ctx.barrier(round as u32);
                    for q in 0..ctx.nprocs() {
                        assert_eq!(ctx.read(r, q), round * 10 + q as u64);
                    }
                    ctx.barrier(100 + round as u32);
                }
            },
        );
    }

    #[test]
    fn false_sharing_generates_invalidations() {
        // Two procs write adjacent words in the same 4-word block.
        let out = run(
            cfg(2),
            |m| m.alloc(4),
            |ctx, &r| {
                let p = ctx.proc_id();
                for _ in 0..20 {
                    ctx.write(r, p, 1);
                }
            },
        );
        assert!(out.misses > 2, "ping-ponging block must miss repeatedly");
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn capacity_misses_with_tiny_cache() {
        let small = cfg(1).with_cache_lines(2);
        let out = run(
            small,
            |m| m.alloc(1024),
            |ctx, &r| {
                for i in 0..256 {
                    ctx.read(r, i * 4); // distinct blocks
                }
                for i in 0..256 {
                    ctx.read(r, i * 4);
                }
            },
        );
        // Direct-mapped 2-line cache, 256 distinct blocks: everything
        // misses both passes.
        assert_eq!(out.misses, 512);
    }

    #[test]
    fn flit_engine_closes_the_loop() {
        // The cycle-accurate engine must drive the same co-simulation to
        // completion, deterministically, with a consistent trace/log pair.
        let go = || {
            run(
                cfg(4).with_engine(commchar_mesh::EngineKind::flit()),
                |m| m.alloc(64),
                |ctx, &r| {
                    let p = ctx.proc_id();
                    ctx.write(r, p, p as u64);
                    ctx.barrier(0);
                    for q in 0..ctx.nprocs() {
                        assert_eq!(ctx.read(r, q), q as u64);
                    }
                },
            )
        };
        let a = go();
        assert_eq!(a.trace.len(), a.netlog.records().len());
        assert!(a.exec_cycles > 0);
        a.trace.check().unwrap();
        let b = go();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn engines_agree_on_the_message_population() {
        // Same program under both engines: the protocol traffic (what the
        // characterization measures) is identical; only latencies differ.
        let body = |ctx: &mut crate::Ctx, r: &crate::Region| {
            let p = ctx.proc_id();
            ctx.write(*r, p * 4, (p * 10) as u64);
            ctx.barrier(0);
            let _ = ctx.read(*r, ((p + 1) % 4) * 4);
        };
        let rec = run(cfg(4), |m| m.alloc(64), move |c, r| body(c, r));
        let flit = run(
            cfg(4).with_engine(commchar_mesh::EngineKind::flit()),
            |m| m.alloc(64),
            move |c, r| body(c, r),
        );
        assert_eq!(rec.reads, flit.reads);
        assert_eq!(rec.writes, flit.writes);
        assert_eq!(rec.barriers, flit.barriers);
        assert!(!flit.trace.is_empty());
    }

    #[test]
    fn netlog_and_trace_are_consistent() {
        let out = run(
            cfg(4),
            |m| m.alloc(64),
            |ctx, &r| {
                let p = ctx.proc_id();
                ctx.write(r, p, p as u64);
                ctx.barrier(0);
                ctx.read(r, (p + 1) % 4);
            },
        );
        assert_eq!(out.trace.len(), out.netlog.records().len());
        out.trace.check().unwrap();
    }

    #[test]
    fn mesi_read_then_write_hits_silently() {
        // Private read-modify-write: under MESI the write after the read
        // miss is a hit; under MSI it is an upgrade miss.
        let body = |ctx: &mut crate::Ctx, r: &crate::Region| {
            let p = ctx.proc_id();
            for i in 0..16 {
                let slot = p * 64 + i * 4; // distinct blocks, private
                let v = ctx.read(*r, slot);
                ctx.write(*r, slot, v + 1);
            }
        };
        let msi = run(
            cfg(2).with_protocol(crate::Protocol::Msi),
            |m| m.alloc(256),
            move |c, r| body(c, r),
        );
        let mesi = run(
            cfg(2).with_protocol(crate::Protocol::Mesi),
            |m| m.alloc(256),
            move |c, r| body(c, r),
        );
        assert!(
            mesi.misses < msi.misses,
            "MESI should remove upgrade misses: {} vs {}",
            mesi.misses,
            msi.misses
        );
        assert!(mesi.trace.len() < msi.trace.len(), "MESI should cut protocol traffic");
    }

    #[test]
    fn mesi_preserves_coherence_under_sharing() {
        // The MESI exclusive grant must not break invalidation coherence.
        run(
            cfg(4).with_protocol(crate::Protocol::Mesi),
            |m| m.alloc(16),
            |ctx, &r| {
                let p = ctx.proc_id();
                for round in 0..3u64 {
                    if p == (round as usize) % 4 {
                        ctx.write(r, 0, round * 7 + 1);
                    }
                    ctx.barrier(round as u32);
                    assert_eq!(ctx.read(r, 0), round * 7 + 1);
                    ctx.barrier(10 + round as u32);
                }
            },
        );
    }

    #[test]
    fn associativity_reduces_conflict_misses() {
        // Two blocks mapping to the same direct-mapped set, accessed
        // alternately: 2-way associativity removes the thrashing.
        let body = |ctx: &mut crate::Ctx, r: &crate::Region| {
            if ctx.proc_id() == 0 {
                for _ in 0..32 {
                    let _ = ctx.read(*r, 0); // block 0
                    let _ = ctx.read(*r, 16); // block 4 -> same set (4 lines)
                }
            }
        };
        let direct = run(
            cfg(1).with_cache_lines(4).with_associativity(1),
            |m| m.alloc(64),
            move |c, r| body(c, r),
        );
        let twoway = run(
            cfg(1).with_cache_lines(4).with_associativity(2),
            |m| m.alloc(64),
            move |c, r| body(c, r),
        );
        assert!(
            twoway.misses < direct.misses,
            "2-way should kill conflict misses: {} vs {}",
            twoway.misses,
            direct.misses
        );
    }
}
