//! Simulated machine configuration.

use commchar_mesh::{EngineKind, MeshConfig};

pub use crate::protocol::Protocol;

/// Configuration of the simulated CC-NUMA machine.
///
/// Times are in processor cycles. Defaults follow the paper-era machine
/// assumptions: 32-byte cache blocks, a single-level direct-mapped private
/// cache, a full-map directory at each block's home node, and a 2-D mesh
/// sized to the processor count.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of processors (1–4096; one per mesh node).
    pub nprocs: usize,
    /// Private cache capacity in lines.
    pub cache_lines: usize,
    /// Cache associativity (1 = direct-mapped, the paper's machine).
    pub associativity: usize,
    /// Coherence protocol (MSI, or MESI with the Exclusive optimization).
    pub protocol: Protocol,
    /// Cache block size in bytes (must be a multiple of 8).
    pub block_bytes: u32,
    /// Cycles for a cache hit.
    pub hit_latency: u64,
    /// Cycles to fill a line after the reply arrives.
    pub fill_latency: u64,
    /// Cycles for the directory/memory to produce a data block.
    pub mem_latency: u64,
    /// Cycles for a directory decision that needs no memory access.
    pub dir_latency: u64,
    /// Cycles charged at synchronization endpoints.
    pub sync_latency: u64,
    /// Payload bytes of a protocol control message.
    pub ctrl_bytes: u32,
    /// The interconnection network.
    pub mesh: MeshConfig,
    /// Which network engine closes the co-simulation loop (recurrence
    /// model by default; the cycle-accurate flit router as the
    /// high-fidelity alternative).
    pub engine: EngineKind,
    /// Worker shards for the conservative-window parallel engine (1 =
    /// serial; 0 = one per hardware thread). Any value yields bit-identical
    /// results — see [`crate::run_with`].
    pub sim_jobs: usize,
}

impl MachineConfig {
    /// Creates a machine with `nprocs` processors and default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is 0 or exceeds 4096 (one mesh node per
    /// processor; the full-map directory scales with the count).
    pub fn new(nprocs: usize) -> Self {
        assert!((1..=4096).contains(&nprocs), "nprocs must be in 1..=4096");
        MachineConfig {
            nprocs,
            cache_lines: 256,
            associativity: 1,
            protocol: Protocol::Msi,
            block_bytes: 32,
            hit_latency: 1,
            fill_latency: 2,
            mem_latency: 30,
            dir_latency: 4,
            sync_latency: 2,
            ctrl_bytes: 8,
            mesh: MeshConfig::for_nodes(nprocs),
            engine: EngineKind::Recurrence,
            sim_jobs: 1,
        }
    }

    /// Sets the cache capacity in lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`.
    #[must_use]
    pub fn with_cache_lines(mut self, lines: usize) -> Self {
        assert!(lines > 0, "cache needs at least one line");
        self.cache_lines = lines;
        self
    }

    /// Sets the cache associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `ways ≥ 1` divides the line count.
    #[must_use]
    pub fn with_associativity(mut self, ways: usize) -> Self {
        assert!(
            ways >= 1 && self.cache_lines.is_multiple_of(ways),
            "associativity must divide lines"
        );
        self.associativity = ways;
        self
    }

    /// Selects the coherence protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the cache block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a positive multiple of 8.
    #[must_use]
    pub fn with_block_bytes(mut self, bytes: u32) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "block size must be a positive multiple of 8"
        );
        self.block_bytes = bytes;
        self
    }

    /// Sets the memory/directory data latency.
    #[must_use]
    pub fn with_mem_latency(mut self, cycles: u64) -> Self {
        self.mem_latency = cycles;
        self
    }

    /// Replaces the mesh configuration (e.g. to change channel width).
    ///
    /// # Panics
    ///
    /// Panics if the mesh has fewer nodes than processors.
    #[must_use]
    pub fn with_mesh(mut self, mesh: MeshConfig) -> Self {
        assert!(mesh.shape.nodes() >= self.nprocs, "mesh too small for processor count");
        self.mesh = mesh;
        self
    }

    /// Selects the network engine that closes the co-simulation loop.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the shard count for the conservative-window parallel engine
    /// (1 = serial; 0 = one shard per hardware thread). The shard count
    /// never changes simulation results, only wall-clock time.
    #[must_use]
    pub fn with_sim_jobs(mut self, sim_jobs: usize) -> Self {
        self.sim_jobs = sim_jobs;
        self
    }

    /// Words (u64) per cache block.
    pub fn block_words(&self) -> usize {
        (self.block_bytes / 8) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = MachineConfig::new(8);
        assert_eq!(c.block_words(), 4);
        assert_eq!(c.mesh.shape.nodes(), 8);
    }

    #[test]
    fn builders() {
        let c =
            MachineConfig::new(4).with_cache_lines(64).with_block_bytes(64).with_mem_latency(10);
        assert_eq!(c.cache_lines, 64);
        assert_eq!(c.block_words(), 8);
        assert_eq!(c.mem_latency, 10);
    }

    #[test]
    #[should_panic(expected = "nprocs")]
    fn too_many_procs() {
        let _ = MachineConfig::new(4097);
    }

    #[test]
    fn kilo_processor_machines_are_allowed() {
        let c = MachineConfig::new(1024).with_sim_jobs(8);
        assert_eq!(c.mesh.shape.nodes(), 1024);
        assert_eq!(c.sim_jobs, 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_block_size() {
        let _ = MachineConfig::new(4).with_block_bytes(12);
    }
}
