//! # commchar-spasm
//!
//! An execution-driven CC-NUMA multiprocessor simulator — the *dynamic
//! strategy* of the HPCA'97 characterization methodology, standing in for
//! the SPASM simulator the paper ran its shared-memory applications on.
//!
//! Like SPASM, the simulator does not interpret instructions: application
//! code runs natively (here, as Rust closures on one OS thread per
//! simulated processor) and only the "interesting" operations — shared
//! memory LOADs/STOREs and synchronization — trap into the simulation
//! engine. The engine simulates, per access:
//!
//! - a private direct-mapped cache per processor,
//! - a full-map directory, invalidation-based MSI coherence protocol with
//!   sequential consistency (the processor blocks until its access
//!   completes), and
//! - every protocol message (request, data reply, invalidation, ack,
//!   recall, write-back) traveling through the 2-D wormhole mesh of
//!   [`commchar_mesh`], whose latency feeds back into simulated time — the
//!   closed loop between event generator and network simulator that
//!   distinguishes execution-driven from trace-driven simulation. The
//!   engine behind that loop is pluggable
//!   ([`commchar_mesh::NetEngine`]): the recurrence wormhole model by
//!   default, or the cycle-accurate flit router via
//!   [`MachineConfig::with_engine`].
//!
//! The run produces a [`SpasmRun`]: the [`commchar_trace::CommTrace`] of
//! injected messages, the network's [`commchar_mesh::NetLog`], and summary
//! counters — the raw material of the characterization pipeline.
//!
//! # Example
//!
//! ```
//! use commchar_spasm::{run, MachineConfig};
//!
//! let cfg = MachineConfig::new(4);
//! let out = run(cfg, |m| m.alloc(64), |ctx, &region| {
//!     let p = ctx.proc_id();
//!     ctx.write(region, p, p as u64);
//!     ctx.barrier(0);
//!     // Read a neighbour's slot: guaranteed visible after the barrier.
//!     let v = ctx.read(region, (p + 1) % ctx.nprocs());
//!     assert_eq!(v, ((p + 1) % ctx.nprocs()) as u64);
//! });
//! assert!(!out.trace.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod config;
mod engine;
mod protocol;
mod shard;

pub use api::{Ctx, Region, Setup};
pub use config::{MachineConfig, Protocol};
pub use engine::{run, run_with, try_run_with, SpasmError, SpasmRun};
