//! The application-facing API: shared regions and the per-processor
//! context whose operations trap into the simulation engine.

use crossbeam::channel::{Receiver, Sender};

/// A handle to a contiguous shared-memory region of 64-bit words.
///
/// Regions are allocated during setup (see [`Setup::alloc`]) and captured
/// by the application closure; accesses go through [`Ctx`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    pub(crate) base: usize,
    pub(crate) len: usize,
}

impl Region {
    /// Number of words in the region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Machine handle available during the setup phase, before the processors
/// start: allocate shared regions and write initial contents (without
/// generating coherence traffic, like a program's initialized data).
#[derive(Debug)]
pub struct Setup {
    pub(crate) mem: Vec<u64>,
    pub(crate) nprocs: usize,
}

impl Setup {
    /// Number of processors in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Allocates a zero-initialized shared region of `words` words.
    pub fn alloc(&mut self, words: usize) -> Region {
        let base = self.mem.len();
        self.mem.resize(base + words, 0);
        Region { base, len: words }
    }

    /// Writes an initial word value (no coherence traffic).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the region.
    pub fn init(&mut self, region: Region, idx: usize, value: u64) {
        assert!(idx < region.len, "init index {idx} out of bounds");
        self.mem[region.base + idx] = value;
    }

    /// Writes an initial f64 value (bit-cast into the word).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the region.
    pub fn init_f64(&mut self, region: Region, idx: usize, value: f64) {
        self.init(region, idx, value.to_bits());
    }
}

/// Requests a processor thread can make of the engine.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ProcRequest {
    Read {
        addr: usize,
    },
    Write {
        addr: usize,
        value: u64,
    },
    Barrier {
        id: u32,
    },
    Lock {
        id: u32,
    },
    Unlock {
        id: u32,
    },
    Finish,
    /// The processor thread panicked; the payload describes the fault.
    Fault,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct ProcMsg {
    pub proc: usize,
    pub elapsed: u64,
    pub req: ProcRequest,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Reply {
    pub time: u64,
    pub value: u64,
}

/// The per-processor execution context.
///
/// Every shared access or synchronization call blocks the calling thread
/// until the simulation engine has carried the operation through the cache,
/// directory protocol and network — this is what makes the simulation
/// execution-driven: the application's control flow sees simulated
/// latencies.
#[derive(Debug)]
pub struct Ctx {
    pub(crate) proc: usize,
    pub(crate) nprocs: usize,
    pub(crate) elapsed: u64,
    pub(crate) now: u64,
    pub(crate) tx: Sender<ProcMsg>,
    pub(crate) rx: Receiver<Reply>,
}

impl Ctx {
    /// This processor's id, `0..nprocs`.
    pub fn proc_id(&self) -> usize {
        self.proc
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Current simulated time in cycles (as of the last trap).
    pub fn now(&self) -> u64 {
        self.now + self.elapsed
    }

    /// Accounts `cycles` of local computation.
    pub fn compute(&mut self, cycles: u64) {
        self.elapsed += cycles;
    }

    fn rpc(&mut self, req: ProcRequest) -> Reply {
        let msg = ProcMsg { proc: self.proc, elapsed: self.elapsed, req };
        self.elapsed = 0;
        self.tx.send(msg).expect("engine hung up");
        let reply = self.rx.recv().expect("engine hung up");
        self.now = reply.time;
        reply
    }

    /// Reads a shared word (simulated LOAD).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the region.
    pub fn read(&mut self, region: Region, idx: usize) -> u64 {
        assert!(idx < region.len, "read index {idx} out of bounds");
        self.elapsed += 1; // issue cost
        self.rpc(ProcRequest::Read { addr: region.base + idx }).value
    }

    /// Writes a shared word (simulated STORE).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the region.
    pub fn write(&mut self, region: Region, idx: usize, value: u64) {
        assert!(idx < region.len, "write index {idx} out of bounds");
        self.elapsed += 1;
        self.rpc(ProcRequest::Write { addr: region.base + idx, value });
    }

    /// Reads a shared f64 (bit-cast from the word).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the region.
    pub fn read_f64(&mut self, region: Region, idx: usize) -> f64 {
        f64::from_bits(self.read(region, idx))
    }

    /// Writes a shared f64 (bit-cast into the word).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for the region.
    pub fn write_f64(&mut self, region: Region, idx: usize, value: f64) {
        self.write(region, idx, value.to_bits());
    }

    /// Waits at barrier `id` until all processors arrive.
    pub fn barrier(&mut self, id: u32) {
        self.rpc(ProcRequest::Barrier { id });
    }

    /// Acquires lock `id` (FIFO-granted at the lock's home node).
    pub fn lock(&mut self, id: u32) {
        self.rpc(ProcRequest::Lock { id });
    }

    /// Releases lock `id`.
    ///
    /// # Panics
    ///
    /// The engine panics if the caller does not hold the lock.
    pub fn unlock(&mut self, id: u32) {
        self.rpc(ProcRequest::Unlock { id });
    }

    pub(crate) fn finish(&mut self) {
        let msg = ProcMsg { proc: self.proc, elapsed: self.elapsed, req: ProcRequest::Finish };
        let _ = self.tx.send(msg);
    }

    pub(crate) fn fault(&mut self) {
        let msg = ProcMsg { proc: self.proc, elapsed: self.elapsed, req: ProcRequest::Fault };
        let _ = self.tx.send(msg);
    }
}
