//! Experiment T3 — the spatial-attribute classification table: per
//! application, the consensus spatial model across sources (uniform /
//! bimodal-uniform "favorite processor" / locality decay), with the mean
//! fit quality — the paper's central spatial finding.

use commchar_bench::{run_suite, ExpOptions};
use commchar_core::report::{spatial_consensus, table};

fn main() {
    let opts = ExpOptions::from_env();
    println!(
        "T3: spatial distribution classification ({} processors, {:?})\n",
        opts.procs, opts.scale
    );
    let rows: Vec<Vec<String>> = run_suite(opts)
        .iter()
        .map(|(_, sig)| {
            let fits: Vec<&commchar_core::SpatialSig> = sig.spatial.iter().flatten().collect();
            let mean_sse = fits.iter().map(|s| s.fit.sse).sum::<f64>() / fits.len().max(1) as f64;
            // Favourite concentration: mean max destination probability.
            let mean_peak =
                fits.iter().map(|s| s.observed.iter().cloned().fold(0.0, f64::max)).sum::<f64>()
                    / fits.len().max(1) as f64;
            vec![
                sig.name.clone(),
                sig.class.name().to_string(),
                spatial_consensus(&sig.spatial),
                format!("{:.5}", mean_sse),
                format!("{:.3}", mean_peak),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["application", "class", "spatial model", "mean SSE", "mean peak P(dst)"], &rows)
    );
}
