//! Trace-store bench: packed columnar format vs JSON-lines, on fixed
//! seeded workloads.
//!
//! Each workload's trace is serialized both ways; the packed file is
//! unpacked (sequentially and with the parallel block decoder) and
//! cross-checked for event identity against the JSON-lines parse, so the
//! throughput numbers are never bought with divergence. Size ratio and
//! decode rates are printed and written to `BENCH_trace.json` at the repo
//! root — the perf-trajectory file future changes compare against.
//! `--quick` runs one iteration on smaller traces (the
//! `scripts/check.sh --bench-smoke` mode); the default runs three and
//! keeps the best.

use std::fmt::Write as _;
use std::time::Instant;

use commchar_core::run_workload;
use commchar_trace::{CommEvent, CommTrace, EventKind};
use commchar_tracestore::{pack_trace, unpack_trace, unpack_trace_parallel};

/// Deterministic 64-bit LCG so workloads are fixed across runs/machines.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A synthetic trace in the shape the profilers emit: mostly-monotone
/// timestamps, sparse ids, mixed kinds, and a causal dependency on a
/// recent message about a third of the time.
fn synthetic(seed: u64, nodes: usize, count: usize) -> CommTrace {
    let mut rng = Lcg::new(seed);
    let mut trace = CommTrace::new(nodes);
    let mut t = 0u64;
    let mut prev_id = 0u64;
    for i in 0..count as u64 {
        let src = rng.below(nodes as u64) as u16;
        let mut dst = rng.below(nodes as u64) as u16;
        if dst == src {
            dst = (dst + 1) % nodes as u16;
        }
        t += rng.below(7);
        let kind = match rng.below(10) {
            0..=4 => EventKind::Data,
            5..=7 => EventKind::Control,
            _ => EventKind::Sync,
        };
        let id = i * 3 + (t & 1);
        let mut ev = CommEvent::new(id, t, src, dst, 8 + rng.below(4096) as u32, kind);
        if i > 0 && rng.below(3) == 0 {
            ev = ev.after(prev_id);
        }
        trace.push(ev);
        prev_id = id;
    }
    trace
}

struct Workload {
    name: &'static str,
    trace: CommTrace,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let scale = if quick { 1 } else { 4 };
    vec![
        // The headline workload: a profiler-shaped synthetic trace large
        // enough that parse cost dominates. The packed decode wins on two
        // axes — 5x fewer bytes to touch, and a columnar varint scan
        // instead of a per-field string search — and the block layout lets
        // worker threads decode independent blocks concurrently.
        Workload { name: "synthetic_large", trace: synthetic(42, 64, 50_000 * scale) },
        Workload { name: "synthetic_16n", trace: synthetic(7, 16, 10_000 * scale) },
        Workload {
            name: "app_3d-fft",
            trace: run_workload(commchar_apps::AppId::Fft3d, 8, commchar_apps::Scale::Small).trace,
        },
        Workload {
            name: "app_cholesky",
            trace: run_workload(commchar_apps::AppId::Cholesky, 8, commchar_apps::Scale::Small)
                .trace,
        },
    ]
}

/// Best-of-`iters` wall-clock seconds for one closure.
fn time_best<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 3 };
    let mut rows = Vec::new();

    println!("trace store: packed columnar format vs JSON-lines");
    println!(
        "{:<16} {:>8} {:>11} {:>11} {:>7} {:>12} {:>12} {:>8}",
        "workload",
        "events",
        "jsonl B",
        "packed B",
        "ratio",
        "jsonl ev/s",
        "packed ev/s",
        "speedup"
    );
    for w in workloads(quick) {
        let jsonl = w.trace.to_jsonl();
        let packed = pack_trace(&w.trace);

        // Cross-check first: identical events or the numbers are
        // meaningless. Both the sequential and the parallel decoder must
        // reproduce the JSON-lines parse exactly.
        let from_jsonl = CommTrace::from_jsonl(&jsonl).expect("jsonl parse");
        let sequential = unpack_trace(&packed).expect("sequential unpack");
        let parallel = unpack_trace_parallel(&packed, 0).expect("parallel unpack");
        assert_eq!(from_jsonl.events(), sequential.events(), "{}: events diverged", w.name);
        assert_eq!(from_jsonl.events(), parallel.events(), "{}: parallel diverged", w.name);
        assert_eq!(from_jsonl.nodes(), sequential.nodes(), "{}: nodes diverged", w.name);

        let t_jsonl = time_best(iters, || {
            let t = CommTrace::from_jsonl(&jsonl).expect("jsonl parse");
            assert_eq!(t.len(), w.trace.len());
        });
        let t_packed = time_best(iters, || {
            let t = unpack_trace_parallel(&packed, 0).expect("parallel unpack");
            assert_eq!(t.len(), w.trace.len());
        });
        let n = w.trace.len() as f64;
        let (jsonl_rate, packed_rate) = (n / t_jsonl, n / t_packed);
        let ratio = jsonl.len() as f64 / packed.len() as f64;
        let speedup = t_jsonl / t_packed;
        println!(
            "{:<16} {:>8} {:>11} {:>11} {:>6.1}x {:>12.0} {:>12.0} {:>7.1}x",
            w.name,
            w.trace.len(),
            jsonl.len(),
            packed.len(),
            ratio,
            jsonl_rate,
            packed_rate,
            speedup
        );
        rows.push((
            w.name,
            w.trace.len(),
            jsonl.len(),
            packed.len(),
            ratio,
            jsonl_rate,
            packed_rate,
            speedup,
        ));
    }

    // Hand-rolled JSON (serde is stripped from the offline build).
    let mut json = String::from("{\n  \"bench\": \"trace_store\",\n  \"mode\": ");
    let _ = writeln!(json, "\"{}\",\n  \"workloads\": [", if quick { "quick" } else { "full" });
    for (i, (name, events, jsonl_b, packed_b, ratio, jsonl_rate, packed_rate, speedup)) in
        rows.iter().enumerate()
    {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"events\": {events}, \
             \"jsonl_bytes\": {jsonl_b}, \"packed_bytes\": {packed_b}, \
             \"size_ratio\": {ratio:.2}, \
             \"jsonl_events_per_sec\": {jsonl_rate:.1}, \
             \"packed_events_per_sec\": {packed_rate:.1}, \
             \"decode_speedup\": {speedup:.2}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_trace.json";
    std::fs::write(path, &json).expect("write BENCH_trace.json");
    println!("wrote {path}");

    let headline = rows.iter().find(|r| r.0 == "synthetic_large").expect("headline workload");
    assert!(
        headline.4 >= 5.0,
        "synthetic_large size ratio {:.2}x below the 5x acceptance floor",
        headline.4
    );
    assert!(
        headline.7 >= 3.0,
        "synthetic_large decode speedup {:.2}x below the 3x acceptance floor",
        headline.7
    );
}
