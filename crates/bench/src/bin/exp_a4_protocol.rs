//! Experiment A4 (ablation) — coherence protocol sensitivity of the
//! traffic characterization: MSI vs MESI on the canonical sharing
//! patterns. The communication signature the methodology extracts depends
//! on the simulated machine's protocol; this quantifies by how much.

use commchar_core::report::table;
use commchar_spasm::{run, Ctx, MachineConfig, Protocol, Region};

fn private_rmw(ctx: &mut Ctx, r: &Region) {
    // Each processor read-modify-writes its own blocks (no sharing):
    // the pattern MESI's Exclusive state exists for.
    let p = ctx.proc_id();
    for round in 0..8 {
        for i in 0..16 {
            let slot = (p * 16 + i) * 4;
            let v = ctx.read(*r, slot);
            ctx.write(*r, slot, v + round);
        }
    }
}

fn migratory(ctx: &mut Ctx, r: &Region) {
    // A data block migrates processor to processor (lock-passing style).
    let n = ctx.nprocs();
    for round in 0..12u64 {
        if ctx.proc_id() == (round as usize) % n {
            for i in 0..8 {
                let v = ctx.read(*r, i);
                ctx.write(*r, i, v + 1);
            }
        }
        ctx.barrier(round as u32);
    }
}

fn producer_consumer(ctx: &mut Ctx, r: &Region) {
    // p0 produces, everyone consumes each round.
    for round in 0..12u64 {
        if ctx.proc_id() == 0 {
            for i in 0..8 {
                ctx.write(*r, i, round * 10 + i as u64);
            }
        }
        ctx.barrier(round as u32);
        for i in 0..8 {
            assert_eq!(ctx.read(*r, i), round * 10 + i as u64);
        }
        ctx.barrier(100 + round as u32);
    }
}

fn main() {
    println!("A4: MSI vs MESI protocol ablation (8 processors)\n");
    type Body = fn(&mut Ctx, &Region);
    let patterns: [(&str, Body); 3] = [
        ("private-rmw", private_rmw),
        ("migratory", migratory),
        ("producer-consumer", producer_consumer),
    ];
    let mut rows = Vec::new();
    for (name, body) in patterns {
        for proto in [Protocol::Msi, Protocol::Mesi] {
            let cfg = MachineConfig::new(8).with_protocol(proto);
            let out = run(cfg, |m| m.alloc(2048), body);
            rows.push(vec![
                name.to_string(),
                format!("{proto:?}"),
                out.trace.len().to_string(),
                out.misses.to_string(),
                format!("{:.3}", out.miss_ratio()),
                out.exec_cycles.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(&["pattern", "protocol", "messages", "misses", "miss ratio", "exec cycles"], &rows)
    );
    println!("(MESI's Exclusive state eliminates the upgrade traffic of private");
    println!(" read-modify-write data; migratory and producer-consumer sharing keep");
    println!(" paying invalidation costs under both protocols)");
}
