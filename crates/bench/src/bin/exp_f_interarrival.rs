//! Experiment F-IAT — the per-application inter-arrival histograms with
//! fitted pdf overlays (the paper's temporal figures): for each
//! application, prints `(bin center, empirical density, fitted density)`
//! series suitable for plotting.

use commchar_bench::{run_suite, ExpOptions};
use commchar_core::report::table;
use commchar_stats::Histogram;
use commchar_trace::profile::interarrival_aggregate;

const BINS: usize = 20;

fn main() {
    let opts = ExpOptions::from_env();
    println!(
        "F-IAT: inter-arrival histograms with fitted overlays ({} processors, {:?})",
        opts.procs, opts.scale
    );
    for (w, sig) in run_suite(opts) {
        let gaps = interarrival_aggregate(&w.trace);
        let hist = Histogram::from_samples(&gaps, BINS);
        let fit = &sig.temporal.aggregate;
        println!("\n--- {} : fitted {} (R²={:.4}) ---", sig.name, fit.dist, fit.r2);
        let rows: Vec<Vec<String>> = (0..hist.bins())
            .map(|i| {
                vec![
                    format!("{:.1}", hist.center(i)),
                    format!("{:.6}", hist.density(i)),
                    format!("{:.6}", fit.dist.pdf(hist.center(i))),
                ]
            })
            .collect();
        println!("{}", table(&["gap (ticks)", "empirical pdf", "fitted pdf"], &rows));
    }
}
