//! Experiment A5 — the closed loop matters: the methodological core of
//! execution-driven simulation (the "two arrows" between the network
//! simulator and the event generator in the paper's Figure 1). Because
//! network latency feeds back into application progress, slowing the
//! network must *reshape* the generated traffic — stretch execution,
//! lower the message generation rate, and shift the fitted inter-arrival
//! distribution. A trace-driven (open-loop) run cannot show this: its
//! trace is fixed.

use commchar_apps::sm;
use commchar_core::report::table;
use commchar_spasm::MachineConfig;
use commchar_stats::fit::fit_best;
use commchar_trace::profile::interarrival_aggregate;

fn main() {
    println!("A5: closed-loop network feedback on the generated traffic\n");
    let mut rows = Vec::new();
    for link_delay in [1u64, 4, 16] {
        let base = MachineConfig::new(8);
        let cfg = base.with_mesh(base.mesh.with_link_delay(link_delay));
        let out = sm::is::run_sized_with(cfg, 4096, 64);
        let gaps = interarrival_aggregate(&out.trace);
        let fit = fit_best(&gaps).expect("fit");
        rows.push(vec![
            format!("{link_delay}x"),
            out.exec_ticks.to_string(),
            out.trace.len().to_string(),
            format!("{:.5}", out.trace.len() as f64 / out.exec_ticks as f64),
            format!("{}", fit.dist),
        ]);
    }
    println!(
        "{}",
        table(&["link delay", "exec cycles", "messages", "msgs/cycle", "inter-arrival fit"], &rows)
    );
    println!("(same program, same inputs: a slower network stretches execution and");
    println!(" dilates the inter-arrival distribution — feedback a static trace misses,");
    println!(" which is why the dynamic strategy exists)");
}
