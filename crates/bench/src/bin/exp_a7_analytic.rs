//! Experiment A7 — the methodology's end product: feed the fitted
//! distributions into an *analytical* network model (per-channel M/G/1
//! queues over XY routes, the Adve–Vernon/Kim–Das style of analysis the
//! paper cites as the consumer of its characterization) and compare its
//! latency predictions against wormhole simulation — first on controlled
//! synthetic loads, then on the fitted application models.

use commchar_analytic::AnalyticModel;
use commchar_bench::{run_suite, ExpOptions};
use commchar_core::report::table;
use commchar_core::synthesize;
use commchar_mesh::{MeshConfig, MeshModel, NetMessage, NodeId, OnlineWormhole};
use commchar_traffic::patterns::uniform_poisson;

fn simulate(model: &commchar_traffic::TrafficModel, mesh: MeshConfig, span: u64) -> f64 {
    let trace = model.generate(span, 31);
    let msgs: Vec<NetMessage> = trace
        .events()
        .iter()
        .map(|e| NetMessage {
            id: e.id,
            src: NodeId(e.src),
            dst: NodeId(e.dst),
            bytes: e.bytes,
            inject: commchar_des::SimTime::from_ticks(e.t),
        })
        .collect();
    OnlineWormhole::new(mesh).simulate(&msgs).summary().mean_latency
}

fn main() {
    let opts = ExpOptions::from_env();
    println!("A7: analytic M/G/1 mesh model vs wormhole simulation\n");

    // Load sweep on uniform Poisson traffic: where does the analysis hold?
    let mesh = MeshConfig::for_nodes(16);
    let analytic = AnalyticModel::new(mesh);
    println!("load sweep (uniform Poisson, 16 nodes, 32B):");
    let mut rows = Vec::new();
    for rate in [0.0002, 0.0005, 0.001, 0.002, 0.004] {
        let model = uniform_poisson(16, rate, 32);
        let a = analytic.predict(&model);
        let s = simulate(&model, mesh, 120_000);
        rows.push(vec![
            format!("{rate}"),
            format!("{:.3}", a.max_channel_util),
            format!("{:.1}", a.mean_latency),
            format!("{s:.1}"),
            format!("{:.1}%", 100.0 * (a.mean_latency - s).abs() / s),
        ]);
    }
    println!("{}", table(&["rate/node", "max ρ", "analytic lat", "simulated lat", "error"], &rows));

    // Application models: predict each app's latency without simulating it.
    println!("\nfitted application models ({} processors, {:?}):", opts.procs, opts.scale);
    let mut rows = Vec::new();
    for (w, sig) in run_suite(opts) {
        let model = synthesize(&sig, w.mesh);
        let a = AnalyticModel::new(w.mesh).predict(&model);
        let s = simulate(&model, w.mesh, w.netlog.summary().span.max(1));
        rows.push(vec![
            sig.name.clone(),
            format!("{:.3}", a.max_channel_util),
            if a.saturated { "saturated".into() } else { format!("{:.1}", a.mean_latency) },
            format!("{s:.1}"),
            if a.saturated {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * (a.mean_latency - s).abs() / s)
            },
        ]);
    }
    println!(
        "{}",
        table(&["application", "max ρ", "analytic lat", "simulated lat", "error"], &rows)
    );
    println!("(independent per-channel M/G/1 queues track simulation closely while the");
    println!(" bottleneck utilization stays moderate and drift apart as wormhole blocking");
    println!(" correlates channels near saturation — the standard regime of validity for");
    println!(" this class of model, now driven end-to-end by fitted application traffic)");
}
