//! Characterization-server bench: concurrent sessions streaming CCTRACE1
//! blocks over loopback TCP, with mid-stream polls — the `commchar serve`
//! ingest path end to end (framing, checksums, session digestion, online
//! fits).
//!
//! The served final report is cross-checked for byte identity against
//! the offline analysis first (throughput is never bought with
//! divergence), then the full fleet is timed and the headline
//! sessions × events/s figure written to `BENCH_serve.json` at the repo
//! root together with the host core count and git revision. The ingest
//! floor is asserted only on hosts with at least four cores; smaller
//! machines still run the identity check and record the measured rate.
//! `--quick` runs a smaller fleet (the `scripts/check.sh --bench-smoke`
//! mode).

use std::fmt::Write as _;
use std::time::Instant;

use commchar_core::analyze::try_analyze_trace;
use commchar_core::report::analysis_report;
use commchar_mesh::MeshConfig;
use commchar_serve::{ServeClient, ServeConfig, Server};
use commchar_trace::{CommEvent, CommTrace, EventKind};
use commchar_tracestore::encode_event_block;

/// Events per wire block (the packed format's default block length).
const BLOCK_LEN: usize = 4096;

/// Aggregate ingest floor asserted on ≥ 4-core hosts, events/second.
/// Measured rates on a 4-core host are an order of magnitude above this;
/// the floor catches an accidental serialization, not normal jitter.
const FLOOR_EVENTS_PER_SEC: f64 = 250_000.0;

/// Deterministic 64-bit LCG so workloads are fixed across runs/machines.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One session's trace: `nodes` endpoints, mixed kinds and sizes.
fn session_trace(seed: u64, nodes: usize, events: usize) -> CommTrace {
    let mut rng = Lcg::new(seed);
    let mut tr = CommTrace::new(nodes);
    let mut t = 0u64;
    let mut id = 0u64;
    while (id as usize) < events {
        t += 1 + rng.below(17);
        let src = rng.below(nodes as u64) as u16;
        let mut dst = rng.below(nodes as u64) as u16;
        if dst == src {
            dst = (dst + 1) % nodes as u16;
        }
        let kind = match rng.below(3) {
            0 => EventKind::Control,
            1 => EventKind::Data,
            _ => EventKind::Sync,
        };
        tr.push(CommEvent::new(id, t, src, dst, 8 + rng.below(1024) as u32, kind));
        id += 1;
    }
    tr
}

fn offline_report(trace: &CommTrace) -> String {
    let shape = MeshConfig::for_nodes(trace.nodes()).shape;
    let a = try_analyze_trace(trace, shape, 1).expect("bench trace is analyzable");
    analysis_report(&a, "trace")
}

/// Streams one trace through one session; returns events fed.
fn drive_session(addr: &str, trace: &CommTrace, polls: bool) -> u64 {
    let mut client = ServeClient::connect(addr).expect("connect");
    let session = client.open_session(trace.nodes() as u32).expect("open");
    let blocks: Vec<Vec<u8>> = trace.events().chunks(BLOCK_LEN).map(encode_event_block).collect();
    let n_blocks = blocks.len();
    for (i, block) in blocks.into_iter().enumerate() {
        client.send_blocks(session, vec![block]).expect("send");
        // One mid-stream poll halfway: the live-report path stays in the
        // timed loop without dominating it.
        if polls && n_blocks > 1 && i == n_blocks / 2 {
            client.poll(session).expect("poll");
        }
    }
    let (events, _report) = client.close_session(session).expect("close");
    events
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sessions = if quick { 8 } else { 32 };
    let events_per_session = if quick { 25_000 } else { 100_000 };

    println!("characterization server: {sessions} concurrent sessions over loopback TCP");
    println!(
        "host cores: {host_cores}, {events_per_session} events/session, {BLOCK_LEN}-event blocks"
    );

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    // Identity first: a served session's final report must be
    // byte-identical to the offline analysis of the same events.
    let probe = session_trace(7, 8, 20_000);
    let mut client = ServeClient::connect(&addr).expect("connect");
    let session = client.open_session(probe.nodes() as u32).expect("open");
    for chunk in probe.events().chunks(BLOCK_LEN) {
        client.send_blocks(session, vec![encode_event_block(chunk)]).expect("send");
    }
    let (_, served) = client.close_session(session).expect("close");
    assert_eq!(served, offline_report(&probe), "served report diverged from offline analysis");
    println!("identity: served final report byte-identical to offline ({} events)", probe.len());

    // Timed fleet: one thread per session, each with its own trace.
    let traces: Vec<CommTrace> = (0..sessions)
        .map(|i| session_trace(100 + i as u64, 4 + i % 13, events_per_session))
        .collect();
    let start = Instant::now();
    let threads: Vec<_> = traces
        .iter()
        .map(|trace| {
            let addr = addr.clone();
            let trace = trace.clone();
            std::thread::spawn(move || drive_session(&addr, &trace, true))
        })
        .collect();
    let total_events: u64 = threads.into_iter().map(|t| t.join().expect("session thread")).sum();
    let secs = start.elapsed().as_secs_f64();
    let rate = total_events as f64 / secs;

    let stats = handle.shutdown();
    assert_eq!(stats.evictions, 0, "bench sessions must never be evicted");
    assert_eq!(stats.frame_errors, 0);

    println!("{:<10} {:>14} {:>10} {:>16}", "sessions", "total events", "seconds", "events/s");
    println!("{sessions:<10} {total_events:>14} {secs:>10.3} {rate:>16.0}");

    // Hand-rolled JSON (serde is stripped from the offline build).
    let mut json = String::from("{\n  \"bench\": \"serve_session_throughput\",\n  \"mode\": ");
    let _ = writeln!(json, "\"{}\",", if quick { "quick" } else { "full" });
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(json, "  \"sessions\": {sessions},");
    let _ = writeln!(json, "  \"events_per_session\": {events_per_session},");
    let _ = writeln!(json, "  \"block_len\": {BLOCK_LEN},");
    let _ = writeln!(json, "  \"total_events\": {total_events},");
    let _ = writeln!(json, "  \"seconds\": {secs:.3},");
    let _ = writeln!(json, "  \"events_per_sec\": {rate:.0},");
    let _ = writeln!(json, "  \"floor_events_per_sec\": {FLOOR_EVENTS_PER_SEC:.0}");
    json.push_str("}\n");
    let path = "BENCH_serve.json";
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    if host_cores >= 4 {
        assert!(
            rate >= FLOOR_EVENTS_PER_SEC,
            "ingest rate {rate:.0} events/s below the {FLOOR_EVENTS_PER_SEC:.0} floor on a \
             {host_cores}-core host"
        );
    } else {
        println!(
            "note: {host_cores}-core host — the ingest floor is asserted only with >= 4 cores"
        );
    }
}
