//! Closed-loop engine bench: the pluggable `NetEngine` implementations
//! compared head to head.
//!
//! Two sections:
//!
//! 1. **Fidelity** — each application is acquired end to end under both
//!    engines (recurrence in the loop vs the cycle-accurate flit router in
//!    the loop) and the latency and signature deltas are recorded: this is
//!    the cost, in distortion, of the fast model.
//! 2. **Throughput** — the incremental flit engine (one `send` at a time,
//!    committed/speculative dual state) against the open-loop batch
//!    `FlitLevel::simulate` on the same injection schedule. The logs are
//!    cross-checked for byte identity first, and the closed-loop overhead
//!    ratio is asserted ≤ 3× — the price of per-send feedback must stay
//!    bounded.
//!
//! Results go to stdout and `BENCH_engine.json` at the repo root.
//! `--quick` runs one iteration on smaller workloads (the
//! `scripts/check.sh --bench-smoke` mode).

use std::fmt::Write as _;
use std::time::Instant;

use commchar_apps::{AppId, Scale};
use commchar_core::{characterize, run_workload_engine};
use commchar_des::SimTime;
use commchar_mesh::{
    EngineKind, FlitLevel, IncrementalFlit, MeshConfig, MeshModel, NetEngine, NetMessage, NodeId,
};

/// Deterministic 64-bit LCG so workloads are fixed across runs/machines.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Uniform random traffic with nondecreasing injection times — the
/// schedule shape every closed-loop driver produces.
fn uniform(seed: u64, nodes: usize, count: usize, spread: u64, max_bytes: u64) -> Vec<NetMessage> {
    let mut rng = Lcg::new(seed);
    let mut t = 0u64;
    let mut msgs = Vec::with_capacity(count);
    for id in 0..count as u64 {
        let src = rng.below(nodes as u64) as u16;
        let mut dst = rng.below(nodes as u64) as u16;
        if dst == src {
            dst = (dst + 1) % nodes as u16;
        }
        t += rng.below(spread);
        msgs.push(NetMessage {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: 1 + rng.below(max_bytes) as u32,
            inject: SimTime::from_ticks(t),
        });
    }
    msgs
}

/// Best-of-`iters` wall-clock seconds for one closure.
fn time_best<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct AppRow {
    app: &'static str,
    rec_mean: f64,
    flit_mean: f64,
    rec_p95: f64,
    flit_p95: f64,
    rec_exec: u64,
    flit_exec: u64,
    rec_dist: String,
    flit_dist: String,
}

fn fidelity(scale: Scale) -> Vec<AppRow> {
    let mut rows = Vec::new();
    for app in [AppId::Is, AppId::Nbody, AppId::Fft3d] {
        let rec = run_workload_engine(app, 8, scale, EngineKind::Recurrence);
        let flit = run_workload_engine(app, 8, scale, EngineKind::flit());
        let (rs, fs) = (rec.netlog.summary(), flit.netlog.summary());
        let rec_sig = characterize(&rec);
        let flit_sig = characterize(&flit);
        rows.push(AppRow {
            app: app.name(),
            rec_mean: rs.mean_latency,
            flit_mean: fs.mean_latency,
            rec_p95: rs.p95_latency,
            flit_p95: fs.p95_latency,
            rec_exec: rec.exec_ticks,
            flit_exec: flit.exec_ticks,
            rec_dist: rec_sig.temporal.aggregate.dist.to_string(),
            flit_dist: flit_sig.temporal.aggregate.dist.to_string(),
        });
    }
    rows
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 3 };
    let scale = if quick { Scale::Tiny } else { Scale::Small };

    println!("closed-loop engine comparison: recurrence vs cycle-accurate flit\n");
    println!("fidelity (engine in the loop, 8 processors, {} scale):", scale.name());
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>8} {:>12} {:>12}  fit",
        "app", "rec mean", "flit mean", "rec p95", "flit p95", "rec exec", "flit exec"
    );
    let rows = fidelity(scale);
    for r in &rows {
        let fit = if r.rec_dist == r.flit_dist {
            r.rec_dist.clone()
        } else {
            format!("{} -> {}", r.rec_dist, r.flit_dist)
        };
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>8.0} {:>8.0} {:>12} {:>12}  {}",
            r.app, r.rec_mean, r.flit_mean, r.rec_p95, r.flit_p95, r.rec_exec, r.flit_exec, fit
        );
    }

    // Throughput: incremental (per-send feedback) vs batch on the same
    // schedule. Identity first — the overhead ratio is meaningless if the
    // incremental path diverged. The injection spacing (mean global gap
    // ~24 ticks vs ~40-tick mean latency) matches what closed-loop drivers
    // actually produce — processors block on deliveries, so injection rate
    // tracks latency. Exact per-send feedback re-simulates the in-flight
    // window, so an open-loop-dense schedule would inflate the overhead
    // without resembling any closed-loop use.
    let cfg = MeshConfig::new(8, 8).with_virtual_channels(2);
    let msgs = uniform(42, 64, if quick { 1500 } else { 6000 }, 48, 96);
    let batch_log = FlitLevel::new(cfg).simulate(&msgs);
    let mut inc = IncrementalFlit::new(cfg);
    for m in &msgs {
        inc.send(*m).expect("nondecreasing schedule");
    }
    let inc_log = inc.finish();
    assert_eq!(batch_log.records(), inc_log.records(), "incremental flit diverged from batch");
    assert_eq!(batch_log.utilization(), inc_log.utilization(), "utilization diverged");

    let t_batch = time_best(iters, || {
        let log = FlitLevel::new(cfg).simulate(&msgs);
        assert_eq!(log.records().len(), msgs.len());
    });
    let t_inc = time_best(iters, || {
        let mut engine = IncrementalFlit::new(cfg);
        for m in &msgs {
            engine.send(*m).expect("nondecreasing schedule");
        }
        assert_eq!(engine.finish().records().len(), msgs.len());
    });
    let n = msgs.len() as f64;
    let (batch_rate, inc_rate) = (n / t_batch, n / t_inc);
    let overhead = t_inc / t_batch;
    println!("\nthroughput ({} msgs, 8x8 mesh, 2 vcs):", msgs.len());
    println!("  batch (open loop)        : {batch_rate:>12.0} msgs/sec");
    println!("  incremental (closed loop): {inc_rate:>12.0} msgs/sec");
    println!("  closed-loop overhead     : {overhead:.2}x");

    // Hand-rolled JSON (serde is stripped from the offline build).
    let mut json = String::from("{\n  \"bench\": \"engine_comparison\",\n  \"mode\": ");
    let _ = writeln!(json, "\"{}\",\n  \"apps\": [", if quick { "quick" } else { "full" });
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"app\": \"{}\", \"recurrence_mean_latency\": {:.2}, \
             \"flit_mean_latency\": {:.2}, \"recurrence_p95\": {:.1}, \"flit_p95\": {:.1}, \
             \"recurrence_exec_ticks\": {}, \"flit_exec_ticks\": {}, \
             \"recurrence_fit\": \"{}\", \"flit_fit\": \"{}\"}}{}",
            r.app,
            r.rec_mean,
            r.flit_mean,
            r.rec_p95,
            r.flit_p95,
            r.rec_exec,
            r.flit_exec,
            r.rec_dist,
            r.flit_dist,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"closed_loop\": ");
    let _ = writeln!(
        json,
        "{{\"messages\": {}, \"batch_msgs_per_sec\": {:.1}, \
         \"incremental_msgs_per_sec\": {:.1}, \"overhead\": {:.3}}}\n}}",
        msgs.len(),
        batch_rate,
        inc_rate,
        overhead
    );
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");

    assert!(
        overhead <= 3.0,
        "closed-loop flit overhead {overhead:.2}x exceeds the 3x acceptance floor"
    );
}
