//! Experiment — engine fidelity: what the fast network model costs.
//!
//! The paper's Figure 1 loop runs one network simulator; this codebase
//! makes the simulator pluggable (`NetEngine`). Here each application is
//! characterized twice — once with the channel-recurrence wormhole model
//! in the loop, once with the cycle-accurate flit-level router — and the
//! resulting latency distributions and fitted signatures are compared.
//! Because the loop is closed, engine latency differences feed back into
//! application progress: execution time and even the message population
//! may shift, not just the measured latencies. The signature's stability
//! across engines is evidence the characterization captures application
//! structure rather than simulator artifacts.

use commchar_apps::{AppId, Scale};
use commchar_core::report::table;
use commchar_core::{characterize, run_workload_engine};
use commchar_mesh::EngineKind;

fn main() {
    println!("engine fidelity: recurrence vs cycle-accurate flit, closed loop\n");
    let mut rows = Vec::new();
    for app in [AppId::Is, AppId::Cholesky, AppId::Nbody, AppId::Fft3d] {
        for kind in [EngineKind::Recurrence, EngineKind::flit()] {
            let w = run_workload_engine(app, 8, Scale::Tiny, kind);
            let sig = characterize(&w);
            let s = w.netlog.summary();
            rows.push(vec![
                app.name().to_string(),
                kind.name().to_string(),
                s.messages.to_string(),
                w.exec_ticks.to_string(),
                format!("{:.1}", s.mean_latency),
                format!("{:.0}", s.p95_latency),
                format!("{:.1}", s.mean_blocked),
                format!("{}", sig.temporal.aggregate.dist),
            ]);
        }
    }
    println!(
        "{}",
        table(&["app", "engine", "msgs", "exec ticks", "mean lat", "p95", "blocked", "fit"], &rows)
    );
    println!("(shared-memory rows: the engine steers the execution, so message");
    println!(" populations and execution time may differ between engines; 3d-fft");
    println!(" uses the static strategy, so only the replayed latencies change.");
    println!(" A fitted distribution family that survives the engine swap is");
    println!(" robust to network-model fidelity — the methodology's claim.)");
}
