//! Experiment T-KIND — protocol-level decomposition of each application's
//! traffic into control / data / synchronization classes, with per-class
//! inter-arrival fits. For shared-memory codes this separates coherence
//! control traffic (requests, invalidations, acks) from block transfers
//! and lock/barrier traffic, the composition the paper's dynamic strategy
//! exposes.

use commchar_bench::{run_suite, ExpOptions};
use commchar_core::characterize_kind;
use commchar_core::report::table;
use commchar_trace::EventKind;

fn main() {
    let opts = ExpOptions::from_env();
    println!(
        "T-KIND: traffic decomposition by class ({} processors, {:?})\n",
        opts.procs, opts.scale
    );
    let mut rows = Vec::new();
    for (w, sig) in run_suite(opts) {
        for kind in [EventKind::Control, EventKind::Data, EventKind::Sync] {
            if let Some(k) = characterize_kind(&w, kind) {
                rows.push(vec![
                    sig.name.clone(),
                    kind.name().to_string(),
                    k.messages.to_string(),
                    format!("{:.1}%", 100.0 * k.messages as f64 / sig.volume.messages as f64),
                    format!("{:.1}", k.mean_bytes),
                    format!("{}", k.interarrival.dist),
                ]);
            }
        }
    }
    println!(
        "{}",
        table(&["application", "class", "msgs", "share", "mean bytes", "inter-arrival fit"], &rows)
    );
}
