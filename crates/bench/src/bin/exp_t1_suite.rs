//! Experiment T1 — the application-suite summary table (paper Table 1):
//! for each application, its class, message count, mean message length,
//! simulated execution time, and overall generation rate.

use commchar_bench::{run_suite, ExpOptions};
use commchar_core::report::table;

fn main() {
    let opts = ExpOptions::from_env();
    println!("T1: application suite summary ({} processors, {:?})\n", opts.procs, opts.scale);
    let rows: Vec<Vec<String>> = run_suite(opts)
        .iter()
        .map(|(w, sig)| {
            let rate = sig.volume.messages as f64 / w.exec_ticks.max(1) as f64;
            vec![
                sig.name.clone(),
                sig.class.name().to_string(),
                sig.volume.messages.to_string(),
                format!("{:.1}", sig.volume.mean_bytes),
                w.exec_ticks.to_string(),
                format!("{:.5}", rate),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["application", "class", "messages", "mean bytes", "exec ticks", "msgs/tick"],
            &rows
        )
    );
}
