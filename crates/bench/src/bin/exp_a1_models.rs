//! Experiment A1 (ablation) — cross-validation of the two network models:
//! the channel-recurrence OnlineWormhole against the cycle-accurate
//! FlitLevel router model, on synthetic patterns across load levels.

use commchar_core::report::table;
use commchar_mesh::{
    FlitCycleReference, FlitLevel, MeshConfig, MeshModel, NetMessage, NodeId, OnlineWormhole,
};
use commchar_traffic::patterns::{bit_complement, hotspot, transpose, uniform_poisson};

fn to_msgs(trace: &commchar_trace::CommTrace) -> Vec<NetMessage> {
    trace
        .events()
        .iter()
        .map(|e| NetMessage {
            id: e.id,
            src: NodeId(e.src),
            dst: NodeId(e.dst),
            bytes: e.bytes,
            inject: commchar_des::SimTime::from_ticks(e.t),
        })
        .collect()
}

fn main() {
    println!("A1: OnlineWormhole vs FlitLevel model agreement\n");
    let n = 16;
    let mesh = MeshConfig::for_nodes(n);
    let mut rows = Vec::new();
    for (name, rate) in [("light", 0.0005), ("medium", 0.002), ("heavy", 0.006)] {
        for (pat, model) in [
            ("uniform", uniform_poisson(n, rate, 32)),
            ("transpose", transpose(n, rate, 32)),
            ("bit-compl", bit_complement(n, rate, 32)),
            ("hotspot", hotspot(n, 0, 0.3, rate, 32)),
        ] {
            let trace = model.generate(60_000, 5);
            let msgs = to_msgs(&trace);
            let online = OnlineWormhole::new(mesh).simulate(&msgs).summary();
            let flit_log = FlitLevel::new(mesh).simulate(&msgs);
            // The event-driven router must be cycle-identical to the
            // retained cycle-loop reference on every workload it reports.
            let ref_log = FlitCycleReference::new(mesh).simulate(&msgs);
            assert_eq!(
                flit_log.records(),
                ref_log.records(),
                "{pat}/{name}: event-driven router diverged from the cycle-loop reference"
            );
            let flit = flit_log.summary();
            let rel = if flit.mean_latency > 0.0 {
                100.0 * (online.mean_latency - flit.mean_latency).abs() / flit.mean_latency
            } else {
                0.0
            };
            rows.push(vec![
                pat.to_string(),
                name.to_string(),
                format!("{}", msgs.len()),
                format!("{:.1}", online.mean_latency),
                format!("{:.1}", flit.mean_latency),
                format!("{rel:.1}%"),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["pattern", "load", "msgs", "online latency", "flit latency", "relative diff"],
            &rows
        )
    );
    println!("(the fast recurrence model should track the cycle-accurate router closely at");
    println!(" light/medium load and remain rank-order correct when saturated)");
}
